//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the small slice of the `rand` 0.8 API it
//! actually uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen_range` (integer and float ranges) and
//! `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm `rand` 0.8 uses for `SmallRng` on 64-bit targets — and
//! integer ranges use Lemire's unbiased widening-multiply rejection
//! method, so the statistical properties match the real crate. Streams
//! are deterministic per seed, which is all the simulator requires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// A random number generator: the core 64-bit output primitive.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    // Only reachable for 64-bit types over the full domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

uint_range_impl!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

/// Uniform `[0, span)` by Lemire's widening-multiply rejection method
/// (unbiased, usually multiplication-only).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(span);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

/// Uniform `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// The non-cryptographic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast RNG: xoshiro256++ (the `rand` 0.8 `SmallRng` on
    /// 64-bit targets).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion, as rand_core does for seed_from_u64.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let differs = (0..100).any(|_| a.gen_range(0u64..1000) != c.gen_range(0u64..1000));
        assert!(differs, "different seeds must give different streams");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..17);
            assert!((10..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((0.29..0.31).contains(&frac), "p=0.3 measured {frac}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn uniform_covers_small_range_evenly() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
