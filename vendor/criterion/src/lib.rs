//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the small slice of the criterion 0.5 API its
//! benches use: [`Criterion::benchmark_group`], `bench_function`,
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a fixed-duration timing loop
//! with a median-of-samples report — but the bench targets compile and
//! run, and relative numbers are meaningful on a quiet machine.
//!
//! `cargo bench -- --test` runs every benchmark exactly once without
//! timing (real criterion's smoke mode); CI uses it to keep the bench
//! targets honest without paying for measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// True when the harness was invoked in smoke mode (`--test`): each
/// routine runs once, nothing is timed.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// An opaque value barrier: keeps the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }

    /// Benchmarks one function directly.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_one(name, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks one function in this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs the timing loop.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    smoke: bool,
}

impl Bencher {
    /// Times `routine`, collecting several samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.smoke {
            black_box(routine());
            return;
        }
        // Warm up and size the per-sample iteration count so one sample
        // takes roughly a millisecond.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000);
        self.iters_per_sample = iters as u64;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

const SAMPLES: usize = 21;

fn run_one(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        smoke: test_mode(),
        ..Bencher::default()
    };
    f(&mut b);
    if b.smoke {
        println!("  {label}: ok (smoke)");
        return;
    }
    if b.samples.is_empty() {
        println!("  {label}: no samples");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let per_iter = median.as_nanos() as f64 / b.iters_per_sample as f64;
    println!(
        "  {label}: {:.1} ns/iter (median of {} samples x {} iters)",
        per_iter,
        b.samples.len(),
        b.iters_per_sample
    );
}

/// Declares a benchmark group function, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, as criterion does.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::default();
        b.iter(|| black_box(2u64 + 2));
        assert_eq!(b.samples.len(), SAMPLES);
        assert!(b.iters_per_sample >= 1);
    }

    #[test]
    fn group_runs_functions() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("f", |b| {
            ran = true;
            b.iter(|| black_box(1));
        });
        group.finish();
        assert!(ran);
    }
}
