//! The [`Strategy`] trait and the built-in strategies: integer and float
//! ranges, tuples, `Just`, and a literal/char-class string strategy.

use crate::test_runner::TestRunner;
use core::ops::{Range, RangeInclusive};
use rand::Rng as _;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.sample(runner))
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, runner: &mut TestRunner) -> f64 {
        runner.rng().gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(runner),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// One element of a parsed string pattern: a set of candidate chars and
/// a repetition count range.
#[derive(Debug)]
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// `&str` is a string *pattern* strategy, as in proptest. Supported
/// syntax: literal characters and `[a-z0-9]` char classes, each
/// optionally followed by `{n}` or `{m,n}`. Anything unparsable is
/// treated as a literal.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, runner: &mut TestRunner) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = if atom.max > atom.min {
                atom.min + (runner.next_u64() % (atom.max - atom.min + 1) as u64) as usize
            } else {
                atom.min
            };
            for _ in 0..n {
                let i = (runner.next_u64() % atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = if chars[i] == '[' {
            let close = match chars[i + 1..].iter().position(|&c| c == ']') {
                Some(off) => i + 1 + off,
                None => {
                    // Unbalanced: treat '[' as a literal.
                    atoms.push(Atom {
                        chars: vec!['['],
                        min: 1,
                        max: 1,
                    });
                    i += 1;
                    continue;
                }
            };
            let set = parse_class(&chars[i + 1..close]);
            i = close + 1;
            set
        } else {
            let set = vec![chars[i]];
            i += 1;
            set
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            match chars[i..].iter().position(|&c| c == '}') {
                Some(off) => {
                    let body: String = chars[i + 1..i + off].iter().collect();
                    i += off + 1;
                    parse_reps(&body)
                }
                None => (1, 1),
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

fn parse_class(body: &[char]) -> Vec<char> {
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    if set.is_empty() {
        set.push('?');
    }
    set
}

fn parse_reps(body: &str) -> (usize, usize) {
    match body.split_once(',') {
        Some((lo, hi)) => {
            let lo = lo.trim().parse().unwrap_or(1);
            let hi = hi.trim().parse().unwrap_or(lo);
            (lo, hi.max(lo))
        }
        None => {
            let n = body.trim().parse().unwrap_or(1);
            (n, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_pattern_class_and_reps() {
        let mut runner = TestRunner::for_test("string_pattern");
        for _ in 0..200 {
            let s = "[a-z0-9]{0,12}".sample(&mut runner);
            assert!(s.len() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn literal_pattern_passes_through() {
        let mut runner = TestRunner::for_test("literal");
        assert_eq!("abc".sample(&mut runner), "abc");
    }

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut runner = TestRunner::for_test("ranges");
        for _ in 0..500 {
            let (a, b, c) = (1u64..5, 0u16..3, 0.0f64..2.0).sample(&mut runner);
            assert!((1..5).contains(&a));
            assert!(b < 3);
            assert!((0.0..2.0).contains(&c));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut runner = TestRunner::for_test("vecs");
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..10, 3..=3).sample(&mut runner);
            assert_eq!(v.len(), 3);
        }
    }
}
