//! Test execution state: configuration, RNG, and case errors.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a property test (the subset used: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test sampling state. Seeded from the test's name so different
/// tests explore different streams, deterministically across runs.
#[derive(Debug)]
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// A runner for the named test.
    pub fn for_test(name: &str) -> TestRunner {
        // FNV-1a over the name: a stable, dependency-free seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: SmallRng::seed_from_u64(h),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// The underlying RNG, for strategies that sample distributions.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}
