//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the subset of the proptest 1.x API its test
//! suites use: the [`proptest!`] macro, `prop_assert*` macros, range /
//! tuple / vec / bool / simple-regex strategies, the `prop_map`
//! combinator, and `ProptestConfig::with_cases`.
//!
//! Semantics: each test body runs for `cases` deterministic pseudo-random
//! inputs (default 256). There is no shrinking — on failure the case
//! number and assertion message are reported. Regression files
//! (`*.proptest-regressions`) are not consumed; the seed is fixed, so
//! every run replays the same cases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Boolean strategies.
pub mod bool {
    /// Strategy producing `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;
        fn sample(&self, runner: &mut crate::test_runner::TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use core::ops::{Range, RangeInclusive};

    /// An inclusive-exclusive size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`, elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = (self.size.hi_incl - self.size.lo + 1) as u64;
            let len = self.size.lo + (runner.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(runner)).collect()
        }
    }
}

/// The one-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = ($left, $right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = ($left, $right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = ($left, $right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut runner);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("proptest case {case}/{} failed: {e}", config.cases);
                    }
                }
            }
        )*
    };
}
