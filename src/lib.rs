//! Reproduction of *Operating System Support for Improving Data Locality
//! on CC-NUMA Compute Servers* (Verghese, Devine, Gupta & Rosenblum,
//! ASPLOS 1996).
//!
//! This facade crate re-exports the whole workspace behind one
//! dependency. The pieces:
//!
//! * [`policy`] — the paper's contribution: the migration/replication
//!   decision tree, per-page counters, thresholds (Table 1), static
//!   baselines and information metrics;
//! * [`kernel`] — the IRIX-like VM substrate: frames, replica chains,
//!   page tables with back-maps, lock contention, TLB shootdown and the
//!   Figure 2 pager with per-step cost accounting;
//! * [`machine`] — the CC-NUMA machine simulator (the SimOS substitute):
//!   L2 caches, TLBs, coherence, directory contention, full-system runs;
//! * [`workloads`] — synthetic versions of the five Table 2 workloads;
//! * [`polsim`] — the Section 8 trace-driven policy simulator;
//! * [`trace`] — miss traces, sampling and read-chain analysis;
//! * [`stats`] — execution-time breakdowns and report rendering;
//! * [`types`] — shared ids, time and machine configuration.
//!
//! # Quickstart
//!
//! Run the raytrace workload under first touch and under the paper's
//! base policy, and compare:
//!
//! ```
//! use ccnuma_locality::machine::{Machine, PolicyChoice, RunOptions};
//! use ccnuma_locality::policy::PolicyParams;
//! use ccnuma_locality::workloads::{Scale, WorkloadKind};
//!
//! let spec = WorkloadKind::Raytrace.build(Scale::quick());
//! let ft = Machine::new(spec, RunOptions::new(PolicyChoice::first_touch())).run();
//!
//! let spec = WorkloadKind::Raytrace.build(Scale::quick());
//! let params = PolicyParams::base().with_trigger(16); // quick runs are short
//! let mr = Machine::new(spec, RunOptions::new(PolicyChoice::base_mig_rep(params))).run();
//!
//! assert!(mr.breakdown.pct_local_misses() > ft.breakdown.pct_local_misses());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ccnuma_core as policy;
pub use ccnuma_kernel as kernel;
pub use ccnuma_machine as machine;
pub use ccnuma_polsim as polsim;
pub use ccnuma_stats as stats;
pub use ccnuma_trace as trace;
pub use ccnuma_types as types;
pub use ccnuma_workloads as workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use ccnuma_core::{
        DynamicPolicyKind, MissMetric, PolicyAction, PolicyEngine, PolicyParams,
    };
    pub use ccnuma_machine::{Machine, PolicyChoice, RunOptions, RunReport};
    pub use ccnuma_polsim::{simulate, PolsimConfig, SimPolicy, TraceFilter};
    pub use ccnuma_trace::{read_chains, MissRecord, Trace};
    pub use ccnuma_types::{MachineConfig, NodeId, Ns, Pid, ProcId, VirtPage};
    pub use ccnuma_workloads::{Scale, WorkloadKind};
}
