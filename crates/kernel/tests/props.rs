//! Property-based tests for the kernel substrate.

use ccnuma_kernel::{
    FrameAllocator, LockGranularity, LockId, LockModel, PageOp, Pager, PagerConfig, ShootdownMode,
};
use ccnuma_types::{MachineConfig, NodeId, Ns, Pid, VirtPage};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Frame allocation never exceeds capacity, frees restore it, and a
    /// node's frames always map back to that node.
    #[test]
    fn allocator_conserves_capacity(
        ops in proptest::collection::vec((0u16..4, proptest::bool::ANY), 1..300),
    ) {
        let cfg = MachineConfig::cc_numa().with_nodes(4).with_frames_per_node(16);
        let mut a = FrameAllocator::new(&cfg);
        let mut live: Vec<ccnuma_types::Frame> = Vec::new();
        for (node, is_alloc) in ops {
            let node = NodeId(node);
            if is_alloc {
                if let Some(f) = a.alloc(node) {
                    prop_assert_eq!(cfg.node_of_frame(f), node);
                    prop_assert!(!live.contains(&f), "frame handed out twice");
                    live.push(f);
                }
            } else if let Some(f) = live.pop() {
                prop_assert!(a.free(f).is_ok());
            }
            for n in 0..4u16 {
                prop_assert!(a.used_on(NodeId(n)) <= 16);
                prop_assert_eq!(a.free_on(NodeId(n)), 16 - a.used_on(NodeId(n)));
            }
        }
        prop_assert_eq!(a.used_total(), live.len() as u64);
    }

    /// Random alloc / free / alloc_with_fallback sequences driven
    /// through exhaustion and recovery: the allocator hands out each
    /// frame at most once, every double free is rejected as a typed
    /// error without corrupting state, and fallback only fails when the
    /// whole machine is full.
    #[test]
    fn allocator_survives_exhaustion_and_double_frees(
        ops in proptest::collection::vec((0u16..3, 0u8..4, 0usize..64), 1..400),
    ) {
        let nodes = 3u16;
        let per_node = 8u32;
        let cfg = MachineConfig::cc_numa().with_nodes(nodes).with_frames_per_node(per_node);
        let mut a = FrameAllocator::new(&cfg);
        let mut live: Vec<ccnuma_types::Frame> = Vec::new();
        let mut freed: Vec<ccnuma_types::Frame> = Vec::new();
        for (node, op, pick) in ops {
            let node = NodeId(node);
            match op {
                // Plain alloc: must fail exactly when the node is full.
                0 => {
                    let was_full = a.free_on(node) == 0;
                    match a.alloc(node) {
                        Some(f) => {
                            prop_assert!(!was_full);
                            prop_assert_eq!(cfg.node_of_frame(f), node);
                            prop_assert!(!live.contains(&f), "frame handed out twice");
                            live.push(f);
                            freed.retain(|g| *g != f);
                        }
                        None => prop_assert!(was_full),
                    }
                }
                // Fallback alloc: must fail only when everything is full.
                1 => {
                    let machine_full =
                        (0..nodes).all(|n| a.free_on(NodeId(n)) == 0);
                    match a.alloc_with_fallback(node) {
                        Some(f) => {
                            prop_assert!(!machine_full);
                            prop_assert!(!live.contains(&f));
                            live.push(f);
                            freed.retain(|g| *g != f);
                        }
                        None => prop_assert!(machine_full),
                    }
                }
                // Legal free of a live frame.
                2 => {
                    if !live.is_empty() {
                        let f = live.swap_remove(pick % live.len());
                        prop_assert!(a.free(f).is_ok());
                        freed.push(f);
                    }
                }
                // Double free of an already-freed frame: typed error,
                // state untouched.
                _ => {
                    if !freed.is_empty() {
                        let f = freed[pick % freed.len()];
                        let before: Vec<u32> =
                            (0..nodes).map(|n| a.used_on(NodeId(n))).collect();
                        let err = a.free(f);
                        prop_assert!(
                            matches!(err, Err(ccnuma_types::SimError::DoubleFree { frame, .. }) if frame == f)
                        );
                        let after: Vec<u32> =
                            (0..nodes).map(|n| a.used_on(NodeId(n))).collect();
                        prop_assert_eq!(before, after, "rejected free must not change accounting");
                    }
                }
            }
            for n in 0..nodes {
                prop_assert!(a.used_on(NodeId(n)) <= per_node);
                prop_assert_eq!(a.free_on(NodeId(n)), per_node - a.used_on(NodeId(n)));
            }
            prop_assert_eq!(a.used_total(), live.len() as u64);
        }
        // Recovery: free everything, then the machine is empty again and
        // every node can be fully re-allocated.
        for f in live.drain(..) {
            prop_assert!(a.free(f).is_ok());
        }
        prop_assert_eq!(a.used_total(), 0);
        for n in 0..nodes {
            for _ in 0..per_node {
                prop_assert!(a.alloc(NodeId(n)).is_some());
            }
            prop_assert_eq!(a.alloc(NodeId(n)), None);
        }
    }

    /// The lock model's waits are bounded by the backlog cap and its
    /// statistics are internally consistent.
    #[test]
    fn lock_waits_bounded(
        acquires in proptest::collection::vec((0u64..1_000_000, 1u64..1000), 1..200),
        backlog in 1u64..10,
    ) {
        let mut m = LockModel::new().with_max_backlog(backlog);
        let mut total = Ns::ZERO;
        let mut contended = 0;
        for (now, hold) in &acquires {
            let w = m.acquire(LockId::Memlock, Ns(*now), Ns(*hold));
            prop_assert!(w <= Ns(*hold) * backlog, "wait {w} above cap");
            total += w;
            if w > Ns::ZERO {
                contended += 1;
            }
        }
        prop_assert_eq!(m.total_wait(), total);
        prop_assert_eq!(m.acquisitions(), acquires.len() as u64);
        prop_assert_eq!(m.contended(), contended);
    }

    /// After any mix of pager operations the hash, tables and allocator
    /// agree, under both shootdown modes and lock granularities.
    #[test]
    fn pager_state_is_consistent(
        ops in proptest::collection::vec((0u64..24, 0u16..8, 0u8..5), 1..150),
        targeted in proptest::bool::ANY,
        coarse in proptest::bool::ANY,
    ) {
        let machine = MachineConfig::cc_numa().with_frames_per_node(32);
        let cfg = PagerConfig::for_machine(machine)
            .with_shootdown(if targeted { ShootdownMode::Targeted } else { ShootdownMode::Broadcast })
            .with_granularity(if coarse { LockGranularity::Coarse } else { LockGranularity::Fine });
        let mut pager = Pager::new(cfg);
        for i in 0..8u32 {
            pager.set_pid_node(Pid(i), NodeId(i as u16));
        }
        let mut t = 0u64;
        for (page, node, op) in ops {
            t += 500;
            let page = VirtPage(page);
            let node = NodeId(node);
            let pid = Pid(node.0 as u32);
            match op {
                0 | 1 => {
                    pager.first_touch(pid, page, node);
                }
                2 => {
                    pager.service_batch(Ns(t), &[PageOp::migrate(page, node)]);
                }
                3 => {
                    pager.service_batch(Ns(t), &[PageOp::replicate(page, node)]);
                }
                _ => {
                    pager.service_batch(Ns(t), &[PageOp::collapse(page)]);
                }
            }
        }
        // Invariants: frames used == masters + replicas; copies on
        // distinct nodes; mappings point into the copy set; peak >= live.
        let masters = pager.hash().len() as u64;
        prop_assert_eq!(
            pager.frames().used_total(),
            masters + pager.hash().replica_frames()
        );
        prop_assert!(pager.hash().replica_frames_peak() >= pager.hash().replica_frames());
        for page in (0..24).map(VirtPage) {
            let copies = pager.copies(page);
            let mut nodes = copies.clone();
            nodes.sort();
            nodes.dedup();
            prop_assert_eq!(nodes.len(), copies.len());
            for pid in (0..8).map(Pid) {
                if let Some(n) = pager.mapping_node(pid, page) {
                    prop_assert!(copies.contains(&n));
                }
            }
        }
    }

    /// Targeted shootdown never flushes more TLBs than broadcast.
    #[test]
    fn targeted_flushes_at_most_broadcast(mappers in 1u16..8) {
        let machine = MachineConfig::cc_numa();
        let run = |mode| {
            let mut pager = Pager::new(PagerConfig::for_machine(machine.clone()).with_shootdown(mode));
            for i in 0..mappers {
                pager.set_pid_node(Pid(i as u32), NodeId(i));
                pager.first_touch(Pid(i as u32), VirtPage(1), NodeId(i));
            }
            // Migrate somewhere with no copy yet.
            pager.service_batch(Ns(1000), &[PageOp::migrate(VirtPage(1), NodeId(7))]);
            pager.last_batch().tlbs_flushed
        };
        let broadcast = run(ShootdownMode::Broadcast);
        let targeted = run(ShootdownMode::Targeted);
        prop_assert_eq!(broadcast, 8);
        prop_assert!(targeted <= broadcast);
        prop_assert!(targeted >= 1);
    }

    /// Batch latency equals the sum of the per-op latencies.
    #[test]
    fn batch_latency_is_sum_of_ops(n_ops in 1usize..8) {
        let machine = MachineConfig::cc_numa();
        let mut pager = Pager::new(PagerConfig::for_machine(machine));
        let ops: Vec<PageOp> = (0..n_ops as u64)
            .map(|i| {
                pager.first_touch(Pid(1), VirtPage(i), NodeId(0));
                PageOp::migrate(VirtPage(i), NodeId(3))
            })
            .collect();
        let outcomes = pager.service_batch(Ns(10_000), &ops);
        let sum: Ns = outcomes
            .iter()
            .map(|o| match o {
                ccnuma_kernel::OpOutcome::Done { latency } => *latency,
                _ => Ns::ZERO,
            })
            .sum();
        prop_assert_eq!(pager.last_batch().total_latency, sum);
    }
}
