//! The physical-page hash table with replica chains.
//!
//! IRIX translates logical pages (`vnode`, `offset`) to physical pages
//! through a global open hash of page frame descriptors. The paper's
//! *replication support* change links replicas of a physical page into a
//! chain, with one member (the master) in the hash table. This module
//! reproduces that structure keyed by [`VirtPage`].

use ccnuma_types::{Frame, FxHashMap, MachineConfig, NodeId, VirtPage};

/// One logical page's physical copies: a master frame plus replica chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageEntry {
    master: Frame,
    replicas: Vec<Frame>,
}

impl PageEntry {
    /// The master frame (the hash-table member of the chain).
    pub fn master(&self) -> Frame {
        self.master
    }

    /// The replica frames, in creation order.
    pub fn replicas(&self) -> &[Frame] {
        &self.replicas
    }

    /// Master plus replicas.
    pub fn all_frames(&self) -> impl Iterator<Item = Frame> + '_ {
        std::iter::once(self.master).chain(self.replicas.iter().copied())
    }

    /// Number of physical copies.
    pub fn copy_count(&self) -> usize {
        1 + self.replicas.len()
    }

    /// True when replicas exist (page-table entries are then read-only).
    pub fn is_replicated(&self) -> bool {
        !self.replicas.is_empty()
    }
}

/// The global page hash: logical page → [`PageEntry`].
///
/// # Examples
///
/// ```
/// use ccnuma_kernel::PageHash;
/// use ccnuma_types::{Frame, MachineConfig, NodeId, VirtPage};
///
/// let cfg = MachineConfig::cc_numa();
/// let mut hash = PageHash::new(cfg.clone());
/// hash.insert_master(VirtPage(9), Frame(0));
/// hash.add_replica(VirtPage(9), cfg.first_frame_of(NodeId(3)));
/// assert_eq!(hash.copy_nodes(VirtPage(9)), vec![NodeId(0), NodeId(3)]);
/// ```
#[derive(Debug, Clone)]
pub struct PageHash {
    cfg: MachineConfig,
    /// Keyed by FxHash: the miss handler consults the chain on every
    /// counted miss. Every order-sensitive reader sorts
    /// ([`replicated_pages_on`](PageHash::replicated_pages_on)) or is
    /// order-insensitive (the invariant audit), so the hasher swap never
    /// shows up in output.
    entries: FxHashMap<VirtPage, PageEntry>,
    /// Running count of replica frames, for the §7.2.3 space overhead.
    replica_frames: u64,
    /// High-water mark of replica frames.
    replica_frames_peak: u64,
}

impl PageHash {
    /// An empty hash for the given machine.
    pub fn new(cfg: MachineConfig) -> PageHash {
        PageHash {
            cfg,
            entries: FxHashMap::default(),
            replica_frames: 0,
            replica_frames_peak: 0,
        }
    }

    /// Inserts a brand-new master frame for `page`.
    ///
    /// # Panics
    ///
    /// Panics if the page is already present.
    pub fn insert_master(&mut self, page: VirtPage, frame: Frame) {
        let prev = self.entries.insert(
            page,
            PageEntry {
                master: frame,
                replicas: Vec::new(),
            },
        );
        assert!(prev.is_none(), "page {page} already in hash");
    }

    /// Looks up a page's entry.
    pub fn get(&self, page: VirtPage) -> Option<&PageEntry> {
        self.entries.get(&page)
    }

    /// Whether the hash knows this page.
    pub fn contains(&self, page: VirtPage) -> bool {
        self.entries.contains_key(&page)
    }

    /// Number of logical pages present.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no pages are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Links a replica frame into `page`'s chain.
    ///
    /// # Panics
    ///
    /// Panics if the page is absent or the frame's node already holds a
    /// copy (one copy per node is the useful maximum).
    pub fn add_replica(&mut self, page: VirtPage, frame: Frame) {
        let node = self.cfg.node_of_frame(frame);
        let nodes = self.copy_nodes(page);
        assert!(
            !nodes.contains(&node),
            "page {page} already has a copy on {node}"
        );
        let e = self.entries.get_mut(&page).expect("page must be present");
        e.replicas.push(frame);
        self.replica_frames += 1;
        self.replica_frames_peak = self.replica_frames_peak.max(self.replica_frames);
    }

    /// Replaces the master frame (migration), returning the old frame.
    ///
    /// # Panics
    ///
    /// Panics if the page is absent.
    pub fn migrate_master(&mut self, page: VirtPage, new_frame: Frame) -> Frame {
        let e = self.entries.get_mut(&page).expect("page must be present");
        std::mem::replace(&mut e.master, new_frame)
    }

    /// Collapses the chain to the master only, returning the freed replica
    /// frames.
    ///
    /// # Panics
    ///
    /// Panics if the page is absent.
    pub fn collapse(&mut self, page: VirtPage) -> Vec<Frame> {
        let e = self.entries.get_mut(&page).expect("page must be present");
        let freed = std::mem::take(&mut e.replicas);
        self.replica_frames -= freed.len() as u64;
        freed
    }

    /// Removes one replica of `page` living on `node`, if any, returning
    /// the freed frame (memory-pressure reclaim prefers replicated pages).
    pub fn remove_replica_on(&mut self, page: VirtPage, node: NodeId) -> Option<Frame> {
        let e = self.entries.get_mut(&page)?;
        let pos = e
            .replicas
            .iter()
            .position(|f| self.cfg.node_of_frame(*f) == node)?;
        self.replica_frames -= 1;
        Some(e.replicas.remove(pos))
    }

    /// The nodes currently holding a copy of `page` (master first).
    pub fn copy_nodes(&self, page: VirtPage) -> Vec<NodeId> {
        match self.entries.get(&page) {
            None => Vec::new(),
            Some(e) => e.all_frames().map(|f| self.cfg.node_of_frame(f)).collect(),
        }
    }

    /// The frame of `page`'s copy on `node`, if one exists.
    pub fn copy_on(&self, page: VirtPage, node: NodeId) -> Option<Frame> {
        self.entries
            .get(&page)?
            .all_frames()
            .find(|f| self.cfg.node_of_frame(*f) == node)
    }

    /// Pages that currently have replicas on `node` (reclaim candidates).
    pub fn replicated_pages_on(&self, node: NodeId) -> Vec<VirtPage> {
        let mut pages: Vec<VirtPage> = self
            .entries
            .iter()
            .filter(|(_, e)| {
                e.replicas
                    .iter()
                    .any(|f| self.cfg.node_of_frame(*f) == node)
            })
            .map(|(p, _)| *p)
            .collect();
        // The backing HashMap iterates in per-process random order, but
        // reclaim takes victims from the front of this list, so it must
        // be deterministic for runs to be reproducible under pressure.
        pages.sort_unstable();
        pages
    }

    /// Every (page, entry) pair, in unspecified order — used by the
    /// invariant checker to audit all replica chains.
    pub fn iter(&self) -> impl Iterator<Item = (VirtPage, &PageEntry)> {
        self.entries.iter().map(|(&p, e)| (p, e))
    }

    /// Replica frames currently live.
    pub fn replica_frames(&self) -> u64 {
        self.replica_frames
    }

    /// High-water mark of live replica frames — the numerator of the
    /// §7.2.3 replication space overhead.
    pub fn replica_frames_peak(&self) -> u64 {
        self.replica_frames_peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash() -> PageHash {
        PageHash::new(MachineConfig::cc_numa())
    }

    fn frame_on(node: u16, k: u64) -> Frame {
        Frame(node as u64 * 4096 + k)
    }

    #[test]
    fn master_then_replicas() {
        let mut h = hash();
        let p = VirtPage(1);
        h.insert_master(p, frame_on(0, 0));
        assert!(h.contains(p));
        assert!(!h.get(p).unwrap().is_replicated());
        h.add_replica(p, frame_on(3, 0));
        h.add_replica(p, frame_on(5, 0));
        let e = h.get(p).unwrap();
        assert_eq!(e.copy_count(), 3);
        assert!(e.is_replicated());
        assert_eq!(h.copy_nodes(p), vec![NodeId(0), NodeId(3), NodeId(5)]);
        assert_eq!(h.replica_frames(), 2);
    }

    #[test]
    #[should_panic(expected = "already in hash")]
    fn duplicate_master_panics() {
        let mut h = hash();
        h.insert_master(VirtPage(1), frame_on(0, 0));
        h.insert_master(VirtPage(1), frame_on(1, 0));
    }

    #[test]
    #[should_panic(expected = "already has a copy")]
    fn replica_on_same_node_panics() {
        let mut h = hash();
        h.insert_master(VirtPage(1), frame_on(0, 0));
        h.add_replica(VirtPage(1), frame_on(0, 1));
    }

    #[test]
    fn migrate_swaps_master() {
        let mut h = hash();
        let p = VirtPage(2);
        h.insert_master(p, frame_on(0, 0));
        let old = h.migrate_master(p, frame_on(4, 0));
        assert_eq!(old, frame_on(0, 0));
        assert_eq!(h.copy_nodes(p), vec![NodeId(4)]);
    }

    #[test]
    fn collapse_returns_replicas_and_updates_count() {
        let mut h = hash();
        let p = VirtPage(3);
        h.insert_master(p, frame_on(0, 0));
        h.add_replica(p, frame_on(1, 0));
        h.add_replica(p, frame_on(2, 0));
        let freed = h.collapse(p);
        assert_eq!(freed.len(), 2);
        assert_eq!(h.replica_frames(), 0);
        assert_eq!(h.replica_frames_peak(), 2, "peak survives collapse");
        assert_eq!(h.copy_nodes(p), vec![NodeId(0)]);
    }

    #[test]
    fn remove_replica_on_node() {
        let mut h = hash();
        let p = VirtPage(4);
        h.insert_master(p, frame_on(0, 0));
        h.add_replica(p, frame_on(1, 0));
        assert_eq!(h.remove_replica_on(p, NodeId(2)), None);
        assert_eq!(h.remove_replica_on(p, NodeId(1)), Some(frame_on(1, 0)));
        assert_eq!(h.replica_frames(), 0);
        // master is not removable this way
        assert_eq!(h.remove_replica_on(p, NodeId(0)), None);
    }

    #[test]
    fn copy_on_finds_nearest() {
        let mut h = hash();
        let p = VirtPage(5);
        h.insert_master(p, frame_on(0, 0));
        h.add_replica(p, frame_on(6, 0));
        assert_eq!(h.copy_on(p, NodeId(6)), Some(frame_on(6, 0)));
        assert_eq!(h.copy_on(p, NodeId(0)), Some(frame_on(0, 0)));
        assert_eq!(h.copy_on(p, NodeId(1)), None);
    }

    #[test]
    fn replicated_pages_on_node() {
        let mut h = hash();
        h.insert_master(VirtPage(1), frame_on(0, 0));
        h.add_replica(VirtPage(1), frame_on(2, 0));
        h.insert_master(VirtPage(2), frame_on(2, 1));
        assert_eq!(h.replicated_pages_on(NodeId(2)), vec![VirtPage(1)]);
        assert!(h.replicated_pages_on(NodeId(0)).is_empty());
        assert_eq!(h.len(), 2);
    }
}
