//! A deterministic lock-contention model.
//!
//! The paper found `memlock` — the single lock protecting IRIX's global
//! page hash and free lists — to be the second-largest kernel overhead
//! (page allocation spends most of its time contending for it), and added
//! page-level locks for replica-chain manipulation to relieve it. We model
//! each lock as a FIFO resource with a "busy until" horizon: an acquire at
//! time `t` that holds for `d` waits `max(0, busy_until - t)` and pushes
//! the horizon to `max(t, busy_until) + d`. Deterministic, ordering-driven
//! contention — exactly what the simulator needs for Tables 5 and 6.

use ccnuma_types::{Ns, VirtPage};
use std::collections::HashMap;

/// Which lock is being acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockId {
    /// The global VM lock protecting the page hash and free lists.
    Memlock,
    /// A per-page lock (the paper's finer-grain locking addition).
    Page(VirtPage),
}

/// Lock granularity mode, for the locking ablation bench: the stock
/// coarse IRIX scheme routes replica-chain work through `memlock`; the
/// paper's fine scheme uses page-level locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockGranularity {
    /// Replica-chain manipulation takes the global `memlock`.
    Coarse,
    /// Replica-chain manipulation takes a page-level lock (paper's change).
    #[default]
    Fine,
}

/// The contention model over all kernel locks.
///
/// # Examples
///
/// ```
/// use ccnuma_kernel::{LockId, LockModel};
/// use ccnuma_types::Ns;
///
/// let mut locks = LockModel::new();
/// // Two back-to-back holders of memlock: the second waits.
/// assert_eq!(locks.acquire(LockId::Memlock, Ns(0), Ns(100)), Ns(0));
/// assert_eq!(locks.acquire(LockId::Memlock, Ns(40), Ns(100)), Ns(60));
/// ```
#[derive(Debug, Clone)]
pub struct LockModel {
    busy_until: HashMap<LockId, Ns>,
    total_wait: Ns,
    acquisitions: u64,
    contended: u64,
    max_backlog: u64,
}

impl Default for LockModel {
    fn default() -> LockModel {
        LockModel {
            busy_until: HashMap::new(),
            total_wait: Ns::ZERO,
            acquisitions: 0,
            contended: 0,
            max_backlog: 6,
        }
    }
}

impl LockModel {
    /// A model with all locks free and the default backlog cap of 6.
    pub fn new() -> LockModel {
        LockModel::default()
    }

    /// Overrides the backlog cap (maximum queueing expressed in units of
    /// the hold time).
    ///
    /// # Panics
    ///
    /// Panics if `holders` is zero.
    #[must_use]
    pub fn with_max_backlog(mut self, holders: u64) -> LockModel {
        assert!(holders > 0, "backlog cap must be non-zero");
        self.max_backlog = holders;
        self
    }

    /// Acquires `lock` at time `now`, holding it for `hold`. Returns the
    /// queueing delay suffered (zero when the lock was free).
    ///
    /// The simulator's per-CPU clocks drift, so acquisition timestamps
    /// arrive slightly out of order; the wait is therefore capped at
    /// `max_backlog` holders' worth of queueing (a bounded-queue
    /// approximation that keeps one late-clocked CPU from seeing an
    /// unbounded backlog).
    pub fn acquire(&mut self, lock: LockId, now: Ns, hold: Ns) -> Ns {
        let busy = self.busy_until.entry(lock).or_insert(Ns::ZERO);
        let wait = busy.saturating_sub(now).min(hold * self.max_backlog);
        *busy = now.max(*busy).max(now + wait) + hold;
        self.acquisitions += 1;
        if wait > Ns::ZERO {
            self.contended += 1;
        }
        self.total_wait += wait;
        wait
    }

    /// Total time spent waiting across all acquisitions.
    pub fn total_wait(&self) -> Ns {
        self.total_wait
    }

    /// Number of acquisitions made.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Number of acquisitions that had to wait.
    pub fn contended(&self) -> u64 {
        self.contended
    }

    /// Fraction of acquisitions that waited.
    pub fn contention_rate(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_lock_is_free() {
        let mut m = LockModel::new();
        assert_eq!(m.acquire(LockId::Memlock, Ns(0), Ns(50)), Ns(0));
        assert_eq!(m.acquire(LockId::Memlock, Ns(1000), Ns(50)), Ns(0));
        assert_eq!(m.contended(), 0);
        assert_eq!(m.acquisitions(), 2);
    }

    #[test]
    fn overlapping_holders_queue_fifo() {
        let mut m = LockModel::new();
        m.acquire(LockId::Memlock, Ns(0), Ns(100));
        let w1 = m.acquire(LockId::Memlock, Ns(10), Ns(100));
        assert_eq!(w1, Ns(90)); // waits until 100
        let w2 = m.acquire(LockId::Memlock, Ns(20), Ns(100));
        assert_eq!(w2, Ns(180)); // waits until 200
        assert_eq!(m.total_wait(), Ns(270));
        // The backlog cap bounds a very late-clocked arrival.
        let w3 = m.acquire(LockId::Memlock, Ns(0), Ns(10));
        assert_eq!(w3, Ns(60), "capped at 6 holders x 10ns");
        assert_eq!(m.contended(), 3);
        assert!((m.contention_rate() - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn page_locks_are_independent() {
        let mut m = LockModel::new();
        m.acquire(LockId::Page(VirtPage(1)), Ns(0), Ns(100));
        // A different page's lock does not contend.
        assert_eq!(m.acquire(LockId::Page(VirtPage(2)), Ns(10), Ns(100)), Ns(0));
        // The same page's lock does.
        assert_eq!(
            m.acquire(LockId::Page(VirtPage(1)), Ns(10), Ns(100)),
            Ns(90)
        );
    }

    #[test]
    fn memlock_and_page_locks_disjoint() {
        let mut m = LockModel::new();
        m.acquire(LockId::Memlock, Ns(0), Ns(1000));
        assert_eq!(m.acquire(LockId::Page(VirtPage(1)), Ns(0), Ns(10)), Ns(0));
    }

    #[test]
    fn empty_model_rate_zero() {
        assert_eq!(LockModel::new().contention_rate(), 0.0);
    }
}
