//! IRIX-like virtual-memory substrate for page migration and replication.
//!
//! Section 4 of the paper describes the kernel mechanisms added to IRIX 5.2
//! to support the policy: replica chains hanging off the physical-page
//! hash table, page-level locks to relieve the global `memlock`, page-table
//! back-mappings from frames to the PTEs that reference them, batched TLB
//! shootdowns, and the pager interrupt handler of Figure 2 whose per-step
//! costs produce Tables 5 and 6. This crate reproduces each mechanism:
//!
//! * [`FrameAllocator`] — per-node free lists with a memory-pressure
//!   threshold (the "% No Page" failures of Table 4);
//! * [`PageHash`] — logical-page → master frame plus replica chains;
//! * [`PageTables`] — per-process mappings with frame→PTE back-maps;
//! * [`LockModel`] — a deterministic contention model for `memlock` and
//!   the added page-level locks;
//! * [`CostParams`]/[`CostBook`] — the per-step latency model behind
//!   Tables 5 and 6;
//! * [`Pager`] — the Figure 2 handler: migrate, replicate, collapse and
//!   remap, with batched TLB flushes and broadcast or targeted shootdown.
//!
//! # Examples
//!
//! Migrate a page and watch the mapping and cost book update:
//!
//! ```
//! use ccnuma_kernel::{PageOp, Pager, PagerConfig};
//! use ccnuma_types::{MachineConfig, NodeId, Ns, Pid, VirtPage};
//!
//! let mut pager = Pager::new(PagerConfig::for_machine(MachineConfig::cc_numa()));
//! let pid = Pid(1);
//! let page = VirtPage(0x44);
//! pager.first_touch(pid, page, NodeId(0));
//! assert_eq!(pager.mapping_node(pid, page), Some(NodeId(0)));
//!
//! let outcomes = pager.service_batch(Ns::from_ms(1), &[PageOp::migrate(page, NodeId(3))]);
//! assert!(outcomes[0].succeeded());
//! assert_eq!(pager.mapping_node(pid, page), Some(NodeId(3)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod costs;
mod frames;
mod hash;
mod locks;
mod pager;
mod tables;
pub mod verify;

pub use costs::{CostBook, CostParams, OpClass, PagerStep};
pub use frames::FrameAllocator;
pub use hash::{PageEntry, PageHash};
pub use locks::{LockGranularity, LockId, LockModel};
pub use pager::{BatchStats, OpFailReason, OpOutcome, PageOp, Pager, PagerConfig, ShootdownMode};
pub use tables::PageTables;
