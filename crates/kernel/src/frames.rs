//! Per-node physical frame allocation.

use ccnuma_types::{Frame, MachineConfig, NodeId, SimError};

/// Per-node free lists over the machine's physical frames.
///
/// Frames are numbered node-major (see
/// [`MachineConfig::node_of_frame`]); each node hands
/// out its own frames in ascending order and recycles freed ones LIFO.
/// A node is under *memory pressure* once its free count drops below a
/// configurable fraction of its capacity — the policy stops replicating
/// onto such nodes (decision node 3a of Figure 1).
///
/// # Examples
///
/// ```
/// use ccnuma_kernel::FrameAllocator;
/// use ccnuma_types::{MachineConfig, NodeId};
///
/// let cfg = MachineConfig::cc_numa().with_frames_per_node(4);
/// let mut alloc = FrameAllocator::new(&cfg);
/// let f = alloc.alloc(NodeId(2)).unwrap();
/// assert_eq!(cfg.node_of_frame(f), NodeId(2));
/// assert_eq!(alloc.free_on(NodeId(2)), 3);
/// alloc.free(f).unwrap();
/// assert_eq!(alloc.free_on(NodeId(2)), 4);
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    cfg: MachineConfig,
    /// Next never-allocated frame per node.
    next: Vec<u64>,
    /// Recycled frames per node.
    recycled: Vec<Vec<Frame>>,
    /// Allocated count per node.
    used: Vec<u32>,
    /// Free fraction below which a node reports pressure.
    pressure_threshold: f64,
}

impl FrameAllocator {
    /// Builds an allocator for the machine's frame ranges with the default
    /// 5 % pressure threshold.
    pub fn new(cfg: &MachineConfig) -> FrameAllocator {
        FrameAllocator {
            next: (0..cfg.nodes)
                .map(|n| cfg.first_frame_of(NodeId(n)).0)
                .collect(),
            recycled: vec![Vec::new(); cfg.nodes as usize],
            used: vec![0; cfg.nodes as usize],
            pressure_threshold: 0.05,
            cfg: cfg.clone(),
        }
    }

    /// Overrides the pressure threshold (fraction of capacity that must
    /// remain free).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction < 1.0`.
    #[must_use]
    pub fn with_pressure_threshold(mut self, fraction: f64) -> FrameAllocator {
        assert!(
            (0.0..1.0).contains(&fraction),
            "pressure threshold must be in [0, 1)"
        );
        self.pressure_threshold = fraction;
        self
    }

    /// Allocates a frame on `node`, or `None` when the node is exhausted —
    /// the condition behind Table 4's "% No Page" column.
    pub fn alloc(&mut self, node: NodeId) -> Option<Frame> {
        let i = node.index();
        let frame = if let Some(f) = self.recycled[i].pop() {
            Some(f)
        } else {
            let limit = self.cfg.first_frame_of(node).0 + self.cfg.frames_per_node as u64;
            if self.next[i] < limit {
                let f = Frame(self.next[i]);
                self.next[i] += 1;
                Some(f)
            } else {
                None
            }
        };
        if frame.is_some() {
            self.used[i] += 1;
        }
        frame
    }

    /// Allocates on `node` if possible, otherwise falls back to the
    /// node with the most free frames (used for first-touch allocation,
    /// which must not fail while the machine has memory anywhere).
    pub fn alloc_with_fallback(&mut self, node: NodeId) -> Option<Frame> {
        if let Some(f) = self.alloc(node) {
            return Some(f);
        }
        let best = (0..self.cfg.nodes)
            .map(NodeId)
            .max_by_key(|n| self.free_on(*n))?;
        self.alloc(best)
    }

    /// Returns a frame to its node's free list.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DoubleFree`] if the frame is already free —
    /// either its node has no outstanding allocations, or the frame
    /// itself is sitting on the free list. The allocator state is left
    /// untouched, so the caller can degrade instead of corrupting the
    /// accounting.
    pub fn free(&mut self, frame: Frame) -> Result<(), SimError> {
        let node = self.cfg.node_of_frame(frame);
        let i = node.index();
        if self.used[i] == 0 || self.recycled[i].contains(&frame) {
            return Err(SimError::DoubleFree { frame, node });
        }
        self.used[i] -= 1;
        self.recycled[i].push(frame);
        Ok(())
    }

    /// Free frames remaining on `node`.
    pub fn free_on(&self, node: NodeId) -> u32 {
        self.cfg.frames_per_node - self.used[node.index()]
    }

    /// Allocated frames on `node`.
    pub fn used_on(&self, node: NodeId) -> u32 {
        self.used[node.index()]
    }

    /// Total allocated frames machine-wide.
    pub fn used_total(&self) -> u64 {
        self.used.iter().map(|&u| u as u64).sum()
    }

    /// True when `node`'s free memory has fallen below the pressure
    /// threshold.
    pub fn pressure(&self, node: NodeId) -> bool {
        (self.free_on(node) as f64) < self.pressure_threshold * self.cfg.frames_per_node as f64
    }

    /// The machine configuration this allocator serves.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MachineConfig {
        MachineConfig::cc_numa()
            .with_nodes(2)
            .with_frames_per_node(4)
    }

    #[test]
    fn alloc_until_exhaustion() {
        let mut a = FrameAllocator::new(&small());
        for _ in 0..4 {
            assert!(a.alloc(NodeId(0)).is_some());
        }
        assert_eq!(a.alloc(NodeId(0)), None);
        assert_eq!(a.free_on(NodeId(0)), 0);
        assert_eq!(a.free_on(NodeId(1)), 4);
    }

    #[test]
    fn frames_belong_to_their_node() {
        let cfg = small();
        let mut a = FrameAllocator::new(&cfg);
        let f0 = a.alloc(NodeId(0)).unwrap();
        let f1 = a.alloc(NodeId(1)).unwrap();
        assert_eq!(cfg.node_of_frame(f0), NodeId(0));
        assert_eq!(cfg.node_of_frame(f1), NodeId(1));
    }

    #[test]
    fn free_recycles() {
        let mut a = FrameAllocator::new(&small());
        let f = a.alloc(NodeId(0)).unwrap();
        a.free(f).unwrap();
        assert_eq!(a.free_on(NodeId(0)), 4);
        // recycled frame is reused
        assert_eq!(a.alloc(NodeId(0)), Some(f));
    }

    #[test]
    fn double_free_is_an_error_and_leaves_state_intact() {
        let mut a = FrameAllocator::new(&small());
        let f = a.alloc(NodeId(0)).unwrap();
        a.free(f).unwrap();
        let err = a.free(f).unwrap_err();
        assert_eq!(
            err,
            SimError::DoubleFree {
                frame: f,
                node: NodeId(0)
            }
        );
        // Accounting is untouched: the frame is free exactly once.
        assert_eq!(a.free_on(NodeId(0)), 4);
        assert_eq!(a.alloc(NodeId(0)), Some(f));
        assert_eq!(a.alloc(NodeId(0)).map(|g| g == f), Some(false));
    }

    #[test]
    fn free_with_other_frames_outstanding_still_detects_double_free() {
        let mut a = FrameAllocator::new(&small());
        let f = a.alloc(NodeId(0)).unwrap();
        let _g = a.alloc(NodeId(0)).unwrap();
        a.free(f).unwrap();
        // used > 0 because g is still out, but f is already on the free
        // list: this is a double free, not a legal return.
        assert!(matches!(a.free(f), Err(SimError::DoubleFree { .. })));
        assert_eq!(a.used_on(NodeId(0)), 1);
    }

    #[test]
    fn fallback_spills_to_freest_node() {
        let cfg = small();
        let mut a = FrameAllocator::new(&cfg);
        for _ in 0..4 {
            a.alloc(NodeId(0)).unwrap();
        }
        let f = a.alloc_with_fallback(NodeId(0)).unwrap();
        assert_eq!(cfg.node_of_frame(f), NodeId(1));
        // exhaust everything
        for _ in 0..3 {
            a.alloc_with_fallback(NodeId(0)).unwrap();
        }
        assert_eq!(a.alloc_with_fallback(NodeId(0)), None);
    }

    #[test]
    fn pressure_trips_below_threshold() {
        let cfg = MachineConfig::cc_numa()
            .with_nodes(1)
            .with_frames_per_node(100);
        let mut a = FrameAllocator::new(&cfg).with_pressure_threshold(0.10);
        for _ in 0..90 {
            a.alloc(NodeId(0)).unwrap();
        }
        assert!(!a.pressure(NodeId(0)), "exactly 10% free is not pressure");
        a.alloc(NodeId(0)).unwrap();
        assert!(a.pressure(NodeId(0)));
        assert_eq!(a.used_total(), 91);
        assert_eq!(a.used_on(NodeId(0)), 91);
    }
}
