//! The per-step latency model behind Tables 5 and 6.
//!
//! Each pager operation walks the Figure 2 steps; every step charges a
//! cost from [`CostParams`] (plus modelled lock waits) and records it in
//! the [`CostBook`]. Table 5 is the book's per-operation averages by
//! step; Table 6 is the book's step totals as percentages of the total
//! kernel overhead.

use ccnuma_types::{MachineConfig, Ns};
use core::fmt;

/// The Figure 2 / Table 5 step names, plus the extra "Page Fault"
/// category Table 6 adds for the soft faults caused by changed mappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PagerStep {
    /// Taking and dispatching the pager interrupt (amortized per page).
    IntrProc,
    /// Reading counters and walking the decision tree.
    PolicyDecision,
    /// Allocating the destination frame (dominated by memlock contention).
    PageAlloc,
    /// Linking the new page into the hash/replica chain and updating PTEs.
    LinksMapping,
    /// Flushing TLBs (amortized per page across the batch).
    TlbFlush,
    /// Physically copying the page.
    PageCopy,
    /// Freeing old frames and setting final mappings.
    PolicyEnd,
    /// Subsequent soft page faults caused by the changed mappings.
    PageFault,
}

impl PagerStep {
    /// All steps, in Table 5 column order (PageFault last, Table 6 only).
    pub const ALL: [PagerStep; 8] = [
        PagerStep::IntrProc,
        PagerStep::PolicyDecision,
        PagerStep::PageAlloc,
        PagerStep::LinksMapping,
        PagerStep::TlbFlush,
        PagerStep::PageCopy,
        PagerStep::PolicyEnd,
        PagerStep::PageFault,
    ];

    fn index(self) -> usize {
        match self {
            PagerStep::IntrProc => 0,
            PagerStep::PolicyDecision => 1,
            PagerStep::PageAlloc => 2,
            PagerStep::LinksMapping => 3,
            PagerStep::TlbFlush => 4,
            PagerStep::PageCopy => 5,
            PagerStep::PolicyEnd => 6,
            PagerStep::PageFault => 7,
        }
    }
}

impl fmt::Display for PagerStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PagerStep::IntrProc => "Intr. Proc",
            PagerStep::PolicyDecision => "Policy Decision",
            PagerStep::PageAlloc => "Page Alloc",
            PagerStep::LinksMapping => "Links & Mapping",
            PagerStep::TlbFlush => "TLB Flush",
            PagerStep::PageCopy => "Page Copying",
            PagerStep::PolicyEnd => "Policy End",
            PagerStep::PageFault => "Page Fault",
        })
    }
}

/// Classes of pager operation tracked separately in the cost book.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Page migration.
    Migrate,
    /// Page replication.
    Replicate,
    /// Replica collapse on a write.
    Collapse,
    /// Repointing a stale mapping at an existing local copy.
    Remap,
}

impl OpClass {
    /// All classes.
    pub const ALL: [OpClass; 4] = [
        OpClass::Migrate,
        OpClass::Replicate,
        OpClass::Collapse,
        OpClass::Remap,
    ];

    fn index(self) -> usize {
        match self {
            OpClass::Migrate => 0,
            OpClass::Replicate => 1,
            OpClass::Collapse => 2,
            OpClass::Remap => 3,
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpClass::Migrate => "Migr.",
            OpClass::Replicate => "Repl.",
            OpClass::Collapse => "Coll.",
            OpClass::Remap => "Remap",
        })
    }
}

/// Base costs for each pager step, calibrated so an 8-CPU CC-NUMA batch
/// lands in the paper's 400–500 µs-per-operation range with TLB flushing
/// and page allocation as the two largest overheads (Tables 5 and 6).
///
/// Data-movement and shootdown costs are derived from the machine's
/// remote latency, which is how the CC-NOW configuration's ~600 µs
/// per-operation cost (§7.1.3) emerges without separate tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostParams {
    /// Taking the low-priority pager interrupt (per batch).
    pub intr_batch: Ns,
    /// Walking the decision tree (per page).
    pub decision: Ns,
    /// Base frame-allocation cost excluding memlock waits (per page).
    pub page_alloc_base: Ns,
    /// How long an allocation holds memlock.
    pub memlock_hold_alloc: Ns,
    /// Base hash/PTE work for a replication (page-level lock only).
    pub links_repl_base: Ns,
    /// Base hash/PTE work for a migration (must take memlock).
    pub links_migr_base: Ns,
    /// How long migration's hash manipulation holds memlock.
    pub memlock_hold_links: Ns,
    /// How long replica-chain manipulation holds the page lock.
    pub page_lock_hold: Ns,
    /// Per-PTE update cost during links/mapping and policy-end.
    pub per_pte: Ns,
    /// Fixed cost of initiating a TLB flush (per batch).
    pub tlb_flush_batch: Ns,
    /// Per-CPU shootdown cost (IPI round trip; scales with remote latency).
    pub tlb_flush_per_cpu: Ns,
    /// Base page-copy cost (the processor's copy loop).
    pub copy_base: Ns,
    /// Per-cache-line transfer cost during the copy (remote latency).
    pub copy_per_line: Ns,
    /// Lines per page (from the machine config).
    pub lines_per_page: u32,
    /// Policy-end base for a replication (set all mappings to nearest).
    pub end_repl_base: Ns,
    /// Policy-end base for a migration (free old page, final mappings).
    pub end_migr_base: Ns,
    /// Cost of one soft page fault caused by a changed mapping.
    pub pfault: Ns,
    /// Cost of a remap operation (PTE fix plus local TLB invalidate).
    pub remap: Ns,
    /// §7.2.2: FLASH's directory controller can do a pipelined
    /// memory-to-memory copy in ~35 µs instead of the processor's
    /// unoptimized ~100 µs bcopy. When set,
    /// [`copy_cost`](CostParams::copy_cost) returns the pipelined figure.
    pub pipelined_copy: bool,
}

impl CostParams {
    /// Costs for the given machine; data movement and IPI costs follow the
    /// machine's remote latency. When a [`ccnuma_types::Topology`] is
    /// installed, `remote_latency` is its worst read path
    /// ([`ccnuma_types::Topology::max_read_latency`]), so these tables
    /// track the topology without further plumbing; the pager refines the
    /// per-copy charge to the actual hop path via
    /// [`CostParams::copy_cost_on_path`].
    pub fn for_machine(cfg: &MachineConfig) -> CostParams {
        CostParams {
            intr_batch: Ns::from_us(30),
            decision: Ns::from_us(13),
            page_alloc_base: Ns::from_us(55),
            memlock_hold_alloc: Ns::from_us(28),
            links_repl_base: Ns::from_us(26),
            links_migr_base: Ns::from_us(62),
            memlock_hold_links: Ns::from_us(30),
            page_lock_hold: Ns::from_us(8),
            per_pte: Ns::from_us(2),
            tlb_flush_batch: Ns::from_us(30),
            // An inter-processor interrupt, handler dispatch and ack per
            // victim CPU — the paper's dominant kernel overhead.
            tlb_flush_per_cpu: Ns::from_us(10) + cfg.remote_latency * 2,
            copy_base: Ns::from_us(55),
            copy_per_line: cfg.remote_latency,
            lines_per_page: cfg.lines_per_page(),
            end_repl_base: Ns::from_us(70),
            end_migr_base: Ns::from_us(58),
            pfault: Ns::from_us(25),
            remap: Ns::from_us(22),
            pipelined_copy: false,
        }
    }

    /// The full page-copy cost for one page, at the machine-wide
    /// worst-case per-line latency ([`CostParams::copy_per_line`]).
    pub fn copy_cost(&self) -> Ns {
        self.copy_cost_on_path(self.copy_per_line)
    }

    /// The page-copy cost over a specific topology path, where
    /// `per_line` is the destination node's read latency for one cache
    /// line from the source node. On the flat machine every off-node
    /// path reads at `remote_latency`, so this equals
    /// [`copy_cost`](CostParams::copy_cost); on hierarchical or
    /// CXL-tiered topologies a nearby source makes the copy cheaper and
    /// a far-tier source makes it dearer, line by line. The pipelined
    /// copy (§7.2.2) streams the page inside the directory controller
    /// and is indifferent to the path.
    pub fn copy_cost_on_path(&self, per_line: Ns) -> Ns {
        if self.pipelined_copy {
            // The MAGIC controller streams the page without involving
            // the processor (§7.2.2).
            Ns::from_us(35)
        } else {
            self.copy_base + per_line * self.lines_per_page as u64
        }
    }

    /// The TLB-flush cost for one batch when `cpus` TLBs must be flushed.
    pub fn tlb_flush_cost(&self, cpus: u32) -> Ns {
        self.tlb_flush_batch + self.tlb_flush_per_cpu * cpus as u64
    }
}

/// Accumulated pager costs: per (operation class, step) totals plus
/// operation counts — everything Tables 5 and 6 need.
///
/// Two kinds of charge exist: *per-operation* charges (the latency the
/// initiating CPU sees; Table 5 averages these) and *system* charges
/// (CPU time burned on other processors, e.g. every victim spinning in
/// the TLB-flush rendezvous; Table 6's totals include them, which is why
/// the paper reports TLB flushing as 34–54 % of kernel overhead even
/// though it is a modest slice of each operation's latency).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostBook {
    totals: [[Ns; 8]; 4],
    system: [Ns; 8],
    counts: [u64; 4],
}

impl CostBook {
    /// An empty book.
    pub fn new() -> CostBook {
        CostBook::default()
    }

    /// Charges `t` to (`op`, `step`) as initiator latency.
    pub fn add(&mut self, op: OpClass, step: PagerStep, t: Ns) {
        self.totals[op.index()][step.index()] += t;
    }

    /// Charges `t` of system-wide CPU time to `step` (time burned on
    /// processors other than the initiator).
    pub fn add_system(&mut self, step: PagerStep, t: Ns) {
        self.system[step.index()] += t;
    }

    /// System-wide CPU time charged to `step`.
    pub fn system_total(&self, step: PagerStep) -> Ns {
        self.system[step.index()]
    }

    /// Counts one completed operation of class `op`.
    pub fn count_op(&mut self, op: OpClass) {
        self.counts[op.index()] += 1;
    }

    /// Operations completed of class `op`.
    pub fn ops(&self, op: OpClass) -> u64 {
        self.counts[op.index()]
    }

    /// Total charged to (`op`, `step`).
    pub fn step_total(&self, op: OpClass, step: PagerStep) -> Ns {
        self.totals[op.index()][step.index()]
    }

    /// Table 5 cell: average per-operation latency of `step` for `op`.
    pub fn avg_step(&self, op: OpClass, step: PagerStep) -> Ns {
        let n = self.counts[op.index()];
        if n == 0 {
            Ns::ZERO
        } else {
            self.totals[op.index()][step.index()] / n
        }
    }

    /// Table 5 total column: average end-to-end latency per `op`.
    pub fn avg_total(&self, op: OpClass) -> Ns {
        let n = self.counts[op.index()];
        if n == 0 {
            return Ns::ZERO;
        }
        let sum: Ns = PagerStep::ALL
            .iter()
            .map(|s| self.totals[op.index()][s.index()])
            .sum();
        sum / n
    }

    /// Table 6 numerator: total kernel time in `step` across all classes,
    /// including system-wide (victim-CPU) time.
    pub fn total_by_step(&self, step: PagerStep) -> Ns {
        let per_op: Ns = OpClass::ALL
            .iter()
            .map(|op| self.totals[op.index()][step.index()])
            .sum();
        per_op + self.system[step.index()]
    }

    /// Total kernel overhead across all steps and classes.
    pub fn total(&self) -> Ns {
        PagerStep::ALL.iter().map(|s| self.total_by_step(*s)).sum()
    }

    /// Table 6 cell: `step`'s percentage of the total kernel overhead.
    pub fn pct_by_step(&self, step: PagerStep) -> f64 {
        let total = self.total();
        if total == Ns::ZERO {
            0.0
        } else {
            100.0 * self.total_by_step(step).0 as f64 / total.0 as f64
        }
    }

    /// Number of values in the [`to_raw_parts`](CostBook::to_raw_parts)
    /// flattening: the 4×8 initiator totals, 8 system-wide slices, and
    /// 4 op counts.
    pub const RAW_LEN: usize = 44;

    /// Flattens the book into a fixed-order `u64` array, the checkpoint
    /// journal's exact serialization surface.
    pub fn to_raw_parts(&self) -> [u64; CostBook::RAW_LEN] {
        let mut out = [0u64; CostBook::RAW_LEN];
        let mut i = 0;
        for op in 0..4 {
            for step in 0..8 {
                out[i] = self.totals[op][step].0;
                i += 1;
            }
        }
        for step in 0..8 {
            out[i] = self.system[step].0;
            i += 1;
        }
        for op in 0..4 {
            out[i] = self.counts[op];
            i += 1;
        }
        out
    }

    /// Rebuilds a book from a [`to_raw_parts`](CostBook::to_raw_parts)
    /// flattening.
    pub fn from_raw_parts(raw: [u64; CostBook::RAW_LEN]) -> CostBook {
        let mut book = CostBook::new();
        let mut i = 0;
        for op in 0..4 {
            for step in 0..8 {
                book.totals[op][step] = Ns(raw[i]);
                i += 1;
            }
        }
        for step in 0..8 {
            book.system[step] = Ns(raw[i]);
            i += 1;
        }
        for op in 0..4 {
            book.counts[op] = raw[i];
            i += 1;
        }
        book
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_parts_round_trip_exactly() {
        let mut book = CostBook::new();
        book.add(OpClass::Migrate, PagerStep::PageCopy, Ns(93_400));
        book.add_system(PagerStep::TlbFlush, Ns(12_000));
        book.count_op(OpClass::Migrate);
        book.count_op(OpClass::Replicate);
        let rebuilt = CostBook::from_raw_parts(book.to_raw_parts());
        assert_eq!(rebuilt, book);
        assert_eq!(rebuilt.total(), book.total());
    }

    #[test]
    fn copy_and_flush_scale_with_remote_latency() {
        let numa = CostParams::for_machine(&MachineConfig::cc_numa());
        let now = CostParams::for_machine(&MachineConfig::cc_now());
        assert!(now.copy_cost() > numa.copy_cost());
        assert!(now.tlb_flush_cost(8) > numa.tlb_flush_cost(8));
        // CC-NUMA copy ≈ 55 + 32×1.2 = 93.4 µs — the paper's ~100 µs bcopy.
        let us = numa.copy_cost().as_us();
        assert!((85.0..110.0).contains(&us), "copy cost {us} µs");
    }

    #[test]
    fn pipelined_copy_is_35us() {
        let mut p = CostParams::for_machine(&MachineConfig::cc_numa());
        let slow = p.copy_cost();
        p.pipelined_copy = true;
        assert_eq!(p.copy_cost(), Ns::from_us(35));
        assert!(p.copy_cost() < slow);
    }

    #[test]
    fn targeted_flush_is_cheaper() {
        let p = CostParams::for_machine(&MachineConfig::cc_numa());
        assert!(p.tlb_flush_cost(2) < p.tlb_flush_cost(8));
    }

    #[test]
    fn book_averages() {
        let mut b = CostBook::new();
        b.add(OpClass::Migrate, PagerStep::PageCopy, Ns::from_us(100));
        b.add(OpClass::Migrate, PagerStep::PageCopy, Ns::from_us(50));
        b.count_op(OpClass::Migrate);
        b.count_op(OpClass::Migrate);
        assert_eq!(b.ops(OpClass::Migrate), 2);
        assert_eq!(
            b.avg_step(OpClass::Migrate, PagerStep::PageCopy),
            Ns::from_us(75)
        );
        assert_eq!(b.avg_total(OpClass::Migrate), Ns::from_us(75));
        assert_eq!(b.avg_total(OpClass::Replicate), Ns::ZERO);
    }

    #[test]
    fn book_step_percentages() {
        let mut b = CostBook::new();
        b.add(OpClass::Migrate, PagerStep::TlbFlush, Ns::from_us(60));
        b.add(OpClass::Replicate, PagerStep::TlbFlush, Ns::from_us(40));
        b.add(OpClass::Replicate, PagerStep::PageAlloc, Ns::from_us(100));
        assert_eq!(b.total_by_step(PagerStep::TlbFlush), Ns::from_us(100));
        assert_eq!(b.total(), Ns::from_us(200));
        assert_eq!(b.pct_by_step(PagerStep::TlbFlush), 50.0);
        assert_eq!(b.pct_by_step(PagerStep::PageCopy), 0.0);
    }

    #[test]
    fn system_charges_count_in_totals_not_averages() {
        let mut b = CostBook::new();
        b.add(OpClass::Migrate, PagerStep::TlbFlush, Ns::from_us(30));
        b.count_op(OpClass::Migrate);
        b.add_system(PagerStep::TlbFlush, Ns::from_us(300));
        assert_eq!(
            b.avg_step(OpClass::Migrate, PagerStep::TlbFlush),
            Ns::from_us(30)
        );
        assert_eq!(b.total_by_step(PagerStep::TlbFlush), Ns::from_us(330));
        assert_eq!(b.system_total(PagerStep::TlbFlush), Ns::from_us(300));
        assert_eq!(b.total(), Ns::from_us(330));
    }

    #[test]
    fn empty_book_is_zero() {
        let b = CostBook::new();
        assert_eq!(b.total(), Ns::ZERO);
        assert_eq!(b.pct_by_step(PagerStep::TlbFlush), 0.0);
    }

    #[test]
    fn step_display_matches_paper_headers() {
        assert_eq!(PagerStep::LinksMapping.to_string(), "Links & Mapping");
        assert_eq!(PagerStep::TlbFlush.to_string(), "TLB Flush");
        assert_eq!(OpClass::Migrate.to_string(), "Migr.");
    }
}
