//! The pager interrupt handler (Figure 2).
//!
//! The directory controller batches hot pages and raises a low-priority
//! interrupt; the handler iterates steps 3–5 per page, performs **one**
//! TLB flush for the whole batch, then finishes with copy and policy-end
//! per page. Every step charges the [`CostBook`] so Tables 5 and 6 fall
//! out of a run.

use crate::costs::OpClass;
use crate::{
    CostBook, CostParams, FrameAllocator, LockGranularity, LockId, LockModel, PageHash, PageTables,
    PagerStep,
};
use ccnuma_core::PageLocation;
use ccnuma_faults::{FaultInjector, FaultOp, NullFaults};
use ccnuma_types::{Frame, MachineConfig, NodeId, Ns, Pid, Topology, VirtPage};
use std::collections::{BTreeMap, HashMap, HashSet};

/// How TLB shootdowns pick their victim CPUs.
///
/// IRIX has no record of which processors hold a mapping, so it must flush
/// every TLB; §7.2.2 simulates tracking mapping holders and flushing only
/// those, reporting ~25 % lower kernel overhead (2 of 8 TLBs on average).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShootdownMode {
    /// Flush all TLBs in the machine (stock IRIX).
    #[default]
    Broadcast,
    /// Flush only CPUs whose processes map the affected pages.
    Targeted,
}

/// Configuration for a [`Pager`].
#[derive(Debug, Clone)]
pub struct PagerConfig {
    /// The machine being managed.
    pub machine: MachineConfig,
    /// Step-cost parameters (defaults derived from the machine).
    pub costs: CostParams,
    /// TLB shootdown strategy.
    pub shootdown: ShootdownMode,
    /// Lock granularity for replica-chain manipulation.
    pub granularity: LockGranularity,
}

impl PagerConfig {
    /// The paper's kernel on the given machine: broadcast shootdown and
    /// the added page-level (fine) locks.
    pub fn for_machine(machine: MachineConfig) -> PagerConfig {
        PagerConfig {
            costs: CostParams::for_machine(&machine),
            shootdown: ShootdownMode::Broadcast,
            granularity: LockGranularity::Fine,
            machine,
        }
    }

    /// Switches the shootdown mode.
    #[must_use]
    pub fn with_shootdown(mut self, mode: ShootdownMode) -> PagerConfig {
        self.shootdown = mode;
        self
    }

    /// Switches the lock granularity.
    #[must_use]
    pub fn with_granularity(mut self, granularity: LockGranularity) -> PagerConfig {
        self.granularity = granularity;
        self
    }

    /// Enables the directory controller's pipelined page copy (§7.2.2).
    #[must_use]
    pub fn with_pipelined_copy(mut self, enabled: bool) -> PagerConfig {
        self.costs.pipelined_copy = enabled;
        self
    }
}

/// One operation handed to [`Pager::service_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageOp {
    /// Move `page`'s master to node `to`.
    Migrate {
        /// The hot page.
        page: VirtPage,
        /// Destination node.
        to: NodeId,
    },
    /// Create a replica of `page` on node `at`.
    Replicate {
        /// The hot page.
        page: VirtPage,
        /// Node receiving the replica.
        at: NodeId,
    },
    /// Collapse `page`'s replicas to the master (write to replicated page).
    Collapse {
        /// The written page.
        page: VirtPage,
    },
    /// Repoint `pid`'s stale mapping of `page` to the copy on `to`.
    Remap {
        /// The page with a local copy.
        page: VirtPage,
        /// The process with the stale mapping.
        pid: Pid,
        /// Node holding the copy to use.
        to: NodeId,
    },
}

impl PageOp {
    /// Convenience constructor for a migration.
    pub fn migrate(page: VirtPage, to: NodeId) -> PageOp {
        PageOp::Migrate { page, to }
    }

    /// Convenience constructor for a replication.
    pub fn replicate(page: VirtPage, at: NodeId) -> PageOp {
        PageOp::Replicate { page, at }
    }

    /// Convenience constructor for a collapse.
    pub fn collapse(page: VirtPage) -> PageOp {
        PageOp::Collapse { page }
    }

    /// Convenience constructor for a remap.
    pub fn remap(page: VirtPage, pid: Pid, to: NodeId) -> PageOp {
        PageOp::Remap { page, pid, to }
    }

    /// The page this operation affects.
    pub fn page(&self) -> VirtPage {
        match *self {
            PageOp::Migrate { page, .. }
            | PageOp::Replicate { page, .. }
            | PageOp::Collapse { page }
            | PageOp::Remap { page, .. } => page,
        }
    }

    fn class(&self) -> OpClass {
        match self {
            PageOp::Migrate { .. } => OpClass::Migrate,
            PageOp::Replicate { .. } => OpClass::Replicate,
            PageOp::Collapse { .. } => OpClass::Collapse,
            PageOp::Remap { .. } => OpClass::Remap,
        }
    }

    fn needs_global_flush(&self) -> bool {
        !matches!(self, PageOp::Remap { .. })
    }
}

/// Why an operation failed (the typed payload of [`OpOutcome::Failed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpFailReason {
    /// The page data copy aborted mid-flight (transient; retryable).
    CopyAborted,
    /// The page's hash entry vanished mid-operation (racing collapse or
    /// reclaim; not retryable against the same chain).
    MissingPage,
    /// Freeing the operation's dead frame was rejected as a double free;
    /// the mapping change stands but the frame was leaked rather than
    /// corrupt the allocator.
    DoubleFree,
}

impl OpFailReason {
    /// Short lowercase name for logs and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            OpFailReason::CopyAborted => "copy_aborted",
            OpFailReason::MissingPage => "missing_page",
            OpFailReason::DoubleFree => "double_free",
        }
    }

    /// Whether retrying the same operation can plausibly succeed.
    pub fn retryable(&self) -> bool {
        matches!(self, OpFailReason::CopyAborted)
    }
}

/// Result of one operation in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOutcome {
    /// The operation completed; `latency` is its end-to-end share of the
    /// batch (amortized interrupt and flush costs included).
    Done {
        /// End-to-end latency of the operation.
        latency: Ns,
    },
    /// No frame could be allocated on the target node (Table 4 "No Page").
    NoPage,
    /// The operation was dropped (e.g. collapse of a non-replicated page
    /// that raced with another collapse).
    Skipped,
    /// The operation failed for `reason` without completing; the pager's
    /// state is consistent and the caller may retry or drop the op.
    Failed {
        /// The typed failure cause.
        reason: OpFailReason,
    },
}

impl OpOutcome {
    /// True for [`OpOutcome::Done`].
    pub fn succeeded(&self) -> bool {
        matches!(self, OpOutcome::Done { .. })
    }
}

/// Per-batch summary returned alongside the outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Total kernel time consumed by the batch.
    pub total_latency: Ns,
    /// TLBs flushed by the batch's single shootdown (0 if none needed).
    pub tlbs_flushed: u32,
    /// Operations that needed the shootdown.
    pub flush_ops: u32,
}

/// The kernel pager: VM state plus the Figure 2 handler.
///
/// See the [crate docs](crate) for a worked example.
#[derive(Debug, Clone)]
pub struct Pager {
    cfg: PagerConfig,
    frames: FrameAllocator,
    hash: PageHash,
    tables: PageTables,
    locks: LockModel,
    book: CostBook,
    /// Last known node for each process (set by the scheduler), used to
    /// pick "nearest" copies in policy-end.
    pid_nodes: HashMap<Pid, NodeId>,
    /// Frames held out of circulation by injected memory-pressure storms,
    /// per node (BTreeMap keeps release order deterministic).
    seized: BTreeMap<NodeId, Vec<Frame>>,
    /// The machine's latency model, resolved once; page copies are
    /// charged by their actual hop path through it.
    topo: Topology,
    last_batch: BatchStats,
    batches: u64,
}

impl Pager {
    /// A pager over a fresh machine.
    pub fn new(cfg: PagerConfig) -> Pager {
        let frames = FrameAllocator::new(&cfg.machine);
        let hash = PageHash::new(cfg.machine.clone());
        let topo = cfg.machine.effective_topology();
        Pager {
            frames,
            hash,
            topo,
            tables: PageTables::new(),
            locks: LockModel::new(),
            book: CostBook::new(),
            pid_nodes: HashMap::new(),
            seized: BTreeMap::new(),
            last_batch: BatchStats::default(),
            batches: 0,
            cfg,
        }
    }

    /// Records where `pid` currently runs (the scheduler calls this); the
    /// pager uses it to pick nearest copies during policy-end.
    pub fn set_pid_node(&mut self, pid: Pid, node: NodeId) {
        self.pid_nodes.insert(pid, node);
    }

    fn pid_node(&self, pid: Pid) -> NodeId {
        self.pid_nodes.get(&pid).copied().unwrap_or(NodeId(0))
    }

    /// Ensures (`pid`, `page`) is mapped, allocating a first-touch master
    /// on `node` when the page is new (falling back to the freest node if
    /// `node` is full). Existing pages are mapped to the copy on `node`
    /// if one exists, else to the master. Returns the mapped node, or
    /// `None` when the whole machine is out of memory.
    pub fn first_touch(&mut self, pid: Pid, page: VirtPage, node: NodeId) -> Option<NodeId> {
        self.pid_nodes.entry(pid).or_insert(node);
        if let Some(frame) = self.tables.lookup(pid, page) {
            return Some(self.cfg.machine.node_of_frame(frame));
        }
        let frame = match self.hash.get(page) {
            None => {
                let frame = self.frames.alloc_with_fallback(node)?;
                self.hash.insert_master(page, frame);
                frame
            }
            Some(entry) => {
                let master = entry.master();
                self.hash.copy_on(page, node).unwrap_or(master)
            }
        };
        self.tables.map(pid, page, frame);
        Some(self.cfg.machine.node_of_frame(frame))
    }

    /// The node backing (`pid`, `page`)'s current mapping.
    pub fn mapping_node(&self, pid: Pid, page: VirtPage) -> Option<NodeId> {
        self.tables
            .lookup(pid, page)
            .map(|f| self.cfg.machine.node_of_frame(f))
    }

    /// Nodes holding a copy of `page` (master first).
    pub fn copies(&self, page: VirtPage) -> Vec<NodeId> {
        self.hash.copy_nodes(page)
    }

    /// Builds the [`PageLocation`] the policy engine needs for a miss by
    /// `pid` running on `accessor_node`.
    ///
    /// # Panics
    ///
    /// Panics if (`pid`, `page`) is unmapped — call
    /// [`first_touch`](Pager::first_touch) on every reference first.
    pub fn location_for(&self, pid: Pid, page: VirtPage, accessor_node: NodeId) -> PageLocation {
        let mapped = self
            .mapping_node(pid, page)
            .expect("page must be mapped before asking for its location");
        // Read the replica chain in place — this runs once per counted
        // miss and must not allocate a copy list just to summarise it.
        let (copy_local, replicated) = match self.hash.get(page) {
            None => (false, false),
            Some(e) => (
                e.all_frames()
                    .any(|f| self.cfg.machine.node_of_frame(f) == accessor_node),
                e.is_replicated(),
            ),
        };
        PageLocation::from_parts(mapped, accessor_node, copy_local, replicated)
    }

    /// Whether `node` is under memory pressure (decision node 3a input).
    pub fn pressure(&self, node: NodeId) -> bool {
        self.frames.pressure(node)
    }

    /// The cost book accumulated so far (Tables 5 and 6).
    pub fn book(&self) -> &CostBook {
        &self.book
    }

    /// The lock-contention model (for contention statistics).
    pub fn locks(&self) -> &LockModel {
        &self.locks
    }

    /// The frame allocator (for memory-usage statistics).
    pub fn frames(&self) -> &FrameAllocator {
        &self.frames
    }

    /// The page hash (for replication statistics).
    pub fn hash(&self) -> &PageHash {
        &self.hash
    }

    /// Stats of the most recent batch.
    pub fn last_batch(&self) -> BatchStats {
        self.last_batch
    }

    /// Number of batches serviced.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// §7.2.3: peak replica frames as a percentage of distinct pages — the
    /// replication memory overhead.
    pub fn replication_space_overhead_pct(&self) -> f64 {
        if self.hash.is_empty() {
            0.0
        } else {
            100.0 * self.hash.replica_frames_peak() as f64 / self.hash.len() as f64
        }
    }

    /// Frees up to `want` frames on `node` by collapsing replicas that
    /// live there (the memory-pressure response of §7.2.3). Returns the
    /// number of frames freed.
    pub fn reclaim_replicas_on(&mut self, node: NodeId, want: u32) -> u32 {
        let mut freed = 0;
        for page in self.hash.replicated_pages_on(node) {
            if freed >= want {
                break;
            }
            if let Some(frame) = self.hash.remove_replica_on(page, node) {
                // Repoint any PTEs using the dying replica at the master.
                // A page that lost its hash entry to a racing collapse is
                // skipped rather than crashing the reclaim pass.
                let Some(entry) = self.hash.get(page) else {
                    continue;
                };
                let master = entry.master();
                self.tables.repoint(page, frame, master);
                if self.frames.free(frame).is_ok() {
                    freed += 1;
                }
            }
        }
        freed
    }

    /// Seizes free frames on `node` until at most `keep_free` remain,
    /// simulating a burst of outside memory demand (an injected
    /// memory-pressure storm). Returns how many frames were seized; they
    /// stay allocated but unmapped until [`Pager::release_seized`]
    /// returns them.
    pub fn seize_frames(&mut self, node: NodeId, keep_free: u32) -> u32 {
        let mut taken = 0;
        while self.frames.free_on(node) > keep_free {
            let Some(frame) = self.frames.alloc(node) else {
                break;
            };
            self.seized.entry(node).or_default().push(frame);
            taken += 1;
        }
        taken
    }

    /// Releases every frame previously seized on `node`, ending a storm.
    /// Returns how many frames went back to the free list.
    pub fn release_seized(&mut self, node: NodeId) -> u32 {
        let mut returned = 0;
        for frame in self.seized.remove(&node).unwrap_or_default() {
            if self.frames.free(frame).is_ok() {
                returned += 1;
            }
        }
        returned
    }

    /// Frames currently seized by storms on `node`.
    pub fn seized_on(&self, node: NodeId) -> u32 {
        self.seized.get(&node).map_or(0, |v| v.len() as u32)
    }

    /// Every frame currently seized by storms, across all nodes.
    pub fn seized_frames(&self) -> impl Iterator<Item = Frame> + '_ {
        self.seized.values().flatten().copied()
    }

    /// The page tables (for the invariant checker and diagnostics).
    pub fn tables(&self) -> &PageTables {
        &self.tables
    }

    /// Test-only raw access for deliberately corrupting kernel state, so
    /// the invariant checker's negative paths can be exercised.
    #[cfg(test)]
    pub(crate) fn state_mut_for_test(
        &mut self,
    ) -> (&mut FrameAllocator, &mut PageHash, &mut PageTables) {
        (&mut self.frames, &mut self.hash, &mut self.tables)
    }

    fn replica_lock(&self, page: VirtPage) -> LockId {
        match self.cfg.granularity {
            LockGranularity::Coarse => LockId::Memlock,
            LockGranularity::Fine => LockId::Page(page),
        }
    }

    /// Services one directory batch at time `now` (Figure 2). Returns one
    /// outcome per op, in order; the batch's single TLB flush and the
    /// interrupt cost are amortized across the ops that need them.
    pub fn service_batch(&mut self, now: Ns, ops: &[PageOp]) -> Vec<OpOutcome> {
        self.service_batch_with(now, ops, &mut NullFaults)
    }

    /// [`Pager::service_batch`] with a fault injector threaded through.
    ///
    /// With [`NullFaults`] this monomorphizes to exactly the fault-free
    /// handler. An enabled injector may abort page copies (the op fails
    /// with [`OpFailReason::CopyAborted`] before any state changes),
    /// force allocations to fail (surfacing the [`OpOutcome::NoPage`]
    /// degradation path), and stretch the shootdown rendezvous with
    /// delayed acknowledgements.
    pub fn service_batch_with<F: FaultInjector>(
        &mut self,
        now: Ns,
        ops: &[PageOp],
        faults: &mut F,
    ) -> Vec<OpOutcome> {
        let mut outcomes = Vec::with_capacity(ops.len());
        self.service_batch_into(now, ops, faults, &mut outcomes);
        outcomes
    }

    /// [`Pager::service_batch_with`] writing into a caller-owned buffer.
    ///
    /// `outcomes` is cleared and refilled with one outcome per op, in
    /// order. The simulator's per-reference path (a collapse or remap is
    /// a one-op batch issued from inside the miss handler) reuses one
    /// buffer across the whole run, so servicing allocates nothing in
    /// steady state.
    pub fn service_batch_into<F: FaultInjector>(
        &mut self,
        now: Ns,
        ops: &[PageOp],
        faults: &mut F,
        outcomes: &mut Vec<OpOutcome>,
    ) {
        self.batches += 1;
        outcomes.clear();
        outcomes.reserve(ops.len());
        if ops.is_empty() {
            self.last_batch = BatchStats::default();
            return;
        }
        let costs = self.cfg.costs.clone();
        let intr_share = costs.intr_batch / ops.len() as u64;

        // One shootdown for all ops that change mappings (step 6).
        let flush_ops = ops.iter().filter(|o| o.needs_global_flush()).count() as u32;
        let flushed_cpus = if flush_ops == 0 {
            0
        } else {
            match self.cfg.shootdown {
                ShootdownMode::Broadcast => u32::from(self.cfg.machine.procs()),
                ShootdownMode::Targeted => self.targeted_cpu_count(ops),
            }
        };
        let mut flush_total = if flush_ops == 0 {
            Ns::ZERO
        } else {
            costs.tlb_flush_cost(flushed_cpus)
        };
        if F::ENABLED && flush_ops > 0 {
            // Delayed or dropped acks stretch the rendezvous for the
            // whole batch; every spinning CPU pays the extension below.
            flush_total += faults.shootdown_ack_delay(now, flushed_cpus);
        }
        let flush_share = if flush_ops == 0 {
            Ns::ZERO
        } else {
            flush_total / flush_ops as u64
        };

        if flush_ops > 0 {
            // Every victim CPU spins until the rendezvous completes, so
            // the machine burns cpus x flush_total of CPU time on top of
            // the initiator's latency (Table 6's dominant overhead).
            self.book
                .add_system(PagerStep::TlbFlush, flush_total * flushed_cpus as u64);
        }
        let mut batch_total = Ns::ZERO;
        for op in ops {
            let class = op.class();
            let outcome = self.run_op(
                now + batch_total,
                op,
                intr_share,
                flush_share,
                &costs,
                faults,
            );
            if let OpOutcome::Done { latency } = outcome {
                batch_total += latency;
                self.book.add(class, PagerStep::IntrProc, intr_share);
                if op.needs_global_flush() {
                    self.book.add(class, PagerStep::TlbFlush, flush_share);
                }
                self.book.count_op(class);
            }
            outcomes.push(outcome);
        }
        self.last_batch = BatchStats {
            total_latency: batch_total,
            tlbs_flushed: flushed_cpus,
            flush_ops,
        };
    }

    /// CPUs whose processes map any page in the batch (plus one for the
    /// requester) under targeted shootdown.
    fn targeted_cpu_count(&self, ops: &[PageOp]) -> u32 {
        let mut nodes: HashSet<NodeId> = HashSet::new();
        for op in ops {
            if !op.needs_global_flush() {
                continue;
            }
            for pid in self.tables.mappers_of_page(op.page()) {
                nodes.insert(self.pid_node(pid));
            }
        }
        (nodes.len() as u32).max(1)
    }

    fn run_op<F: FaultInjector>(
        &mut self,
        now: Ns,
        op: &PageOp,
        intr_share: Ns,
        flush_share: Ns,
        costs: &CostParams,
        faults: &mut F,
    ) -> OpOutcome {
        match *op {
            PageOp::Migrate { page, to } => {
                self.do_migrate(now, page, to, intr_share, flush_share, costs, faults)
            }
            PageOp::Replicate { page, at } => {
                self.do_replicate(now, page, at, intr_share, flush_share, costs, faults)
            }
            PageOp::Collapse { page } => {
                self.do_collapse(now, page, intr_share, flush_share, costs)
            }
            PageOp::Remap { page, pid, to } => self.do_remap(page, pid, to, intr_share, costs),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn do_migrate<F: FaultInjector>(
        &mut self,
        now: Ns,
        page: VirtPage,
        to: NodeId,
        intr_share: Ns,
        flush_share: Ns,
        costs: &CostParams,
        faults: &mut F,
    ) -> OpOutcome {
        if !self.hash.contains(page) {
            return OpOutcome::Skipped;
        }
        if self.hash.copy_on(page, to).is_some() {
            // The destination already holds a copy (master or replica);
            // the right action there is a remap, not a second copy.
            return OpOutcome::Skipped;
        }
        // Injected copy abort, decided before any state changes so no
        // rollback is needed.
        if F::ENABLED && faults.page_op_fails(now, FaultOp::Migrate, page) {
            return OpOutcome::Failed {
                reason: OpFailReason::CopyAborted,
            };
        }
        let class = OpClass::Migrate;
        let mut latency = intr_share + costs.decision;
        self.book
            .add(class, PagerStep::PolicyDecision, costs.decision);

        // Step 4: allocate, contending on memlock.
        let wait = self
            .locks
            .acquire(LockId::Memlock, now + latency, costs.memlock_hold_alloc);
        let blocked = F::ENABLED && faults.alloc_blocked(now, to);
        let Some(new_frame) = (if blocked { None } else { self.frames.alloc(to) }) else {
            return OpOutcome::NoPage;
        };
        let alloc_cost = costs.page_alloc_base + wait;
        self.book.add(class, PagerStep::PageAlloc, alloc_cost);
        latency += alloc_cost;

        // Step 5: unlink old master from hash (memlock), update PTEs.
        let old_frame = self.hash.migrate_master(page, new_frame);
        let wait = self
            .locks
            .acquire(LockId::Memlock, now + latency, costs.memlock_hold_links);
        let movers = self.tables.repoint(page, old_frame, new_frame);
        let links_cost = costs.links_migr_base + wait + costs.per_pte * movers as u64;
        self.book.add(class, PagerStep::LinksMapping, links_cost);
        latency += links_cost;

        // Step 6 amortized flush.
        latency += flush_share;

        // Step 7: copy, line by line over the actual source→destination
        // path (on the flat machine every off-node path reads at
        // `remote_latency`, so this matches the legacy flat charge).
        let src = self.cfg.machine.node_of_frame(old_frame);
        let copy = costs.copy_cost_on_path(self.topo.read_latency(to, src));
        self.book.add(class, PagerStep::PageCopy, copy);
        latency += copy;

        // Step 8: free the old frame, final mappings. A rejected free
        // (double free) leaks the frame instead of corrupting the
        // allocator; the op reports the inconsistency.
        if self.frames.free(old_frame).is_err() {
            return OpOutcome::Failed {
                reason: OpFailReason::DoubleFree,
            };
        }
        let end = costs.end_migr_base;
        self.book.add(class, PagerStep::PolicyEnd, end);
        latency += end;

        // Future soft faults on the changed mappings.
        self.book
            .add(class, PagerStep::PageFault, costs.pfault * movers as u64);

        OpOutcome::Done { latency }
    }

    #[allow(clippy::too_many_arguments)]
    fn do_replicate<F: FaultInjector>(
        &mut self,
        now: Ns,
        page: VirtPage,
        at: NodeId,
        intr_share: Ns,
        flush_share: Ns,
        costs: &CostParams,
        faults: &mut F,
    ) -> OpOutcome {
        if !self.hash.contains(page) {
            return OpOutcome::Skipped;
        }
        if self.hash.copy_on(page, at).is_some() {
            // A racing replication already put a copy here.
            return OpOutcome::Skipped;
        }
        if F::ENABLED && faults.page_op_fails(now, FaultOp::Replicate, page) {
            return OpOutcome::Failed {
                reason: OpFailReason::CopyAborted,
            };
        }
        // The copy streams from the nearest existing copy, and the fresh
        // replica is linked into the chain before step 7 — so resolve the
        // per-line path cost now, while the chain holds only real sources.
        let copy_per_line = self
            .hash
            .copy_nodes(page)
            .into_iter()
            .map(|n| self.topo.read_latency(at, n))
            .min()
            .unwrap_or(costs.copy_per_line);
        let class = OpClass::Replicate;
        let mut latency = intr_share + costs.decision;
        self.book
            .add(class, PagerStep::PolicyDecision, costs.decision);

        let wait = self
            .locks
            .acquire(LockId::Memlock, now + latency, costs.memlock_hold_alloc);
        let blocked = F::ENABLED && faults.alloc_blocked(now, at);
        let Some(new_frame) = (if blocked { None } else { self.frames.alloc(at) }) else {
            return OpOutcome::NoPage;
        };
        let alloc_cost = costs.page_alloc_base + wait;
        self.book.add(class, PagerStep::PageAlloc, alloc_cost);
        latency += alloc_cost;

        // Step 5: replicas hang off the chain under the page lock only.
        let wait = self
            .locks
            .acquire(self.replica_lock(page), now + latency, costs.page_lock_hold);
        self.hash.add_replica(page, new_frame);
        let links_cost = costs.links_repl_base + wait;
        self.book.add(class, PagerStep::LinksMapping, links_cost);
        latency += links_cost;

        latency += flush_share;

        let copy = costs.copy_cost_on_path(copy_per_line);
        self.book.add(class, PagerStep::PageCopy, copy);
        latency += copy;

        // Step 8: point every mapper at its nearest copy. The entry must
        // still be present (we just linked the replica), but a racing
        // collapse is reported as a typed failure rather than a panic;
        // the fresh replica is the page's one surviving copy either way.
        let Some(entry) = self.hash.get(page) else {
            return OpOutcome::Failed {
                reason: OpFailReason::MissingPage,
            };
        };
        let master = entry.master();
        let pids = self.tables.mappers_of_page(page);
        let nearest: Vec<(Pid, Frame)> = pids
            .iter()
            .map(|&pid| {
                let node = self.pid_node(pid);
                let frame = self.hash.copy_on(page, node).unwrap_or(master);
                (pid, frame)
            })
            .collect();
        let mut lookup: HashMap<Pid, Frame> = HashMap::new();
        for (pid, f) in &nearest {
            lookup.insert(*pid, *f);
        }
        let moved = self.tables.repoint_each(page, &pids, |pid| lookup[&pid]);
        let end = costs.end_repl_base + costs.per_pte * moved as u64;
        self.book.add(class, PagerStep::PolicyEnd, end);
        latency += end;

        self.book
            .add(class, PagerStep::PageFault, costs.pfault * moved as u64);

        OpOutcome::Done { latency }
    }

    fn do_collapse(
        &mut self,
        now: Ns,
        page: VirtPage,
        intr_share: Ns,
        flush_share: Ns,
        costs: &CostParams,
    ) -> OpOutcome {
        let Some(entry) = self.hash.get(page) else {
            return OpOutcome::Skipped;
        };
        if !entry.is_replicated() {
            return OpOutcome::Skipped;
        }
        let class = OpClass::Collapse;
        let mut latency = intr_share + costs.decision;
        self.book
            .add(class, PagerStep::PolicyDecision, costs.decision);

        let master = entry.master();
        let wait = self
            .locks
            .acquire(self.replica_lock(page), now, costs.page_lock_hold);
        let freed = self.hash.collapse(page);
        let mut moved = 0;
        let mut free_failed = false;
        for frame in &freed {
            moved += self.tables.repoint(page, *frame, master);
            // A rejected free leaks that replica frame but keeps the
            // allocator consistent; finish repointing the rest first.
            free_failed |= self.frames.free(*frame).is_err();
        }
        let links_cost = costs.links_repl_base + wait + costs.per_pte * moved as u64;
        self.book.add(class, PagerStep::LinksMapping, links_cost);
        latency += links_cost;

        latency += flush_share;

        let end = costs.end_migr_base;
        self.book.add(class, PagerStep::PolicyEnd, end);
        latency += end;

        self.book
            .add(class, PagerStep::PageFault, costs.pfault * moved as u64);

        if free_failed {
            return OpOutcome::Failed {
                reason: OpFailReason::DoubleFree,
            };
        }
        OpOutcome::Done { latency }
    }

    fn do_remap(
        &mut self,
        page: VirtPage,
        pid: Pid,
        to: NodeId,
        intr_share: Ns,
        costs: &CostParams,
    ) -> OpOutcome {
        let Some(target) = self.hash.copy_on(page, to) else {
            return OpOutcome::Skipped;
        };
        if self.tables.lookup(pid, page).is_none() {
            return OpOutcome::Skipped;
        }
        self.tables.map(pid, page, target);
        let class = OpClass::Remap;
        self.book.add(class, PagerStep::LinksMapping, costs.remap);
        OpOutcome::Done {
            latency: intr_share + costs.remap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pager() -> Pager {
        Pager::new(PagerConfig::for_machine(MachineConfig::cc_numa()))
    }

    fn tiny_pager() -> Pager {
        let m = MachineConfig::cc_numa()
            .with_nodes(2)
            .with_frames_per_node(2);
        Pager::new(PagerConfig::for_machine(m))
    }

    #[test]
    fn first_touch_allocates_on_node() {
        let mut p = pager();
        assert_eq!(
            p.first_touch(Pid(1), VirtPage(1), NodeId(3)),
            Some(NodeId(3))
        );
        assert_eq!(p.mapping_node(Pid(1), VirtPage(1)), Some(NodeId(3)));
        assert_eq!(p.copies(VirtPage(1)), vec![NodeId(3)]);
        // idempotent
        assert_eq!(
            p.first_touch(Pid(1), VirtPage(1), NodeId(5)),
            Some(NodeId(3))
        );
    }

    #[test]
    fn second_process_maps_existing_master() {
        let mut p = pager();
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        assert_eq!(
            p.first_touch(Pid(2), VirtPage(1), NodeId(4)),
            Some(NodeId(0))
        );
        assert_eq!(p.mapping_node(Pid(2), VirtPage(1)), Some(NodeId(0)));
    }

    #[test]
    fn migrate_moves_master_and_mappings() {
        let mut p = pager();
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        p.first_touch(Pid(2), VirtPage(1), NodeId(2));
        let out = p.service_batch(Ns::from_ms(1), &[PageOp::migrate(VirtPage(1), NodeId(5))]);
        assert!(out[0].succeeded());
        assert_eq!(p.copies(VirtPage(1)), vec![NodeId(5)]);
        assert_eq!(p.mapping_node(Pid(1), VirtPage(1)), Some(NodeId(5)));
        assert_eq!(p.mapping_node(Pid(2), VirtPage(1)), Some(NodeId(5)));
        // old frame was freed
        assert_eq!(p.frames().used_on(NodeId(0)), 0);
        assert_eq!(p.frames().used_on(NodeId(5)), 1);
        assert_eq!(p.book().ops(OpClass::Migrate), 1);
    }

    #[test]
    fn migration_copy_charge_follows_the_topology_path() {
        let m = MachineConfig::cc_numa()
            .with_nodes(8)
            .with_topology(Topology::four_socket_hierarchical(8));
        let lines = m.lines_per_page() as u64;
        let mut p = Pager::new(PagerConfig::for_machine(m));
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        p.first_touch(Pid(2), VirtPage(2), NodeId(0));
        // Node 1 shares node 0's socket (500 ns/line); node 4 sits two
        // ring hops away (2100 ns/line). The batches are 1 ms apart so no
        // lock contention blurs the comparison: the only difference in
        // latency is the per-line copy cost times the page's line count.
        let near = p.service_batch(Ns::from_ms(1), &[PageOp::migrate(VirtPage(1), NodeId(1))]);
        let far = p.service_batch(Ns::from_ms(2), &[PageOp::migrate(VirtPage(2), NodeId(4))]);
        let (OpOutcome::Done { latency: near }, OpOutcome::Done { latency: far }) =
            (near[0], far[0])
        else {
            panic!("both migrations must succeed");
        };
        assert_eq!(far.0 - near.0, (2100 - 500) * lines);
    }

    #[test]
    fn replication_copies_from_the_nearest_copy() {
        let m = MachineConfig::cc_numa()
            .with_nodes(8)
            .with_topology(Topology::four_socket_hierarchical(8));
        let lines = m.lines_per_page() as u64;
        let mut p = Pager::new(PagerConfig::for_machine(m));
        // Master two ring hops from socket {0,1}.
        p.first_touch(Pid(1), VirtPage(1), NodeId(4));
        // First replica at node 0 must stream from the distant master
        // (2100 ns/line); the second, at node 1, finds the node-0 replica
        // one intra-socket hop away (500 ns/line) and uses it instead.
        p.service_batch(Ns::from_ms(1), &[PageOp::replicate(VirtPage(1), NodeId(0))]);
        let first = p.book().step_total(OpClass::Replicate, PagerStep::PageCopy);
        p.service_batch(Ns::from_ms(2), &[PageOp::replicate(VirtPage(1), NodeId(1))]);
        let both = p.book().step_total(OpClass::Replicate, PagerStep::PageCopy);
        let second = both.0 - first.0;
        assert_eq!(first.0 - second, (2100 - 500) * lines);
    }

    #[test]
    fn replicate_adds_copy_and_points_nearest() {
        let mut p = pager();
        p.set_pid_node(Pid(1), NodeId(0));
        p.set_pid_node(Pid(2), NodeId(6));
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        p.first_touch(Pid(2), VirtPage(1), NodeId(6));
        let out = p.service_batch(Ns::from_ms(1), &[PageOp::replicate(VirtPage(1), NodeId(6))]);
        assert!(out[0].succeeded());
        assert_eq!(p.copies(VirtPage(1)), vec![NodeId(0), NodeId(6)]);
        // pid1 keeps the master, pid2 now uses the local replica
        assert_eq!(p.mapping_node(Pid(1), VirtPage(1)), Some(NodeId(0)));
        assert_eq!(p.mapping_node(Pid(2), VirtPage(1)), Some(NodeId(6)));
        assert!(p.replication_space_overhead_pct() > 0.0);
    }

    #[test]
    fn collapse_frees_replicas_and_repoints() {
        let mut p = pager();
        p.set_pid_node(Pid(2), NodeId(6));
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        p.first_touch(Pid(2), VirtPage(1), NodeId(6));
        p.service_batch(Ns::from_ms(1), &[PageOp::replicate(VirtPage(1), NodeId(6))]);
        let out = p.service_batch(Ns::from_ms(2), &[PageOp::collapse(VirtPage(1))]);
        assert!(out[0].succeeded());
        assert_eq!(p.copies(VirtPage(1)), vec![NodeId(0)]);
        assert_eq!(p.mapping_node(Pid(2), VirtPage(1)), Some(NodeId(0)));
        assert_eq!(p.frames().used_on(NodeId(6)), 0);
        // collapse of a non-replicated page is skipped
        let out = p.service_batch(Ns::from_ms(3), &[PageOp::collapse(VirtPage(1))]);
        assert_eq!(out[0], OpOutcome::Skipped);
    }

    #[test]
    fn remap_fixes_stale_mapping_only() {
        let mut p = pager();
        p.set_pid_node(Pid(1), NodeId(0));
        p.set_pid_node(Pid(2), NodeId(6));
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        p.first_touch(Pid(2), VirtPage(1), NodeId(6));
        p.service_batch(Ns::from_ms(1), &[PageOp::replicate(VirtPage(1), NodeId(6))]);
        // pid2's process moves to node 3 where there is no copy; then back:
        // simulate a stale mapping by remapping pid2 at node 0's master.
        let out = p.service_batch(
            Ns::from_ms(2),
            &[PageOp::remap(VirtPage(1), Pid(2), NodeId(0))],
        );
        assert!(out[0].succeeded());
        assert_eq!(p.mapping_node(Pid(2), VirtPage(1)), Some(NodeId(0)));
        // remap to a node without a copy is skipped
        let out = p.service_batch(
            Ns::from_ms(3),
            &[PageOp::remap(VirtPage(1), Pid(2), NodeId(4))],
        );
        assert_eq!(out[0], OpOutcome::Skipped);
    }

    #[test]
    fn exhausted_node_returns_no_page() {
        let mut p = tiny_pager();
        // Fill node 1 (2 frames).
        p.first_touch(Pid(1), VirtPage(1), NodeId(1));
        p.first_touch(Pid(1), VirtPage(2), NodeId(1));
        p.first_touch(Pid(1), VirtPage(3), NodeId(0));
        let out = p.service_batch(Ns::from_ms(1), &[PageOp::migrate(VirtPage(3), NodeId(1))]);
        assert_eq!(out[0], OpOutcome::NoPage);
        // page untouched
        assert_eq!(p.copies(VirtPage(3)), vec![NodeId(0)]);
    }

    #[test]
    fn reclaim_replicas_frees_frames() {
        let mut p = tiny_pager();
        p.set_pid_node(Pid(2), NodeId(1));
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        p.first_touch(Pid(2), VirtPage(1), NodeId(1));
        p.service_batch(Ns::from_ms(1), &[PageOp::replicate(VirtPage(1), NodeId(1))]);
        assert_eq!(p.frames().used_on(NodeId(1)), 1);
        let freed = p.reclaim_replicas_on(NodeId(1), 5);
        assert_eq!(freed, 1);
        assert_eq!(p.frames().used_on(NodeId(1)), 0);
        assert_eq!(p.mapping_node(Pid(2), VirtPage(1)), Some(NodeId(0)));
    }

    #[test]
    fn batch_amortizes_interrupt_and_flush() {
        let mut p = pager();
        for i in 0..4u64 {
            p.first_touch(Pid(1), VirtPage(i), NodeId(0));
        }
        let ops: Vec<PageOp> = (0..4u64)
            .map(|i| PageOp::migrate(VirtPage(i), NodeId(3)))
            .collect();
        let out = p.service_batch(Ns::from_ms(1), &ops);
        assert!(out.iter().all(OpOutcome::succeeded));
        let b = p.last_batch();
        assert_eq!(b.flush_ops, 4);
        assert_eq!(b.tlbs_flushed, 8, "broadcast flushes all CPUs");
        // Effective per-op flush cost is a quarter of one flush.
        let per_op_flush = p.book().avg_step(OpClass::Migrate, PagerStep::TlbFlush);
        let full = p.cfg.costs.tlb_flush_cost(8);
        assert_eq!(per_op_flush, full / 4);
    }

    #[test]
    fn targeted_shootdown_flushes_fewer_tlbs() {
        let cfg = PagerConfig::for_machine(MachineConfig::cc_numa())
            .with_shootdown(ShootdownMode::Targeted);
        let mut p = Pager::new(cfg);
        p.set_pid_node(Pid(1), NodeId(0));
        p.set_pid_node(Pid(2), NodeId(1));
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        p.first_touch(Pid(2), VirtPage(1), NodeId(1));
        p.service_batch(Ns::from_ms(1), &[PageOp::migrate(VirtPage(1), NodeId(1))]);
        assert_eq!(p.last_batch().tlbs_flushed, 2, "only the two mappers");
    }

    #[test]
    fn per_op_latency_in_papers_range() {
        let mut p = pager();
        for i in 0..3u64 {
            p.first_touch(Pid(1), VirtPage(i), NodeId(0));
        }
        let ops: Vec<PageOp> = (0..3u64)
            .map(|i| PageOp::migrate(VirtPage(i), NodeId(2)))
            .collect();
        let out = p.service_batch(Ns::from_ms(1), &ops);
        for o in out {
            let OpOutcome::Done { latency } = o else {
                panic!("expected success")
            };
            let us = latency.as_us();
            assert!(
                (200.0..800.0).contains(&us),
                "per-op latency {us} µs outside the plausible Table 5 band"
            );
        }
    }

    #[test]
    fn cost_book_total_grows_with_ops() {
        let mut p = pager();
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        let before = p.book().total();
        p.service_batch(Ns::from_ms(1), &[PageOp::migrate(VirtPage(1), NodeId(1))]);
        assert!(p.book().total() > before);
        assert_eq!(p.batches(), 1);
    }

    #[test]
    fn ops_on_unknown_pages_are_skipped() {
        let mut p = pager();
        let out = p.service_batch(
            Ns(0),
            &[
                PageOp::migrate(VirtPage(99), NodeId(1)),
                PageOp::replicate(VirtPage(98), NodeId(1)),
                PageOp::collapse(VirtPage(97)),
            ],
        );
        assert!(out.iter().all(|o| *o == OpOutcome::Skipped));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut p = pager();
        assert!(p.service_batch(Ns(0), &[]).is_empty());
        assert_eq!(p.last_batch(), BatchStats::default());
    }

    #[test]
    fn replicate_where_copy_exists_is_skipped() {
        let mut p = pager();
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        let out = p.service_batch(Ns(0), &[PageOp::replicate(VirtPage(1), NodeId(0))]);
        assert_eq!(out[0], OpOutcome::Skipped);
    }

    /// Regression: a collapse and a migrate racing on the same page in
    /// one batch (in either order) must never panic, and must leave the
    /// kernel state consistent. The old code reached `expect("page
    /// present")` paths on this shape.
    #[test]
    fn racing_collapse_and_migrate_cannot_panic() {
        for order in 0..2 {
            let mut p = pager();
            p.set_pid_node(Pid(1), NodeId(0));
            p.set_pid_node(Pid(2), NodeId(6));
            p.first_touch(Pid(1), VirtPage(1), NodeId(0));
            p.first_touch(Pid(2), VirtPage(1), NodeId(6));
            p.service_batch(Ns::from_ms(1), &[PageOp::replicate(VirtPage(1), NodeId(6))]);
            let ops = if order == 0 {
                [
                    PageOp::collapse(VirtPage(1)),
                    PageOp::migrate(VirtPage(1), NodeId(6)),
                ]
            } else {
                [
                    PageOp::migrate(VirtPage(1), NodeId(6)),
                    PageOp::collapse(VirtPage(1)),
                ]
            };
            let out = p.service_batch(Ns::from_ms(2), &ops);
            assert_eq!(out.len(), 2);
            assert!(
                out.iter().all(|o| !matches!(o, OpOutcome::Failed { .. })),
                "racing ops resolve via skip/done, not failure: {out:?} (order {order})"
            );
            assert_eq!(
                crate::verify::violations(&p),
                Vec::<String>::new(),
                "state stays consistent (order {order})"
            );
        }
    }

    /// A replicate whose data copy is aborted by fault injection fails
    /// typed, leaves no trace, and succeeds on retry.
    #[test]
    fn injected_copy_abort_fails_typed_and_is_retryable() {
        struct AbortOnce(bool);
        impl ccnuma_faults::FaultInjector for AbortOnce {
            fn page_op_fails(
                &mut self,
                _now: Ns,
                _op: ccnuma_faults::FaultOp,
                _page: VirtPage,
            ) -> bool {
                std::mem::replace(&mut self.0, false)
            }
        }
        let mut p = pager();
        p.set_pid_node(Pid(2), NodeId(6));
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        p.first_touch(Pid(2), VirtPage(1), NodeId(6));
        let mut faults = AbortOnce(true);
        let ops = [PageOp::replicate(VirtPage(1), NodeId(6))];
        let out = p.service_batch_with(Ns::from_ms(1), &ops, &mut faults);
        assert_eq!(
            out[0],
            OpOutcome::Failed {
                reason: OpFailReason::CopyAborted
            }
        );
        assert!(OpFailReason::CopyAborted.retryable());
        assert_eq!(
            p.copies(VirtPage(1)),
            vec![NodeId(0)],
            "no replica left behind"
        );
        assert_eq!(crate::verify::violations(&p), Vec::<String>::new());
        // Retry with the transient fault gone: succeeds.
        let out = p.service_batch_with(Ns::from_ms(2), &ops, &mut faults);
        assert!(out[0].succeeded());
        assert_eq!(p.copies(VirtPage(1)), vec![NodeId(0), NodeId(6)]);
    }

    /// A blocked allocation surfaces as NoPage — the same degradation
    /// path as a genuinely exhausted node.
    #[test]
    fn injected_alloc_block_surfaces_no_page() {
        struct BlockAllocs;
        impl ccnuma_faults::FaultInjector for BlockAllocs {
            fn alloc_blocked(&mut self, _now: Ns, _node: NodeId) -> bool {
                true
            }
        }
        let mut p = pager();
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        let out = p.service_batch_with(
            Ns::from_ms(1),
            &[PageOp::migrate(VirtPage(1), NodeId(3))],
            &mut BlockAllocs,
        );
        assert_eq!(out[0], OpOutcome::NoPage);
        assert_eq!(p.copies(VirtPage(1)), vec![NodeId(0)]);
        assert_eq!(crate::verify::violations(&p), Vec::<String>::new());
    }

    /// Delayed shootdown acks stretch the batch's flush share.
    #[test]
    fn injected_ack_delay_stretches_flush() {
        struct SlowAcks;
        impl ccnuma_faults::FaultInjector for SlowAcks {
            fn shootdown_ack_delay(&mut self, _now: Ns, _tlbs: u32) -> Ns {
                Ns(40_000)
            }
        }
        let mut base = pager();
        let mut slow = pager();
        for p in [&mut base, &mut slow] {
            p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        }
        let ops = [PageOp::migrate(VirtPage(1), NodeId(3))];
        let fast = base.service_batch(Ns::from_ms(1), &ops);
        let delayed = slow.service_batch_with(Ns::from_ms(1), &ops, &mut SlowAcks);
        let (OpOutcome::Done { latency: a }, OpOutcome::Done { latency: b }) =
            (fast[0], delayed[0])
        else {
            panic!("both must succeed");
        };
        assert_eq!(
            b,
            a + Ns(40_000),
            "the whole delay lands on the one flush op"
        );
    }

    /// Storm seizure empties a node down to `keep_free` and release
    /// restores it exactly.
    #[test]
    fn storms_seize_and_release_frames() {
        let mut p = tiny_pager();
        assert_eq!(p.frames().free_on(NodeId(1)), 2);
        let taken = p.seize_frames(NodeId(1), 1);
        assert_eq!(taken, 1);
        assert_eq!(p.frames().free_on(NodeId(1)), 1);
        assert_eq!(p.seized_on(NodeId(1)), 1);
        assert_eq!(crate::verify::violations(&p), Vec::<String>::new());
        let returned = p.release_seized(NodeId(1));
        assert_eq!(returned, 1);
        assert_eq!(p.frames().free_on(NodeId(1)), 2);
        assert_eq!(p.seized_on(NodeId(1)), 0);
        // releasing again is a no-op
        assert_eq!(p.release_seized(NodeId(1)), 0);
    }
}
