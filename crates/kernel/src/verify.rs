//! Kernel invariant checker.
//!
//! Audits a [`Pager`]'s whole VM state — frame accounting, replica
//! chains, and page tables — and reports every violation as a
//! human-readable message. The machine runner calls this after pager
//! batches (always under fault injection, sampled in plain debug
//! builds), so a fault scenario that corrupts kernel state fails loudly
//! and deterministically instead of silently skewing results.
//!
//! Checked invariants:
//!
//! 1. **Frame accounting** — per node, the allocator's used count equals
//!    the frames owned by hash chains plus the frames seized by storms,
//!    and never exceeds the node's capacity (so `used + free` equals the
//!    node's frame count).
//! 2. **No double mapping** — no physical frame appears in two replica
//!    chains (or twice in one chain).
//! 3. **Replica-chain consistency** — every chain has its master, and
//!    all copies live on distinct nodes (one copy per node is the
//!    useful maximum the kernel maintains).
//! 4. **No stale PTEs** — after a completed batch (and its shootdown),
//!    every PTE references a current copy of its page; no mapping
//!    survives pointing at a freed or migrated-away frame.

use crate::Pager;
use ccnuma_types::{Frame, SimError, VirtPage};
use std::collections::HashMap;

/// Runs every invariant check, returning all violations found (empty
/// when the kernel state is consistent). Output order is deterministic.
pub fn violations(pager: &Pager) -> Vec<String> {
    let mut out = Vec::new();
    let cfg = pager.frames().config();
    let nodes = cfg.nodes;

    // Walk every replica chain once, in sorted page order so messages
    // come out deterministically despite the hash map underneath.
    let mut chains: Vec<(VirtPage, &crate::PageEntry)> = pager.hash().iter().collect();
    chains.sort_by_key(|(page, _)| *page);

    let mut frame_owner: HashMap<Frame, VirtPage> = HashMap::new();
    let mut hash_frames_per_node = vec![0u64; nodes as usize];
    for (page, entry) in &chains {
        let mut copy_nodes = Vec::with_capacity(entry.copy_count());
        for frame in entry.all_frames() {
            let node = cfg.node_of_frame(frame);
            if node.index() >= nodes as usize {
                out.push(format!(
                    "{page}: copy {frame} lies outside the machine's frame range"
                ));
                continue;
            }
            hash_frames_per_node[node.index()] += 1;
            if let Some(other) = frame_owner.insert(frame, *page) {
                out.push(format!(
                    "frame {frame} mapped by two pages: {other} and {page}"
                ));
            }
            if copy_nodes.contains(&node) {
                out.push(format!(
                    "{page}: two copies on {node} (master {})",
                    entry.master()
                ));
            }
            copy_nodes.push(node);
        }
    }

    // Frame accounting: used == hash-owned + storm-seized, per node.
    let mut seized_per_node = vec![0u64; nodes as usize];
    for frame in pager.seized_frames() {
        let node = cfg.node_of_frame(frame);
        if node.index() < nodes as usize {
            seized_per_node[node.index()] += 1;
        }
        if let Some(page) = frame_owner.get(&frame) {
            out.push(format!("seized frame {frame} is also owned by {page}"));
        }
    }
    for n in 0..nodes {
        let node = ccnuma_types::NodeId(n);
        let used = u64::from(pager.frames().used_on(node));
        if used > u64::from(cfg.frames_per_node) {
            out.push(format!(
                "{node}: {used} frames used exceeds capacity {}",
                cfg.frames_per_node
            ));
        }
        let accounted = hash_frames_per_node[n as usize] + seized_per_node[n as usize];
        if used != accounted {
            out.push(format!(
                "{node}: allocator says {used} frames used but {accounted} accounted for \
                 ({} in replica chains + {} storm-seized)",
                hash_frames_per_node[n as usize], seized_per_node[n as usize]
            ));
        }
    }

    // Stale PTEs: every mapping must reference a current copy.
    let mut ptes: Vec<((ccnuma_types::Pid, VirtPage), Frame)> = pager.tables().iter().collect();
    ptes.sort();
    for ((pid, page), frame) in ptes {
        match pager.hash().get(page) {
            None => out.push(format!("stale PTE: {pid} maps unhashed {page} at {frame}")),
            Some(entry) => {
                if !entry.all_frames().any(|f| f == frame) {
                    out.push(format!(
                        "stale PTE: {pid} maps {page} at {frame}, not a current copy (master {})",
                        entry.master()
                    ));
                }
            }
        }
    }

    out
}

/// Like [`violations`], but folded into a [`SimError::Invariant`] for
/// propagation through `Sim::run`.
pub fn check(pager: &Pager) -> Result<(), SimError> {
    let found = violations(pager);
    match found.first() {
        None => Ok(()),
        Some(first) => Err(SimError::Invariant {
            count: found.len(),
            first: first.clone(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PageOp, Pager, PagerConfig};
    use ccnuma_types::{MachineConfig, NodeId, Ns, Pid, VirtPage};

    fn pager() -> Pager {
        Pager::new(PagerConfig::for_machine(
            MachineConfig::cc_numa()
                .with_nodes(4)
                .with_frames_per_node(8),
        ))
    }

    #[test]
    fn clean_pager_has_no_violations() {
        let mut p = pager();
        p.set_pid_node(Pid(1), NodeId(0));
        p.set_pid_node(Pid(2), NodeId(2));
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        p.first_touch(Pid(2), VirtPage(1), NodeId(2));
        p.first_touch(Pid(1), VirtPage(2), NodeId(1));
        p.service_batch(
            Ns::from_ms(1),
            &[
                PageOp::replicate(VirtPage(1), NodeId(2)),
                PageOp::migrate(VirtPage(2), NodeId(3)),
            ],
        );
        assert_eq!(violations(&p), Vec::<String>::new());
        assert!(check(&p).is_ok());
    }

    #[test]
    fn storm_seized_frames_stay_accounted() {
        let mut p = pager();
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        let taken = p.seize_frames(NodeId(0), 2);
        assert!(taken > 0);
        assert_eq!(violations(&p), Vec::<String>::new());
        p.release_seized(NodeId(0));
        assert_eq!(violations(&p), Vec::<String>::new());
    }

    #[test]
    fn checks_run_after_every_op_kind() {
        let mut p = pager();
        for (i, node) in [(1u64, 0u16), (2, 1), (3, 2)] {
            p.set_pid_node(Pid(i as u32), NodeId(node));
            p.first_touch(Pid(i as u32), VirtPage(i), NodeId(node));
            p.first_touch(Pid(1), VirtPage(i), NodeId(0));
        }
        let batches: Vec<Vec<PageOp>> = vec![
            vec![PageOp::replicate(VirtPage(2), NodeId(0))],
            vec![PageOp::migrate(VirtPage(3), NodeId(3))],
            vec![PageOp::collapse(VirtPage(2))],
            vec![PageOp::remap(VirtPage(1), Pid(1), NodeId(0))],
        ];
        for (i, ops) in batches.into_iter().enumerate() {
            p.service_batch(Ns::from_ms(i as u64 + 1), &ops);
            assert_eq!(violations(&p), Vec::<String>::new(), "after batch {i}");
        }
    }

    #[test]
    fn leaked_frame_is_flagged() {
        let mut p = pager();
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        // Allocate a frame that no chain or storm accounts for.
        let (frames, _, _) = p.state_mut_for_test();
        frames.alloc(NodeId(1)).unwrap();
        let msgs = violations(&p);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("n1"), "names the node: {}", msgs[0]);
        assert!(msgs[0].contains("accounted"), "{}", msgs[0]);
        assert!(check(&p).is_err());
    }

    #[test]
    fn stale_pte_is_flagged() {
        let mut p = pager();
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        // Point the PTE at a frame that is not a copy of the page.
        let bogus = {
            let (frames, _, tables) = p.state_mut_for_test();
            let f = frames.alloc(NodeId(2)).unwrap();
            tables.map(Pid(1), VirtPage(1), f);
            f
        };
        let msgs = violations(&p);
        assert!(
            msgs.iter()
                .any(|m| m.contains("stale PTE") && m.contains(&bogus.to_string())),
            "expected a stale-PTE violation, got {msgs:?}"
        );
        let err = check(&p).unwrap_err();
        assert!(matches!(err, SimError::Invariant { count, .. } if count == msgs.len()));
    }

    #[test]
    fn double_mapped_frame_is_flagged() {
        let mut p = pager();
        p.first_touch(Pid(1), VirtPage(1), NodeId(0));
        let master = {
            let (_, hash, _) = p.state_mut_for_test();
            let master = hash.get(VirtPage(1)).unwrap().master();
            // A second page claims the same master frame.
            hash.insert_master(VirtPage(2), master);
            master
        };
        let msgs = violations(&p);
        assert!(
            msgs.iter()
                .any(|m| m.contains("two pages") && m.contains(&master.to_string())),
            "expected a double-map violation, got {msgs:?}"
        );
    }
}
