//! Page tables with back-mappings.
//!
//! IRIX PTEs point at page frame descriptors with no reverse link; the
//! paper adds "links ... to the pfd pointing back to all the ptes mapping
//! this page, similar to an inverted page table" so a migration can find
//! and update every mapping cheaply. [`PageTables`] keeps both directions.

use ccnuma_types::{Frame, FxHashMap, Pid, VirtPage};

/// Per-process virtual→physical mappings plus the frame→PTE back-map.
///
/// # Examples
///
/// ```
/// use ccnuma_kernel::PageTables;
/// use ccnuma_types::{Frame, Pid, VirtPage};
///
/// let mut pt = PageTables::new();
/// pt.map(Pid(1), VirtPage(7), Frame(40));
/// pt.map(Pid(2), VirtPage(7), Frame(40));
/// assert_eq!(pt.mappers_of(Frame(40)).len(), 2);
/// let changed = pt.repoint(VirtPage(7), Frame(40), Frame(99));
/// assert_eq!(changed, 2);
/// assert_eq!(pt.lookup(Pid(1), VirtPage(7)), Some(Frame(99)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTables {
    /// (pid, page) → frame. [`lookup`](PageTables::lookup) runs at least
    /// once per simulated reference, so the map uses the deterministic
    /// FxHash rather than SipHash; iteration order is never exposed.
    ptes: FxHashMap<(Pid, VirtPage), Frame>,
    /// frame → pids whose PTE points at it (the added back-map).
    back: FxHashMap<Frame, Vec<Pid>>,
}

impl PageTables {
    /// Empty tables.
    pub fn new() -> PageTables {
        PageTables::default()
    }

    /// Installs or replaces the mapping for (`pid`, `page`).
    pub fn map(&mut self, pid: Pid, page: VirtPage, frame: Frame) {
        if let Some(old) = self.ptes.insert((pid, page), frame) {
            self.unlink(old, pid);
        }
        self.back.entry(frame).or_default().push(pid);
    }

    /// Removes the mapping for (`pid`, `page`), returning the frame it
    /// pointed at.
    pub fn unmap(&mut self, pid: Pid, page: VirtPage) -> Option<Frame> {
        let frame = self.ptes.remove(&(pid, page))?;
        self.unlink(frame, pid);
        Some(frame)
    }

    fn unlink(&mut self, frame: Frame, pid: Pid) {
        if let Some(pids) = self.back.get_mut(&frame) {
            if let Some(pos) = pids.iter().position(|p| *p == pid) {
                pids.swap_remove(pos);
            }
            if pids.is_empty() {
                self.back.remove(&frame);
            }
        }
    }

    /// The frame (`pid`, `page`) maps to, if mapped.
    pub fn lookup(&self, pid: Pid, page: VirtPage) -> Option<Frame> {
        self.ptes.get(&(pid, page)).copied()
    }

    /// Processes whose PTE points at `frame` (via the back-map). The
    /// returned list may repeat a pid if it maps the frame at several
    /// virtual pages, which does not occur in this simulator.
    pub fn mappers_of(&self, frame: Frame) -> &[Pid] {
        self.back.get(&frame).map_or(&[], Vec::as_slice)
    }

    /// Repoints every PTE of `page` that references `old` to `new`,
    /// returning how many PTEs changed (a migration's "Links & Mapping"
    /// step walks exactly these back-links).
    pub fn repoint(&mut self, page: VirtPage, old: Frame, new: Frame) -> usize {
        let pids: Vec<Pid> = self.mappers_of(old).to_vec();
        let mut changed = 0;
        for pid in pids {
            if self.ptes.get(&(pid, page)) == Some(&old) {
                self.map(pid, page, new);
                changed += 1;
            }
        }
        changed
    }

    /// Repoints every PTE of `page` according to `choose`, which picks the
    /// target frame for each pid (used after replication to point each
    /// process at its nearest copy — step 8 of Figure 2). Returns the
    /// number of PTEs changed.
    pub fn repoint_each(
        &mut self,
        page: VirtPage,
        pids: &[Pid],
        mut choose: impl FnMut(Pid) -> Frame,
    ) -> usize {
        let mut changed = 0;
        for &pid in pids {
            if let Some(&cur) = self.ptes.get(&(pid, page)) {
                let target = choose(pid);
                if cur != target {
                    self.map(pid, page, target);
                    changed += 1;
                }
            }
        }
        changed
    }

    /// All pids currently mapping `page`, in unspecified order.
    pub fn mappers_of_page(&self, page: VirtPage) -> Vec<Pid> {
        self.ptes
            .keys()
            .filter(|(_, p)| *p == page)
            .map(|(pid, _)| *pid)
            .collect()
    }

    /// Every live PTE as ((pid, page), frame), in unspecified order —
    /// used by the invariant checker to audit the whole mapping state.
    pub fn iter(&self) -> impl Iterator<Item = ((Pid, VirtPage), Frame)> + '_ {
        self.ptes.iter().map(|(&k, &f)| (k, f))
    }

    /// Number of live PTEs.
    pub fn len(&self) -> usize {
        self.ptes.len()
    }

    /// True when no PTEs exist.
    pub fn is_empty(&self) -> bool {
        self.ptes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_unmap() {
        let mut pt = PageTables::new();
        pt.map(Pid(1), VirtPage(1), Frame(10));
        assert_eq!(pt.lookup(Pid(1), VirtPage(1)), Some(Frame(10)));
        assert_eq!(pt.lookup(Pid(2), VirtPage(1)), None);
        assert_eq!(pt.unmap(Pid(1), VirtPage(1)), Some(Frame(10)));
        assert_eq!(pt.unmap(Pid(1), VirtPage(1)), None);
        assert!(pt.is_empty());
    }

    #[test]
    fn back_map_tracks_mappers() {
        let mut pt = PageTables::new();
        pt.map(Pid(1), VirtPage(1), Frame(10));
        pt.map(Pid(2), VirtPage(1), Frame(10));
        pt.map(Pid(3), VirtPage(1), Frame(11));
        let mut mappers = pt.mappers_of(Frame(10)).to_vec();
        mappers.sort();
        assert_eq!(mappers, vec![Pid(1), Pid(2)]);
        pt.unmap(Pid(1), VirtPage(1));
        assert_eq!(pt.mappers_of(Frame(10)), &[Pid(2)]);
    }

    #[test]
    fn remap_replaces_back_link() {
        let mut pt = PageTables::new();
        pt.map(Pid(1), VirtPage(1), Frame(10));
        pt.map(Pid(1), VirtPage(1), Frame(20)); // re-map same pte
        assert!(pt.mappers_of(Frame(10)).is_empty());
        assert_eq!(pt.mappers_of(Frame(20)), &[Pid(1)]);
        assert_eq!(pt.len(), 1);
    }

    #[test]
    fn repoint_moves_all_ptes() {
        let mut pt = PageTables::new();
        for pid in 1..=3 {
            pt.map(Pid(pid), VirtPage(5), Frame(50));
        }
        pt.map(Pid(9), VirtPage(6), Frame(50)); // different page, same frame
        let changed = pt.repoint(VirtPage(5), Frame(50), Frame(60));
        assert_eq!(changed, 3);
        for pid in 1..=3 {
            assert_eq!(pt.lookup(Pid(pid), VirtPage(5)), Some(Frame(60)));
        }
        // the other page's mapping is untouched
        assert_eq!(pt.lookup(Pid(9), VirtPage(6)), Some(Frame(50)));
    }

    #[test]
    fn repoint_each_uses_chooser() {
        let mut pt = PageTables::new();
        pt.map(Pid(1), VirtPage(5), Frame(50));
        pt.map(Pid(2), VirtPage(5), Frame(50));
        let changed = pt.repoint_each(VirtPage(5), &[Pid(1), Pid(2), Pid(3)], |pid| {
            if pid == Pid(1) {
                Frame(51)
            } else {
                Frame(50)
            }
        });
        assert_eq!(changed, 1);
        assert_eq!(pt.lookup(Pid(1), VirtPage(5)), Some(Frame(51)));
        assert_eq!(pt.lookup(Pid(2), VirtPage(5)), Some(Frame(50)));
        assert_eq!(
            pt.lookup(Pid(3), VirtPage(5)),
            None,
            "unmapped pid untouched"
        );
    }

    #[test]
    fn mappers_of_page() {
        let mut pt = PageTables::new();
        pt.map(Pid(1), VirtPage(5), Frame(50));
        pt.map(Pid(2), VirtPage(5), Frame(51));
        pt.map(Pid(3), VirtPage(6), Frame(52));
        let mut pids = pt.mappers_of_page(VirtPage(5));
        pids.sort();
        assert_eq!(pids, vec![Pid(1), Pid(2)]);
    }
}
