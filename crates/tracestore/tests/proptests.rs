//! Property tests for the v2 trace format: codec roundtrips, v1/v2
//! equivalence, and the corruption contract (a damaged stream yields a
//! typed error or a salvaged prefix — never a panic, never garbage
//! records).

use ccnuma_trace::io::{record_from_parts, write_trace};
use ccnuma_trace::{MissRecord, Trace};
use ccnuma_tracestore::varint::{read_u64, unzigzag, write_u64, zigzag};
use ccnuma_tracestore::{StoreError, TraceReader, TraceWriter};
use proptest::prelude::*;

/// An arbitrary record: unconstrained fields plus any of the 16 valid
/// flag combinations.
fn arb_record() -> impl Strategy<Value = MissRecord> {
    (
        0u64..=u64::MAX,
        0u64..=u64::MAX,
        0u32..=u32::MAX,
        0u16..=u16::MAX,
        0u8..16,
    )
        .prop_map(|(time, page, pid, proc, flags)| {
            record_from_parts(time, page, pid, proc, flags).expect("flags < 16 are valid")
        })
}

fn encode_v2(records: &[MissRecord], chunk_records: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = TraceWriter::with_chunk_records(&mut buf, chunk_records).unwrap();
    for r in records {
        w.push(r).unwrap();
    }
    w.finish().unwrap();
    buf
}

fn decode_v2(bytes: &[u8]) -> Vec<MissRecord> {
    TraceReader::new(bytes)
        .unwrap()
        .collect::<Result<Vec<_>, _>>()
        .unwrap()
}

proptest! {
    #[test]
    fn varint_roundtrips(v in 0u64..=u64::MAX) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(read_u64(&buf, &mut pos), Some(v));
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_roundtrips(bits in 0u64..=u64::MAX) {
        let v = bits as i64;
        prop_assert_eq!(unzigzag(zigzag(v)), v);
    }

    #[test]
    fn varint_decode_never_reads_past_or_panics(bytes in proptest::collection::vec(0u8..=u8::MAX, 0..24)) {
        let mut pos = 0;
        if read_u64(&bytes, &mut pos).is_some() {
            prop_assert!(pos <= bytes.len());
        }
    }

    /// Arbitrary records — arbitrary deltas, wrapping both ways — come
    /// back exactly, across chunk boundaries.
    #[test]
    fn v2_roundtrips_arbitrary_records(
        records in proptest::collection::vec(arb_record(), 0..200),
        chunk in 1usize..33,
    ) {
        let bytes = encode_v2(&records, chunk);
        prop_assert_eq!(decode_v2(&bytes), records);
    }

    /// A v1 stream and its v2 re-encode decode to the same records
    /// through the same reader.
    #[test]
    fn v1_and_v2_reads_agree(records in proptest::collection::vec(arb_record(), 0..120)) {
        // `Trace` time-sorts on collect, so the v1 stream holds the
        // sorted order — that is the order both readers must agree on.
        let trace: Trace = records.iter().copied().collect();
        let sorted: Vec<MissRecord> = trace.iter().copied().collect();
        let mut v1 = Vec::new();
        write_trace(&mut v1, &trace).unwrap();
        let from_v1 = TraceReader::new(v1.as_slice())
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        prop_assert_eq!(&from_v1, &sorted);
        let v2 = encode_v2(&from_v1, 16);
        prop_assert_eq!(decode_v2(&v2), sorted);
    }

    /// Truncation anywhere: the strict reader yields a correct prefix
    /// then a typed error (or clean EOF exactly at a record boundary is
    /// impossible — the footer is gone); the salvage reader always ends
    /// cleanly with complete chunks only. Nothing panics.
    #[test]
    fn truncated_streams_never_panic(
        records in proptest::collection::vec(arb_record(), 1..100),
        chunk in 1usize..17,
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = encode_v2(&records, chunk);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let cut_bytes = &bytes[..cut];

        match TraceReader::new(cut_bytes) {
            Ok(reader) => {
                let mut seen = 0usize;
                let mut errored = false;
                for item in reader {
                    match item {
                        Ok(rec) => {
                            prop_assert_eq!(rec, records[seen], "prefix must be exact");
                            seen += 1;
                        }
                        Err(_) => {
                            errored = true;
                            break;
                        }
                    }
                }
                // A streaming read validates the footer body but never
                // touches the 8-byte seek trailer, so only a cut that
                // reaches into the footer body (or earlier) must error.
                prop_assert!(errored || cut >= bytes.len() - 8);
            }
            Err(_) => prop_assert!(cut < 8, "header errors only from a cut header"),
        }

        if cut >= 8 {
            let reader = TraceReader::with_salvage(cut_bytes).unwrap();
            let mut seen = 0usize;
            for item in reader {
                let rec = item.expect("salvage mode never errors past the header");
                prop_assert_eq!(rec, records[seen]);
                seen += 1;
            }
            // Salvage keeps whole chunks: a multiple of the chunk size,
            // or everything (the final chunk may be smaller).
            prop_assert!(
                seen == records.len() || seen.is_multiple_of(chunk),
                "salvage kept a partial chunk: {seen} of {} (chunk {chunk})",
                records.len()
            );
        }
    }

    /// A single flipped bit anywhere in the stream: decode either still
    /// succeeds (the flip hit slack the checksum does not cover — it
    /// cannot, every byte is covered, so really: the flip was detected)
    /// or fails with a typed error; the prefix of records delivered
    /// before the error is exact. Nothing panics.
    #[test]
    fn bit_flips_are_detected_or_isolated(
        records in proptest::collection::vec(arb_record(), 1..80),
        chunk in 1usize..17,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = encode_v2(&records, chunk);
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;

        let mut delivered = Vec::new();
        let outcome: Result<(), StoreError> = (|| {
            for item in TraceReader::new(bytes.as_slice())? {
                delivered.push(item?);
            }
            Ok(())
        })();
        match outcome {
            Ok(()) => prop_assert_eq!(&delivered, &records, "undetected flip must be harmless"),
            Err(_) => {
                prop_assert!(delivered.len() <= records.len());
                prop_assert_eq!(&delivered[..], &records[..delivered.len()], "prefix must be exact");
            }
        }
    }
}
