//! Property tests for the v2 trace format: codec roundtrips, v1/v2
//! equivalence, and the corruption contract (a damaged stream yields a
//! typed error or a salvaged prefix — never a panic, never garbage
//! records).

use ccnuma_trace::io::{record_from_parts, write_trace};
use ccnuma_trace::{MissRecord, Trace};
use ccnuma_tracestore::varint::{read_u64, unzigzag, write_u64, zigzag};
use ccnuma_tracestore::{
    fsck, EntryStatus, StoreError, TraceMeta, TraceReader, TraceStore, TraceWriter,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// An arbitrary record: unconstrained fields plus any of the 16 valid
/// flag combinations.
fn arb_record() -> impl Strategy<Value = MissRecord> {
    (
        0u64..=u64::MAX,
        0u64..=u64::MAX,
        0u32..=u32::MAX,
        0u16..=u16::MAX,
        0u8..16,
    )
        .prop_map(|(time, page, pid, proc, flags)| {
            record_from_parts(time, page, pid, proc, flags).expect("flags < 16 are valid")
        })
}

fn encode_v2(records: &[MissRecord], chunk_records: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = TraceWriter::with_chunk_records(&mut buf, chunk_records).unwrap();
    for r in records {
        w.push(r).unwrap();
    }
    w.finish().unwrap();
    buf
}

fn decode_v2(bytes: &[u8]) -> Vec<MissRecord> {
    TraceReader::new(bytes)
        .unwrap()
        .collect::<Result<Vec<_>, _>>()
        .unwrap()
}

proptest! {
    #[test]
    fn varint_roundtrips(v in 0u64..=u64::MAX) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(read_u64(&buf, &mut pos), Some(v));
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_roundtrips(bits in 0u64..=u64::MAX) {
        let v = bits as i64;
        prop_assert_eq!(unzigzag(zigzag(v)), v);
    }

    #[test]
    fn varint_decode_never_reads_past_or_panics(bytes in proptest::collection::vec(0u8..=u8::MAX, 0..24)) {
        let mut pos = 0;
        if read_u64(&bytes, &mut pos).is_some() {
            prop_assert!(pos <= bytes.len());
        }
    }

    /// Arbitrary records — arbitrary deltas, wrapping both ways — come
    /// back exactly, across chunk boundaries.
    #[test]
    fn v2_roundtrips_arbitrary_records(
        records in proptest::collection::vec(arb_record(), 0..200),
        chunk in 1usize..33,
    ) {
        let bytes = encode_v2(&records, chunk);
        prop_assert_eq!(decode_v2(&bytes), records);
    }

    /// A v1 stream and its v2 re-encode decode to the same records
    /// through the same reader.
    #[test]
    fn v1_and_v2_reads_agree(records in proptest::collection::vec(arb_record(), 0..120)) {
        // `Trace` time-sorts on collect, so the v1 stream holds the
        // sorted order — that is the order both readers must agree on.
        let trace: Trace = records.iter().copied().collect();
        let sorted: Vec<MissRecord> = trace.iter().copied().collect();
        let mut v1 = Vec::new();
        write_trace(&mut v1, &trace).unwrap();
        let from_v1 = TraceReader::new(v1.as_slice())
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        prop_assert_eq!(&from_v1, &sorted);
        let v2 = encode_v2(&from_v1, 16);
        prop_assert_eq!(decode_v2(&v2), sorted);
    }

    /// Truncation anywhere: the strict reader yields a correct prefix
    /// then a typed error (or clean EOF exactly at a record boundary is
    /// impossible — the footer is gone); the salvage reader always ends
    /// cleanly with complete chunks only. Nothing panics.
    #[test]
    fn truncated_streams_never_panic(
        records in proptest::collection::vec(arb_record(), 1..100),
        chunk in 1usize..17,
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = encode_v2(&records, chunk);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let cut_bytes = &bytes[..cut];

        match TraceReader::new(cut_bytes) {
            Ok(reader) => {
                let mut seen = 0usize;
                let mut errored = false;
                for item in reader {
                    match item {
                        Ok(rec) => {
                            prop_assert_eq!(rec, records[seen], "prefix must be exact");
                            seen += 1;
                        }
                        Err(_) => {
                            errored = true;
                            break;
                        }
                    }
                }
                // A streaming read validates the footer body but never
                // touches the 8-byte seek trailer, so only a cut that
                // reaches into the footer body (or earlier) must error.
                prop_assert!(errored || cut >= bytes.len() - 8);
            }
            Err(_) => prop_assert!(cut < 8, "header errors only from a cut header"),
        }

        if cut >= 8 {
            let reader = TraceReader::with_salvage(cut_bytes).unwrap();
            let mut seen = 0usize;
            for item in reader {
                let rec = item.expect("salvage mode never errors past the header");
                prop_assert_eq!(rec, records[seen]);
                seen += 1;
            }
            // Salvage keeps whole chunks: a multiple of the chunk size,
            // or everything (the final chunk may be smaller).
            prop_assert!(
                seen == records.len() || seen.is_multiple_of(chunk),
                "salvage kept a partial chunk: {seen} of {} (chunk {chunk})",
                records.len()
            );
        }
    }

    /// A single flipped bit anywhere in the stream: decode either still
    /// succeeds (the flip hit slack the checksum does not cover — it
    /// cannot, every byte is covered, so really: the flip was detected)
    /// or fails with a typed error; the prefix of records delivered
    /// before the error is exact. Nothing panics.
    #[test]
    fn bit_flips_are_detected_or_isolated(
        records in proptest::collection::vec(arb_record(), 1..80),
        chunk in 1usize..17,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = encode_v2(&records, chunk);
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;

        let mut delivered = Vec::new();
        let outcome: Result<(), StoreError> = (|| {
            for item in TraceReader::new(bytes.as_slice())? {
                delivered.push(item?);
            }
            Ok(())
        })();
        match outcome {
            Ok(()) => prop_assert_eq!(&delivered, &records, "undetected flip must be harmless"),
            Err(_) => {
                prop_assert!(delivered.len() <= records.len());
                prop_assert_eq!(&delivered[..], &records[..delivered.len()], "prefix must be exact");
            }
        }
    }
}

/// One kind of random damage an fsck case inflicts on a store entry.
#[derive(Debug, Clone)]
enum Damage {
    /// XOR one byte of the trace at a fractional offset.
    FlipTrace(f64, u8),
    /// Truncate the trace to a fraction of its length.
    Truncate(f64),
    /// Overwrite the meta sidecar with garbage.
    SmashMeta,
    /// Leave the entry alone.
    None,
}

fn arb_damage() -> impl Strategy<Value = Damage> {
    (0u8..4, 0.0f64..1.0, 0u8..8).prop_map(|(kind, frac, bit)| match kind {
        0 => Damage::FlipTrace(frac, bit),
        1 => Damage::Truncate(frac),
        2 => Damage::SmashMeta,
        _ => Damage::None,
    })
}

fn fsck_case_dir() -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "ccnuma-fsck-prop-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

proptest! {
    // fsck cases hit the filesystem, so run fewer of them.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary damage to an entry's trace or sidecar: fsck always
    /// classifies (never panics), a dry run never mutates the store,
    /// and a repair run always converges to a store fsck calls clean.
    #[test]
    fn fsck_classifies_and_repair_converges(
        records in proptest::collection::vec(arb_record(), 1..600),
        chunk in 1usize..33,
        damage in arb_damage(),
    ) {
        let dir = fsck_case_dir();
        let store = TraceStore::new(&dir).unwrap();
        let trace: Trace = records.iter().copied().collect();
        let meta = TraceMeta {
            label: "prop".into(),
            records: trace.len() as u64,
            nodes: 8,
            other_time_ns: 0,
        };
        // Re-encode at the case's chunk size so truncation points land
        // in interesting places, then install it as the store entry.
        {
            let mut buf = Vec::new();
            let mut w = TraceWriter::with_chunk_records(&mut buf, chunk).unwrap();
            for r in trace.iter() {
                w.push(r).unwrap();
            }
            w.finish().unwrap();
            store.save("x", &trace, &meta).unwrap();
            std::fs::write(store.trace_path("x"), &buf).unwrap();
        }
        match &damage {
            Damage::FlipTrace(frac, bit) => {
                let p = store.trace_path("x");
                let mut b = std::fs::read(&p).unwrap();
                let at = (((b.len() - 1) as f64) * frac) as usize;
                b[at] ^= 1 << bit;
                std::fs::write(&p, &b).unwrap();
            }
            Damage::Truncate(frac) => {
                let p = store.trace_path("x");
                let b = std::fs::read(&p).unwrap();
                let keep = ((b.len() as f64) * frac) as usize;
                std::fs::write(&p, &b[..keep]).unwrap();
            }
            Damage::SmashMeta => {
                std::fs::write(store.meta_path("x"), b"{ definitely not a sidecar").unwrap();
            }
            Damage::None => {}
        }

        let dry = fsck(&store, false).unwrap();
        prop_assert_eq!(dry.entries.len(), 1);
        prop_assert!(dry.repaired.is_empty(), "dry run repairs nothing");
        if matches!(damage, Damage::None) {
            prop_assert!(dry.is_clean(), "{}", dry.render());
        }
        if matches!(damage, Damage::SmashMeta) {
            prop_assert!(
                matches!(dry.entries[0].status, EntryStatus::CorruptMeta { .. }),
                "{}", dry.render()
            );
        }
        // Salvageable verdicts must never promise more than the sidecar.
        if let EntryStatus::Salvageable { records_kept, records_expected, .. } =
            &dry.entries[0].status
        {
            prop_assert!(*records_kept > 0, "zero kept is Unreadable, not Salvageable");
            prop_assert!(records_kept <= records_expected);
        }

        // Repair, whatever the damage, converges: the next fsck is
        // clean and every surviving entry loads.
        let repaired = fsck(&store, true).unwrap();
        prop_assert_eq!(
            repaired.repaired.len(),
            usize::from(!repaired.entries[0].status.is_clean())
        );
        let after = fsck(&store, false).unwrap();
        prop_assert!(after.is_clean(), "after repair: {}", after.render());
        for slug in store.list().unwrap() {
            let (t, m) = store.load(&slug).unwrap();
            prop_assert_eq!(t.len() as u64, m.records);
            // Whatever survived is an exact prefix of the original.
            let kept: Vec<MissRecord> = t.iter().copied().collect();
            let original: Vec<MissRecord> = trace.iter().copied().collect();
            prop_assert_eq!(&kept[..], &original[..kept.len()]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
