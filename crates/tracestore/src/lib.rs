//! Capture-once trace store and policy-sweep engine.
//!
//! The paper's Section 8 methodology captures each workload's cache-miss
//! trace once and replays it through a cheap contentionless policy
//! simulator many times. This crate makes that literal on disk:
//!
//! * [`format`] — the chunked trace format v2: varint + delta encoding
//!   (~3–8 bytes per record instead of v1's 24), an FNV checksum per
//!   chunk, a chunk-index footer for seeks and parallel decode, a
//!   bounded-memory streaming [`TraceWriter`]/[`TraceReader`] pair,
//!   salvage of complete chunks from a truncated tail, and transparent
//!   reading of v1 streams.
//! * [`store`] — a content-addressed [`TraceStore`] directory keyed by
//!   run-spec slug, with a JSON sidecar per trace so experiments render
//!   from storage without re-running the machine simulator.
//! * [`sweep`] — a declarative [`SweepSpec`] grid (policies × triggers ×
//!   sampling × latencies × move costs) replayed in parallel over a
//!   stored trace with memoized cells, emitting deterministic
//!   `ccnuma-sweep/1` JSON/CSV artifacts.
//!
//! # Examples
//!
//! Round-trip a trace through the v2 format:
//!
//! ```
//! use ccnuma_trace::MissRecord;
//! use ccnuma_tracestore::{TraceReader, TraceWriter};
//! use ccnuma_types::{Ns, Pid, ProcId, VirtPage};
//!
//! # fn main() -> Result<(), ccnuma_tracestore::StoreError> {
//! let mut buf = Vec::new();
//! let mut w = TraceWriter::new(&mut buf)?;
//! for i in 0..1000u64 {
//!     w.push(&MissRecord::user_data_read(Ns(i * 300), ProcId(0), Pid(0), VirtPage(i / 8)))?;
//! }
//! let summary = w.finish()?;
//! assert!(summary.bytes < 1000 * 12, "far below v1's 24 bytes/record");
//! let records: Result<Vec<_>, _> = TraceReader::new(buf.as_slice())?.collect();
//! assert_eq!(records?.len(), 1000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod fsck;
pub mod listing;
pub mod results;
pub mod store;
pub mod sweep;
pub mod varint;

pub use format::{
    read_chunk_at, ChunkEntry, ChunkIndex, SalvageInfo, SalvageReason, StoreError, TraceReader,
    TraceWriter, WriteSummary, DEFAULT_CHUNK_RECORDS, VERSION_V2,
};
pub use fsck::{
    fsck, gc, EntryStatus, FsckEntry, FsckReport, GcReport, RepairAction, QUARANTINE_DIR,
};
pub use listing::{ListingEntry, StoreListing, LISTING_SCHEMA};
pub use results::{ResultCache, RESULT_SALT};
pub use store::{OpenedEntry, TraceMeta, TraceStore, META_SCHEMA};
pub use sweep::{
    cell_from_payload, cell_payload, eval_cell, run_sweep, run_sweep_profiled, run_sweep_resumable,
    CellParams, SweepCell, SweepPolicy, SweepReport, SweepSpec, CELL_KIND, SWEEP_SCHEMA,
};
