//! Machine-readable store listing, shared by `repro trace ls/info
//! --json` and the serve daemon's `GET /v1/traces` endpoint — one
//! implementation, two consumers, so operators and the service can
//! never disagree about what the store holds.

use crate::format::{ChunkIndex, StoreError};
use crate::store::TraceStore;
use ccnuma_faults::io::Storage;
use ccnuma_obs::json::JsonWriter;
use std::fs;
use std::fs::File;
use std::time::UNIX_EPOCH;

/// Schema tag of the listing JSON.
pub const LISTING_SCHEMA: &str = "ccnuma-trace-ls/1";

/// One store entry, as seen from the host filesystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListingEntry {
    /// Content-address slug (the `.trace` file stem).
    pub slug: String,
    /// Human-readable run description from the sidecar.
    pub label: String,
    /// Records in the trace.
    pub records: u64,
    /// NUMA nodes of the captured machine.
    pub nodes: u16,
    /// The run's constant non-miss time, nanoseconds.
    pub other_time_ns: u64,
    /// Chunks in the v2 file (from the index footer).
    pub chunks: u64,
    /// Bytes of the trace file on disk.
    pub bytes: u64,
    /// Last-modified time of the trace file, seconds since the Unix
    /// epoch (freshened on load, so it tracks actual use).
    pub mtime_unix: u64,
}

/// A scan of the whole store: sorted entries plus totals for capacity
/// planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreListing {
    /// Entries in slug order.
    pub entries: Vec<ListingEntry>,
    /// Sum of trace-file bytes.
    pub total_bytes: u64,
    /// Sum of records.
    pub total_records: u64,
}

impl StoreListing {
    /// Scans the store: every entry's sidecar, file size, mtime, and
    /// chunk count. Entries whose sidecar or footer is unreadable are
    /// skipped (fsck is the tool for diagnosing those).
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures; per-entry read errors
    /// only drop that entry.
    pub fn scan<S: Storage>(store: &TraceStore<S>) -> Result<StoreListing, StoreError> {
        let mut entries = Vec::new();
        for slug in store.list()? {
            let Ok(meta) = store.meta(&slug) else {
                continue;
            };
            let path = store.trace_path(&slug);
            let Ok(fsmeta) = fs::metadata(&path) else {
                continue;
            };
            let chunks = File::open(&path)
                .map_err(StoreError::from)
                .and_then(|mut f| ChunkIndex::read_from(&mut f))
                .map(|ix| ix.chunks.len() as u64)
                .unwrap_or(0);
            let mtime_unix = fsmeta
                .modified()
                .ok()
                .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                .map_or(0, |d| d.as_secs());
            entries.push(ListingEntry {
                slug,
                label: meta.label,
                records: meta.records,
                nodes: meta.nodes,
                other_time_ns: meta.other_time_ns,
                chunks,
                bytes: fsmeta.len(),
                mtime_unix,
            });
        }
        let total_bytes = entries.iter().map(|e| e.bytes).sum();
        let total_records = entries.iter().map(|e| e.records).sum();
        Ok(StoreListing {
            entries,
            total_bytes,
            total_records,
        })
    }

    /// Renders the `ccnuma-trace-ls/1` JSON document (entries in slug
    /// order, deterministic key order).
    pub fn to_json(&self) -> String {
        let mut j = JsonWriter::new();
        j.begin_obj();
        j.key("schema");
        j.str(LISTING_SCHEMA);
        j.key("entries");
        j.begin_arr();
        for e in &self.entries {
            write_entry(&mut j, e);
        }
        j.end_arr();
        j.key("total_entries");
        j.raw(&self.entries.len().to_string());
        j.key("total_bytes");
        j.raw(&self.total_bytes.to_string());
        j.key("total_records");
        j.raw(&self.total_records.to_string());
        j.end_obj();
        j.finish()
    }
}

impl ListingEntry {
    /// Renders just this entry as a JSON object (the `trace info
    /// --json` body).
    pub fn to_json(&self) -> String {
        let mut j = JsonWriter::new();
        write_entry(&mut j, self);
        j.finish()
    }
}

fn write_entry(j: &mut JsonWriter, e: &ListingEntry) {
    j.begin_obj();
    j.key("slug");
    j.str(&e.slug);
    j.key("label");
    j.str(&e.label);
    j.key("records");
    j.raw(&e.records.to_string());
    j.key("nodes");
    j.raw(&e.nodes.to_string());
    j.key("other_time_ns");
    j.raw(&e.other_time_ns.to_string());
    j.key("chunks");
    j.raw(&e.chunks.to_string());
    j.key("bytes");
    j.raw(&e.bytes.to_string());
    j.key("mtime_unix");
    j.raw(&e.mtime_unix.to_string());
    j.end_obj();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TraceMeta;
    use ccnuma_obs::json::JsonValue;
    use ccnuma_trace::{MissRecord, Trace};
    use ccnuma_types::{Ns, Pid, ProcId, VirtPage};

    fn trace(n: u64) -> Trace {
        (0..n)
            .map(|i| MissRecord::user_data_read(Ns(i * 300), ProcId(0), Pid(0), VirtPage(i / 8)))
            .collect()
    }

    #[test]
    fn listing_counts_entries_and_totals() {
        let dir = std::env::temp_dir().join(format!("ccnuma-listing-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::new(&dir).unwrap();
        for (label, n) in [("a [FT]", 10u64), ("b [FT]", 20)] {
            let meta = TraceMeta {
                label: label.into(),
                records: n,
                nodes: 8,
                other_time_ns: 5,
            };
            store
                .save(&TraceStore::slug(label, "id"), &trace(n), &meta)
                .unwrap();
        }
        let listing = StoreListing::scan(&store).unwrap();
        assert_eq!(listing.entries.len(), 2);
        assert_eq!(listing.total_records, 30);
        assert!(listing.total_bytes > 0);
        assert!(listing.entries.iter().all(|e| e.chunks >= 1));
        let v = JsonValue::parse(&listing.to_json()).unwrap();
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some(LISTING_SCHEMA)
        );
        assert_eq!(v.get("total_records").and_then(JsonValue::as_u64), Some(30));
        assert_eq!(
            v.get("entries")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(2)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
