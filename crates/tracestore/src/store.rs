//! The capture-once trace cache.
//!
//! A [`TraceStore`] is a directory of v2 trace files, content-addressed
//! by the same slug scheme the observability layer uses for run
//! artifacts: a human-readable label plus an FNV fingerprint of the run
//! spec's identity. Each trace carries a small JSON sidecar
//! (`<slug>.meta.json`, schema `ccnuma-trace-meta/1`) holding what a
//! replay needs beyond the records themselves — the machine's node
//! count and the run's constant non-miss time — so experiments can
//! render from a stored trace without re-running the machine simulator.

use crate::format::{StoreError, TraceReader, TraceWriter, WriteSummary};
use ccnuma_faults::io::{is_transient, DiskStorage, RetryPolicy, Storage};
use ccnuma_obs::artifact_slug;
use ccnuma_obs::json::JsonWriter;
use ccnuma_trace::{MissRecord, Trace, TraceBuilder};
use std::fs;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

/// What [`TraceStore::open`] yields: a streaming reader over the entry's
/// trace plus its decoded sidecar.
pub type OpenedEntry<S> = (TraceReader<BufReader<<S as Storage>::ReadFile>>, TraceMeta);

/// Sidecar metadata stored next to each trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Human-readable run description (e.g. `raytrace [FT] +trace`).
    pub label: String,
    /// Records in the trace.
    pub records: u64,
    /// NUMA nodes of the captured machine.
    pub nodes: u16,
    /// The run's constant "all other time" component, in nanoseconds.
    pub other_time_ns: u64,
}

/// Schema tag written into every meta sidecar.
pub const META_SCHEMA: &str = "ccnuma-trace-meta/1";

impl TraceMeta {
    /// Renders the sidecar JSON (deterministic key order).
    pub fn to_json(&self) -> String {
        let mut j = JsonWriter::new();
        j.begin_obj();
        j.key("schema");
        j.str(META_SCHEMA);
        j.key("label");
        j.str(&self.label);
        j.key("records");
        j.raw(&self.records.to_string());
        j.key("nodes");
        j.raw(&self.nodes.to_string());
        j.key("other_time_ns");
        j.raw(&self.other_time_ns.to_string());
        j.end_obj();
        j.finish()
    }

    /// Parses a sidecar produced by [`to_json`](TraceMeta::to_json).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when a field is missing, malformed, or
    /// the schema tag is unknown.
    pub fn from_json(text: &str) -> Result<TraceMeta, StoreError> {
        let corrupt = |what| StoreError::Corrupt {
            chunk: usize::MAX,
            what,
        };
        let schema = json_str_field(text, "schema").ok_or(corrupt("meta: missing schema"))?;
        if schema != META_SCHEMA {
            return Err(corrupt("meta: unknown schema"));
        }
        Ok(TraceMeta {
            label: json_str_field(text, "label").ok_or(corrupt("meta: missing label"))?,
            records: json_u64_field(text, "records").ok_or(corrupt("meta: missing records"))?,
            nodes: json_u64_field(text, "nodes")
                .and_then(|n| u16::try_from(n).ok())
                .ok_or(corrupt("meta: missing nodes"))?,
            other_time_ns: json_u64_field(text, "other_time_ns")
                .ok_or(corrupt("meta: missing other_time_ns"))?,
        })
    }
}

/// Extracts a top-level string field from flat JSON written by
/// [`JsonWriter`] (keys are unescaped identifiers; values may contain
/// standard escapes).
fn json_str_field(text: &str, key: &str) -> Option<String> {
    let start = find_value(text, key)?;
    let rest = &text[start..];
    if !rest.starts_with('"') {
        return None;
    }
    let mut out = String::new();
    let mut chars = rest[1..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts a top-level unsigned integer field.
fn json_u64_field(text: &str, key: &str) -> Option<u64> {
    let start = find_value(text, key)?;
    let digits: String = text[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Byte offset just past `"key":` in `text`.
fn find_value(text: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)?;
    Some(at + needle.len())
}

/// A directory of stored traces, addressed by run-spec slug.
///
/// # Examples
///
/// ```no_run
/// use ccnuma_tracestore::{TraceMeta, TraceStore};
/// use ccnuma_trace::Trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let store = TraceStore::new("artifacts/traces")?;
/// let slug = TraceStore::slug("raytrace [FT] +trace", "spec identity");
/// if !store.contains(&slug) {
///     let trace = Trace::new(); // ... captured from a machine run
///     let meta = TraceMeta { label: "raytrace".into(), records: 0, nodes: 8, other_time_ns: 0 };
///     store.save(&slug, &trace, &meta)?;
/// }
/// let (trace, meta) = store.load(&slug)?;
/// # let _ = (trace, meta);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TraceStore<S: Storage = DiskStorage> {
    dir: PathBuf,
    storage: S,
    retry: RetryPolicy,
}

impl TraceStore<DiskStorage> {
    /// Opens (creating if needed) the store directory on plain disk
    /// storage. Monomorphizes to exactly the pre-fault-injection code.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new<P: AsRef<Path>>(dir: P) -> Result<TraceStore, StoreError> {
        TraceStore::with_storage(dir, DiskStorage)
    }

    /// The content address for a run: readable label + identity
    /// fingerprint, shared with the obs artifact naming.
    pub fn slug(label: &str, identity: &str) -> String {
        artifact_slug(label, identity)
    }
}

impl<S: Storage> TraceStore<S> {
    /// Opens (creating if needed) the store directory on `storage` —
    /// the fault-injection seam: hand it a
    /// [`FaultyStorage`](ccnuma_faults::FaultyStorage) to stress every
    /// save and load.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn with_storage<P: AsRef<Path>>(dir: P, storage: S) -> Result<TraceStore<S>, StoreError> {
        storage.create_dir_all(dir.as_ref())?;
        Ok(TraceStore {
            dir: dir.as_ref().to_path_buf(),
            storage,
            retry: RetryPolicy::default(),
        })
    }

    /// Overrides the bounded retry-with-backoff policy
    /// [`save`](TraceStore::save) uses for transient storage failures.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> TraceStore<S> {
        self.retry = retry;
        self
    }

    /// The storage layer the store performs its I/O through.
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the trace file for `slug`.
    pub fn trace_path(&self, slug: &str) -> PathBuf {
        self.dir.join(format!("{slug}.trace"))
    }

    /// Path of the meta sidecar for `slug`.
    pub fn meta_path(&self, slug: &str) -> PathBuf {
        self.dir.join(format!("{slug}.meta.json"))
    }

    /// True when both the trace and its sidecar exist.
    pub fn contains(&self, slug: &str) -> bool {
        self.trace_path(slug).is_file() && self.meta_path(slug).is_file()
    }

    /// Writes `trace` and its sidecar under `slug`, atomically: data
    /// lands in temporaries first and is renamed into place (sidecar
    /// last, since [`contains`](TraceStore::contains) requires both).
    /// Transient storage failures are retried with bounded backoff (see
    /// [`with_retry`](TraceStore::with_retry)); permanent errors
    /// (ENOSPC-class) surface immediately.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a failed save leaves no visible entry.
    pub fn save(
        &self,
        slug: &str,
        trace: &Trace,
        meta: &TraceMeta,
    ) -> Result<WriteSummary, StoreError> {
        let attempts = self.retry.attempts.max(1);
        let mut backoff = self.retry.base_backoff;
        let mut tried = 0;
        loop {
            match self.save_records(slug, trace.iter().copied(), meta) {
                Err(StoreError::Io(e)) if tried + 1 < attempts && is_transient(&e) => {
                    tried += 1;
                    if backoff > std::time::Duration::ZERO {
                        std::thread::sleep(backoff);
                        backoff = backoff.saturating_mul(2);
                    }
                }
                other => return other,
            }
        }
    }

    /// Streaming form of [`save`](TraceStore::save) for callers that do
    /// not hold a whole [`Trace`]. Single-attempt: the record iterator
    /// cannot be replayed, so retrying is the caller's business.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a failed save leaves no visible entry.
    pub fn save_records(
        &self,
        slug: &str,
        records: impl IntoIterator<Item = MissRecord>,
        meta: &TraceMeta,
    ) -> Result<WriteSummary, StoreError> {
        let trace_tmp = self.dir.join(format!("{slug}.trace.tmp"));
        let meta_tmp = self.dir.join(format!("{slug}.meta.json.tmp"));
        let result = (|| {
            let mut w = TraceWriter::new(BufWriter::new(self.storage.create(&trace_tmp)?))?;
            for r in records {
                w.push(&r)?;
            }
            let summary = w.finish()?;
            self.storage.write(&meta_tmp, meta.to_json().as_bytes())?;
            self.storage.rename(&trace_tmp, &self.trace_path(slug))?;
            self.storage.rename(&meta_tmp, &self.meta_path(slug))?;
            Ok(summary)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&trace_tmp);
            let _ = fs::remove_file(&meta_tmp);
        }
        result
    }

    /// Opens a streaming reader plus the sidecar for `slug`.
    ///
    /// # Errors
    ///
    /// I/O errors (including a missing entry) or a corrupt sidecar.
    pub fn open(&self, slug: &str) -> Result<OpenedEntry<S>, StoreError> {
        let meta = self.meta(slug)?;
        let reader = TraceReader::new(BufReader::new(self.storage.open(&self.trace_path(slug))?))?;
        Ok((reader, meta))
    }

    /// Loads the whole trace into memory (for callers that genuinely
    /// need a [`Trace`], e.g. figure rendering). A successful load
    /// freshens the entry's file mtime, so `trace gc`'s
    /// least-recently-used eviction order tracks actual use, not just
    /// capture time. The freshen is best-effort: if a concurrent
    /// `trace gc` evicted the entry between the read and the touch, the
    /// touch degrades to a no-op — the load already has the bytes, and
    /// a vanished file must not turn a successful load into an error.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from the read.
    pub fn load(&self, slug: &str) -> Result<(Trace, TraceMeta), StoreError> {
        let (reader, meta) = self.open(slug)?;
        let mut b = TraceBuilder::with_capacity(meta.records.min(1 << 24) as usize);
        for rec in reader {
            b.push(rec?);
        }
        freshen(&self.trace_path(slug));
        Ok((b.finish(), meta))
    }

    /// Reads just the sidecar for `slug`.
    ///
    /// # Errors
    ///
    /// I/O errors or a corrupt sidecar.
    pub fn meta(&self, slug: &str) -> Result<TraceMeta, StoreError> {
        let bytes = self.storage.read(&self.meta_path(slug))?;
        let text = String::from_utf8_lossy(&bytes);
        TraceMeta::from_json(&text)
    }

    /// All slugs present in the store, sorted.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures.
    pub fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut slugs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(slug) = name.strip_suffix(".trace") {
                if self.meta_path(slug).is_file() {
                    slugs.push(slug.to_string());
                }
            }
        }
        slugs.sort();
        Ok(slugs)
    }
}

/// Best-effort LRU hint: bump a file's mtime to "now" so `trace gc`
/// evicts genuinely cold entries first. Purely a host-side ordering
/// aid — every failure (most importantly `NotFound`, the entry evicted
/// by a concurrent gc between our read and this touch) degrades to a
/// no-op; the bytes on disk are never modified. Returns whether the
/// mtime was actually bumped, so tests can pin the degraded path.
pub(crate) fn freshen(path: &Path) -> bool {
    match fs::OpenOptions::new().append(true).open(path) {
        Ok(f) => f.set_modified(std::time::SystemTime::now()).is_ok(),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_types::{Ns, Pid, ProcId, VirtPage};

    fn meta() -> TraceMeta {
        TraceMeta {
            label: "raytrace [FT] +trace".into(),
            records: 3,
            nodes: 8,
            other_time_ns: 123_456,
        }
    }

    fn trace() -> Trace {
        (0..3)
            .map(|i| MissRecord::user_data_read(Ns(i), ProcId(0), Pid(0), VirtPage(i)))
            .collect()
    }

    #[test]
    fn meta_roundtrips_through_json() {
        let m = meta();
        assert_eq!(TraceMeta::from_json(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn meta_rejects_wrong_schema() {
        let text = meta().to_json().replace(META_SCHEMA, "ccnuma-other/9");
        assert!(TraceMeta::from_json(&text).is_err());
    }

    #[test]
    fn save_retries_through_injected_write_failures() {
        use ccnuma_faults::io::{FaultyStorage, IoFaultConfig, IoFaults};
        let dir = std::env::temp_dir().join(format!("ccnuma-store-faulty-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cfg = IoFaultConfig {
            write_fail_p: 0.20,
            ..IoFaultConfig::default()
        };
        // The fault stream is a pure function of the seed, so this test
        // is deterministic: enough attempts that the flaky-disk run
        // converges, and the entry must then read back bit-exact.
        let store =
            TraceStore::with_storage(&dir, FaultyStorage::new(IoFaults::new(cfg, 0xC0FFEE)))
                .unwrap()
                .with_retry(RetryPolicy {
                    attempts: 64,
                    base_backoff: std::time::Duration::ZERO,
                });
        let slug = TraceStore::slug("raytrace [FT] +trace", "identity-faulty");
        store.save(&slug, &trace(), &meta()).unwrap();
        assert!(
            store.storage().faults().stats().write_fails > 0,
            "the scenario must actually have injected failures"
        );
        // Verify through a clean store: no read-side injection.
        let clean = TraceStore::new(&dir).unwrap();
        let (t, m) = clean.load(&slug).unwrap();
        assert_eq!(t, trace());
        assert_eq!(m, meta());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_load_and_list() {
        let dir = std::env::temp_dir().join(format!("ccnuma-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = TraceStore::new(&dir).unwrap();
        let slug = TraceStore::slug("raytrace [FT] +trace", "identity-a");
        assert!(!store.contains(&slug));
        store.save(&slug, &trace(), &meta()).unwrap();
        assert!(store.contains(&slug));
        let (t, m) = store.load(&slug).unwrap();
        assert_eq!(t, trace());
        assert_eq!(m, meta());
        assert_eq!(store.list().unwrap(), vec![slug]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn freshen_degrades_to_noop_when_entry_was_evicted() {
        // Regression: the post-load mtime freshen must not error (or
        // panic) when a concurrent `trace gc` unlinked the entry
        // between the read and the touch.
        let dir = std::env::temp_dir().join(format!("ccnuma-store-freshen-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = TraceStore::new(&dir).unwrap();
        let slug = TraceStore::slug("raytrace [FT] +trace", "identity-f");
        store.save(&slug, &trace(), &meta()).unwrap();
        assert!(freshen(&store.trace_path(&slug)), "live entry is touched");
        // Simulate the gc winning the race: the entry vanishes.
        fs::remove_file(store.trace_path(&slug)).unwrap();
        fs::remove_file(store.meta_path(&slug)).unwrap();
        assert!(
            !freshen(&store.trace_path(&slug)),
            "evicted entry degrades to a no-op"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
