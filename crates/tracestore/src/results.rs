//! Content-addressed *result* cache: the serve daemon's memo of
//! finished sweep cells.
//!
//! The trace store content-addresses inputs; this directory
//! content-addresses outputs. A cell's key is the existing sweep memo
//! key extended with a format-version salt plus everything else the
//! replay is a function of (trace slug, node count, other-time, record
//! filter), and the stored bytes are exactly the
//! [`cell_payload`](crate::sweep::cell_payload) journal encoding — so a
//! cache hit reproduces a fresh replay byte-for-byte, across daemon
//! restarts, by construction. Writes go through `atomic_write`, so a
//! crash can never leave a half-written result visible.

use crate::format::StoreError;
use ccnuma_faults::io::atomic_write;
use ccnuma_obs::artifact_slug;
use ccnuma_polsim::TraceFilter;
use std::fs;
use std::path::{Path, PathBuf};

/// Format-version salt folded into every cache key. Bump it when the
/// payload encoding changes and the whole cache invalidates at once.
pub const RESULT_SALT: &str = "ccnuma-cell-result/1";

/// An on-disk cell-result cache directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new<P: AsRef<Path>>(dir: P) -> Result<ResultCache, StoreError> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(ResultCache {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The full content address of one cell result: the sweep memo key
    /// salted with the payload format version and the replay's other
    /// inputs.
    pub fn key(
        trace_slug: &str,
        nodes: u16,
        other_time_ns: u64,
        filter: TraceFilter,
        memo_key: &str,
    ) -> String {
        format!("{RESULT_SALT}|{trace_slug}|n={nodes}|ot={other_time_ns}|f={filter:?}|{memo_key}")
    }

    /// File path a key is stored at (readable memo-key prefix + FNV
    /// fingerprint of the full key, like every other artifact).
    pub fn path(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{}.json", artifact_slug("cell", key)))
    }

    /// Loads the cached payload for `key`, or `None` on any miss or
    /// read error (the caller replays the cell — a damaged cache entry
    /// must never be worse than an empty one).
    pub fn load(&self, key: &str) -> Option<String> {
        fs::read_to_string(self.path(key)).ok()
    }

    /// Stores `payload` under `key` atomically.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a failed store leaves no visible entry.
    pub fn store(&self, key: &str, payload: &str) -> Result<(), StoreError> {
        Ok(atomic_write(&self.path(key), payload.as_bytes())?)
    }

    /// Entry count and byte footprint of the cache directory, for the
    /// executor summary and capacity planning. Unreadable entries are
    /// counted as zero bytes.
    pub fn footprint(&self) -> (u64, u64) {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        let Ok(dir) = fs::read_dir(&self.dir) else {
            return (0, 0);
        };
        for entry in dir.flatten() {
            if entry.file_name().to_string_lossy().ends_with(".json") {
                entries += 1;
                bytes += entry.metadata().map_or(0, |m| m.len());
            }
        }
        (entries, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_and_footprint() {
        let dir = std::env::temp_dir().join(format!("ccnuma-results-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::new(&dir).unwrap();
        let key = ResultCache::key("slug-a", 8, 42, TraceFilter::UserOnly, "FT|topo=flat");
        assert_eq!(cache.load(&key), None);
        cache.store(&key, "{\"x\":1}").unwrap();
        assert_eq!(cache.load(&key).as_deref(), Some("{\"x\":1}"));
        // A different filter is a different address.
        let other = ResultCache::key("slug-a", 8, 42, TraceFilter::All, "FT|topo=flat");
        assert_ne!(cache.path(&key), cache.path(&other));
        assert_eq!(cache.load(&other), None);
        let (n, b) = cache.footprint();
        assert_eq!(n, 1);
        assert_eq!(b, 7);
        // A reopened cache (daemon restart) sees the same bytes.
        let reopened = ResultCache::new(&dir).unwrap();
        assert_eq!(reopened.load(&key).as_deref(), Some("{\"x\":1}"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
