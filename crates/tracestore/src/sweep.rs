//! The policy-parameter sweep engine.
//!
//! Section 8's methodology — capture a trace once, replay it under many
//! policies — generalizes to a grid: policies × trigger thresholds ×
//! sampling rates × remote latencies × move costs × topologies. A
//! [`SweepSpec`] declares the grid; [`run_sweep`] streams the stored
//! trace through [`ccnuma_polsim::Replay`] for each *distinct* cell on
//! scoped worker threads (cells whose effective inputs coincide — a
//! static policy ignores triggers and sampling, a non-flat topology
//! ignores the latency axis — share one replay), and the result renders
//! as a deterministic JSON (`ccnuma-sweep/2`) or CSV artifact whose
//! bytes do not depend on the worker count.

use crate::format::StoreError;
use ccnuma_core::{MissMetric, PolicyParams, PolicyStats};
use ccnuma_faults::io::Storage;
use ccnuma_obs::checkpoint::CheckpointJournal;
use ccnuma_obs::json::{JsonValue, JsonWriter};
use ccnuma_obs::{Phase, Profiler, SpanProfiler};
use ccnuma_polsim::{PolsimConfig, PolsimReport, Replay, SimPolicy, TraceFilter};
use ccnuma_trace::MissRecord;
use ccnuma_types::{Ns, TopologyPreset};
use core::fmt;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A policy axis value in a sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepPolicy {
    /// Round-robin static baseline.
    RoundRobin,
    /// First-touch static baseline.
    FirstTouch,
    /// Post-facto optimal static placement (two-pass replay).
    PostFacto,
    /// Dynamic policy, migration only.
    MigrationOnly,
    /// Dynamic policy, replication only.
    ReplicationOnly,
    /// Dynamic policy, migration + replication.
    MigRep,
}

impl SweepPolicy {
    /// All six policies, in the Figure 6 order.
    pub const ALL: [SweepPolicy; 6] = [
        SweepPolicy::RoundRobin,
        SweepPolicy::FirstTouch,
        SweepPolicy::PostFacto,
        SweepPolicy::MigrationOnly,
        SweepPolicy::ReplicationOnly,
        SweepPolicy::MigRep,
    ];

    /// True for the policies driven by the miss metric and trigger.
    pub fn is_dynamic(self) -> bool {
        matches!(
            self,
            SweepPolicy::MigrationOnly | SweepPolicy::ReplicationOnly | SweepPolicy::MigRep
        )
    }

    /// Parses the labels used on the CLI and in artifacts.
    pub fn parse(s: &str) -> Option<SweepPolicy> {
        match s {
            "RR" => Some(SweepPolicy::RoundRobin),
            "FT" => Some(SweepPolicy::FirstTouch),
            "PF" => Some(SweepPolicy::PostFacto),
            "Migr" => Some(SweepPolicy::MigrationOnly),
            "Repl" => Some(SweepPolicy::ReplicationOnly),
            "Mig/Rep" | "MigRep" => Some(SweepPolicy::MigRep),
            _ => None,
        }
    }

    fn to_sim(self, trigger: u32, sample: u32) -> SimPolicy {
        let metric = if sample == 1 {
            MissMetric::full_cache()
        } else {
            MissMetric::sampled_cache(sample)
        };
        let params = PolicyParams::base().with_trigger(trigger);
        match self {
            SweepPolicy::RoundRobin => SimPolicy::round_robin(),
            SweepPolicy::FirstTouch => SimPolicy::first_touch(),
            SweepPolicy::PostFacto => SimPolicy::post_facto(),
            SweepPolicy::MigrationOnly => SimPolicy::Dynamic {
                params,
                kind: ccnuma_core::DynamicPolicyKind::MigrationOnly,
                metric,
            },
            SweepPolicy::ReplicationOnly => SimPolicy::Dynamic {
                params,
                kind: ccnuma_core::DynamicPolicyKind::ReplicationOnly,
                metric,
            },
            SweepPolicy::MigRep => SimPolicy::Dynamic {
                params,
                kind: ccnuma_core::DynamicPolicyKind::MigRep,
                metric,
            },
        }
    }
}

impl fmt::Display for SweepPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SweepPolicy::RoundRobin => "RR",
            SweepPolicy::FirstTouch => "FT",
            SweepPolicy::PostFacto => "PF",
            SweepPolicy::MigrationOnly => "Migr",
            SweepPolicy::ReplicationOnly => "Repl",
            SweepPolicy::MigRep => "Mig/Rep",
        })
    }
}

/// A declarative policy-parameter grid.
///
/// The cell list is the cartesian product of the five axes, in
/// policy-major order; axes that do not apply to a policy (triggers and
/// sampling for static baselines, move costs likewise) still appear in
/// the output rows but collapse onto a single replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Policies to replay.
    pub policies: Vec<SweepPolicy>,
    /// Trigger thresholds for the dynamic policies.
    pub triggers: Vec<u32>,
    /// Metric sampling rates (1 = full information).
    pub sample_rates: Vec<u32>,
    /// Remote miss latencies, nanoseconds (ignored by non-flat
    /// topologies, whose latency model is the preset's own).
    pub remote_latencies_ns: Vec<u64>,
    /// Page move costs, microseconds.
    pub move_costs_us: Vec<u64>,
    /// Topology presets to replay under.
    pub topologies: Vec<TopologyPreset>,
    /// Which records count for stall accounting.
    pub filter: TraceFilter,
}

impl SweepSpec {
    /// The default 12-cell grid: the three dynamic policies × triggers
    /// {64, 128} × sampling {1:1, 1:10}, at the paper's latencies on the
    /// flat machine.
    pub fn default_grid() -> SweepSpec {
        SweepSpec {
            policies: vec![
                SweepPolicy::MigrationOnly,
                SweepPolicy::ReplicationOnly,
                SweepPolicy::MigRep,
            ],
            triggers: vec![64, 128],
            sample_rates: vec![1, 10],
            remote_latencies_ns: vec![1200],
            move_costs_us: vec![350],
            topologies: vec![TopologyPreset::Flat],
            filter: TraceFilter::UserOnly,
        }
    }

    /// Number of grid cells.
    pub fn len(&self) -> usize {
        self.policies.len()
            * self.triggers.len()
            * self.sample_rates.len()
            * self.remote_latencies_ns.len()
            * self.move_costs_us.len()
            * self.topologies.len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cells of the grid, in deterministic policy-major order.
    pub fn cells(&self) -> Vec<CellParams> {
        let mut out = Vec::with_capacity(self.len());
        for &policy in &self.policies {
            for &trigger in &self.triggers {
                for &sample in &self.sample_rates {
                    for &remote_ns in &self.remote_latencies_ns {
                        for &move_us in &self.move_costs_us {
                            for &topology in &self.topologies {
                                out.push(CellParams {
                                    policy,
                                    trigger,
                                    sample,
                                    remote_ns,
                                    move_us,
                                    topology,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Coordinates of one sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellParams {
    /// Policy axis value.
    pub policy: SweepPolicy,
    /// Trigger threshold (ignored by static policies).
    pub trigger: u32,
    /// Metric sampling rate (ignored by static policies).
    pub sample: u32,
    /// Remote miss latency, nanoseconds (ignored by non-flat topologies).
    pub remote_ns: u64,
    /// Page move cost, microseconds (ignored by static policies).
    pub move_us: u64,
    /// Topology preset the replay runs under.
    pub topology: TopologyPreset,
}

impl CellParams {
    /// The effective-input key cells are memoized on: static policies
    /// drop the axes that cannot change their result (e.g. `FT` at any
    /// trigger is one replay), and a non-flat topology drops the remote
    /// latency — the preset carries its own latency model.
    pub fn memo_key(&self) -> String {
        let lat = if self.topology.is_flat() {
            format!("|lat={}", self.remote_ns)
        } else {
            String::new()
        };
        if self.policy.is_dynamic() {
            format!(
                "{}|t={}|s={}{}|mv={}|topo={}",
                self.policy, self.trigger, self.sample, lat, self.move_us, self.topology
            )
        } else {
            format!("{}{}|topo={}", self.policy, lat, self.topology)
        }
    }

    fn config(&self, nodes: u16, other_time: Ns) -> PolsimConfig {
        let mut cfg = PolsimConfig::section8(nodes).with_other_time(other_time);
        cfg.remote_latency = Ns(self.remote_ns);
        cfg.move_cost = Ns::from_us(self.move_us);
        if !self.topology.is_flat() {
            cfg = cfg.with_topology(self.topology);
        }
        cfg
    }
}

/// One finished cell: its coordinates plus the replay report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Grid coordinates.
    pub params: CellParams,
    /// Replay result.
    pub report: PolsimReport,
}

/// The result of a sweep, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Nodes of the replayed machine.
    pub nodes: u16,
    /// Records in the source trace.
    pub records: u64,
    /// One entry per grid cell.
    pub cells: Vec<SweepCell>,
    /// Distinct replays actually executed (≤ `cells.len()`).
    pub unique_replays: usize,
}

/// Schema tag of the JSON artifact (v2 added the `topology` axis).
pub const SWEEP_SCHEMA: &str = "ccnuma-sweep/2";

impl SweepReport {
    /// Renders the `ccnuma-sweep/2` JSON artifact. Deterministic: same
    /// spec and trace give the same bytes whatever the worker count.
    pub fn to_json(&self, trace_label: &str) -> String {
        let mut j = JsonWriter::new();
        j.begin_obj();
        j.key("schema");
        j.str(SWEEP_SCHEMA);
        j.key("trace");
        j.str(trace_label);
        j.key("records");
        j.raw(&self.records.to_string());
        j.key("nodes");
        j.raw(&self.nodes.to_string());
        j.key("cells");
        j.raw(&self.cells.len().to_string());
        j.key("unique_replays");
        j.raw(&self.unique_replays.to_string());
        j.key("grid");
        j.begin_arr();
        for cell in &self.cells {
            let p = &cell.params;
            let r = &cell.report;
            j.begin_obj();
            j.key("policy");
            j.str(&p.policy.to_string());
            j.key("trigger");
            j.raw(&p.trigger.to_string());
            j.key("sample_rate");
            j.raw(&p.sample.to_string());
            j.key("remote_latency_ns");
            j.raw(&p.remote_ns.to_string());
            j.key("move_cost_us");
            j.raw(&p.move_us.to_string());
            j.key("topology");
            j.str(p.topology.label());
            j.key("local_misses");
            j.raw(&r.local_misses.to_string());
            j.key("remote_misses");
            j.raw(&r.remote_misses.to_string());
            j.key("local_stall_ns");
            j.raw(&r.local_stall.0.to_string());
            j.key("remote_stall_ns");
            j.raw(&r.remote_stall.0.to_string());
            j.key("mig_overhead_ns");
            j.raw(&r.mig_overhead.0.to_string());
            j.key("rep_overhead_ns");
            j.raw(&r.rep_overhead.0.to_string());
            j.key("migrations");
            j.raw(&r.migrations.to_string());
            j.key("replications");
            j.raw(&r.replications.to_string());
            j.key("collapses");
            j.raw(&r.collapses.to_string());
            j.key("other_time_ns");
            j.raw(&r.other_time.0.to_string());
            j.key("total_ns");
            j.raw(&r.total().0.to_string());
            j.key("pct_local");
            j.raw(&format!("{:.3}", r.pct_local_misses()));
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }

    /// Renders the same table as CSV (header + one row per cell).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "policy,trigger,sample_rate,remote_latency_ns,move_cost_us,topology,\
             local_misses,remote_misses,local_stall_ns,remote_stall_ns,\
             mig_overhead_ns,rep_overhead_ns,migrations,replications,\
             collapses,other_time_ns,total_ns,pct_local\n",
        );
        use std::fmt::Write as _;
        for cell in &self.cells {
            let p = &cell.params;
            let r = &cell.report;
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.3}",
                p.policy,
                p.trigger,
                p.sample,
                p.remote_ns,
                p.move_us,
                p.topology,
                r.local_misses,
                r.remote_misses,
                r.local_stall.0,
                r.remote_stall.0,
                r.mig_overhead.0,
                r.rep_overhead.0,
                r.migrations,
                r.replications,
                r.collapses,
                r.other_time.0,
                r.total().0,
                r.pct_local_misses()
            );
        }
        out
    }
}

/// The journal record kind sweep cells are checkpointed under.
pub const CELL_KIND: &str = "cell";

/// Serializes one finished cell into a checkpoint-journal payload.
/// Every field is a `u64` (times are `Ns` counts), so the round trip
/// is exact by construction. The serve result cache stores these same
/// bytes, so a cached cell is byte-identical to a fresh replay.
pub fn cell_payload(report: &PolsimReport, records: u64) -> String {
    let mut j = JsonWriter::new();
    let u = |j: &mut JsonWriter, k: &str, v: u64| {
        j.key(k);
        j.raw(&v.to_string());
    };
    j.begin_obj();
    j.key("label");
    j.str(&report.label);
    u(&mut j, "records", records);
    u(&mut j, "local_misses", report.local_misses);
    u(&mut j, "remote_misses", report.remote_misses);
    u(&mut j, "local_stall_ns", report.local_stall.0);
    u(&mut j, "remote_stall_ns", report.remote_stall.0);
    u(&mut j, "mig_overhead_ns", report.mig_overhead.0);
    u(&mut j, "rep_overhead_ns", report.rep_overhead.0);
    u(&mut j, "migrations", report.migrations);
    u(&mut j, "replications", report.replications);
    u(&mut j, "collapses", report.collapses);
    u(&mut j, "other_time_ns", report.other_time.0);
    j.key("policy_stats");
    match &report.policy_stats {
        None => j.raw("null"),
        Some(p) => {
            j.begin_obj();
            u(&mut j, "misses_observed", p.misses_observed);
            u(&mut j, "hot_events", p.hot_events);
            u(&mut j, "migrations", p.migrations);
            u(&mut j, "replications", p.replications);
            u(&mut j, "remaps", p.remaps);
            u(&mut j, "collapses", p.collapses);
            u(&mut j, "no_action", p.no_action);
            u(&mut j, "no_action_write_shared", p.no_action_write_shared);
            u(&mut j, "no_action_migrate_limit", p.no_action_migrate_limit);
            u(&mut j, "no_action_pressure", p.no_action_pressure);
            u(&mut j, "no_action_disabled", p.no_action_disabled);
            u(&mut j, "no_action_frozen", p.no_action_frozen);
            u(&mut j, "no_page", p.no_page);
            j.end_obj();
        }
    }
    j.end_obj();
    j.finish()
}

/// Rebuilds a cell result from a journal payload. `None` if the
/// payload is malformed — the caller replays that cell.
pub fn cell_from_payload(v: &JsonValue) -> Option<(PolsimReport, u64)> {
    fn u(v: &JsonValue, k: &str) -> Option<u64> {
        v.get(k).and_then(JsonValue::as_u64)
    }
    let policy_stats = match v.get("policy_stats")? {
        JsonValue::Null => None,
        p => Some(PolicyStats {
            misses_observed: u(p, "misses_observed")?,
            hot_events: u(p, "hot_events")?,
            migrations: u(p, "migrations")?,
            replications: u(p, "replications")?,
            remaps: u(p, "remaps")?,
            collapses: u(p, "collapses")?,
            no_action: u(p, "no_action")?,
            no_action_write_shared: u(p, "no_action_write_shared")?,
            no_action_migrate_limit: u(p, "no_action_migrate_limit")?,
            no_action_pressure: u(p, "no_action_pressure")?,
            no_action_disabled: u(p, "no_action_disabled")?,
            no_action_frozen: u(p, "no_action_frozen")?,
            no_page: u(p, "no_page")?,
        }),
    };
    Some((
        PolsimReport {
            label: v.get("label")?.as_str()?.to_string(),
            local_misses: u(v, "local_misses")?,
            remote_misses: u(v, "remote_misses")?,
            local_stall: Ns(u(v, "local_stall_ns")?),
            remote_stall: Ns(u(v, "remote_stall_ns")?),
            mig_overhead: Ns(u(v, "mig_overhead_ns")?),
            rep_overhead: Ns(u(v, "rep_overhead_ns")?),
            migrations: u(v, "migrations")?,
            replications: u(v, "replications")?,
            collapses: u(v, "collapses")?,
            other_time: Ns(u(v, "other_time_ns")?),
            policy_stats,
        },
        u(v, "records")?,
    ))
}

/// Resume/journal hooks for a checkpointed sweep, threaded through
/// [`run_sweep_inner`].
struct SweepCkpt<'a> {
    /// Restored results keyed by memo key; jobs found here are never
    /// replayed.
    resume: HashMap<String, (PolsimReport, u64)>,
    /// Called (from worker threads) after each fresh replay completes.
    on_complete: &'a (dyn Fn(&str, &PolsimReport, u64) + Sync),
    /// Per-cell soft deadline: a replay exceeding it gets a stderr
    /// warning. Warnings never touch the artifacts, so resumed and
    /// fresh sweeps stay byte-identical.
    soft_deadline: Option<Duration>,
}

/// Replays one cell, reopening the trace stream for the second pass a
/// post-facto policy needs.
fn replay_cell<I, F>(
    cell: &CellParams,
    nodes: u16,
    other_time: Ns,
    filter: TraceFilter,
    open: &F,
) -> Result<(PolsimReport, u64), StoreError>
where
    I: Iterator<Item = Result<MissRecord, StoreError>>,
    F: Fn() -> Result<I, StoreError>,
{
    let cfg = cell.config(nodes, other_time);
    let mut replay = Replay::new(&cfg, cell.policy.to_sim(cell.trigger, cell.sample), filter);
    if replay.needs_priming() {
        for rec in open()? {
            replay.prime(&rec?);
        }
        replay.seal();
    }
    let mut records = 0u64;
    for rec in open()? {
        replay.observe(&rec?);
        records += 1;
    }
    Ok((replay.finish(), records))
}

/// Replays one cell against an in-memory record slice — the serve
/// daemon's eval path, where the trace is already resident. Infallible
/// by construction: the only error source in a replay is the trace
/// stream, and a slice cannot fail.
pub fn eval_cell(
    cell: &CellParams,
    nodes: u16,
    other_time: Ns,
    filter: TraceFilter,
    records: &[MissRecord],
) -> (PolsimReport, u64) {
    let open = || Ok(records.iter().map(|r| Ok(*r)));
    replay_cell(cell, nodes, other_time, filter, &open)
        .expect("in-memory replay cannot hit a store error")
}

/// Runs the sweep: every distinct cell is replayed once, on up to
/// `jobs` scoped worker threads, each streaming its own reopened trace
/// (`open` must yield a fresh stream per call — post-facto cells open
/// it twice). The output is in grid order regardless of scheduling.
///
/// # Errors
///
/// The first [`StoreError`] any worker hits (opening or decoding the
/// trace stream).
///
/// # Panics
///
/// Panics if `jobs` is zero.
pub fn run_sweep<I, F>(
    spec: &SweepSpec,
    nodes: u16,
    other_time: Ns,
    jobs: usize,
    open: F,
) -> Result<SweepReport, StoreError>
where
    I: Iterator<Item = Result<MissRecord, StoreError>>,
    F: Fn() -> Result<I, StoreError> + Sync,
{
    run_sweep_inner(spec, nodes, other_time, jobs, open, false, None).map(|(report, _, _)| report)
}

/// [`run_sweep`] with crash tolerance: every finished distinct cell is
/// journaled to `journal` (kind [`CELL_KIND`], keyed by
/// [`CellParams::memo_key`]), and cells already journaled are restored
/// instead of replayed. Returns the report plus the number of distinct
/// replays restored from the journal.
///
/// The rendered artifacts are byte-identical whether the sweep ran
/// fresh, resumed partially, or resumed completely — restored payloads
/// round-trip every report field exactly, and `unique_replays` keeps
/// counting distinct cells, not work done this invocation. Journaling
/// failures cost durability, not the sweep: they are reported on
/// stderr and the sweep continues. A replay exceeding `soft_deadline`
/// warns on stderr (artifacts untouched); sweeps have no hard
/// deadline — a cell is pure replay arithmetic, so unlike a bench run
/// it cannot wedge on host state, and killing it would forfeit a
/// resumable result.
///
/// # Errors
///
/// As [`run_sweep`], plus journal-load I/O errors (wrapped as
/// [`StoreError::Io`]).
///
/// # Panics
///
/// Panics if `jobs` is zero.
pub fn run_sweep_resumable<I, F, S>(
    spec: &SweepSpec,
    nodes: u16,
    other_time: Ns,
    jobs: usize,
    open: F,
    journal: &CheckpointJournal<S>,
    soft_deadline: Option<Duration>,
) -> Result<(SweepReport, usize), StoreError>
where
    I: Iterator<Item = Result<MissRecord, StoreError>>,
    F: Fn() -> Result<I, StoreError> + Sync,
    S: Storage,
{
    let mut resume = HashMap::new();
    for rec in journal.load().map_err(StoreError::Io)?.records {
        if rec.kind != CELL_KIND {
            continue;
        }
        if let Some(restored) = cell_from_payload(&rec.payload) {
            resume.insert(rec.cache_key, restored);
        }
    }
    let on_complete = |memo_key: &str, report: &PolsimReport, records: u64| {
        if let Err(e) = journal.append(
            CELL_KIND,
            memo_key,
            memo_key,
            &cell_payload(report, records),
        ) {
            eprintln!("warning: checkpoint: journaling sweep cell {memo_key}: {e}");
        }
    };
    let ckpt = SweepCkpt {
        resume,
        on_complete: &on_complete,
        soft_deadline,
    };
    run_sweep_inner(spec, nodes, other_time, jobs, open, false, Some(&ckpt))
        .map(|(report, _, resumed)| (report, resumed))
}

/// [`run_sweep`] with host-time profiling: each worker thread owns its
/// own [`SpanProfiler`] (no shared hot-path state) and times every
/// distinct cell replay as a [`Phase::Replay`] span; the per-worker
/// profilers merge commutatively into the returned aggregate, so its
/// entry/span counts equal `unique_replays` whatever the worker count
/// or scheduling.
///
/// # Errors
///
/// Same as [`run_sweep`].
///
/// # Panics
///
/// Panics if `jobs` is zero.
pub fn run_sweep_profiled<I, F>(
    spec: &SweepSpec,
    nodes: u16,
    other_time: Ns,
    jobs: usize,
    open: F,
) -> Result<(SweepReport, SpanProfiler), StoreError>
where
    I: Iterator<Item = Result<MissRecord, StoreError>>,
    F: Fn() -> Result<I, StoreError> + Sync,
{
    run_sweep_inner(spec, nodes, other_time, jobs, open, true, None)
        .map(|(report, prof, _)| (report, prof.expect("profiling was requested")))
}

fn run_sweep_inner<I, F>(
    spec: &SweepSpec,
    nodes: u16,
    other_time: Ns,
    jobs: usize,
    open: F,
    profile: bool,
    ckpt: Option<&SweepCkpt<'_>>,
) -> Result<(SweepReport, Option<SpanProfiler>, usize), StoreError>
where
    I: Iterator<Item = Result<MissRecord, StoreError>>,
    F: Fn() -> Result<I, StoreError> + Sync,
{
    assert!(jobs > 0, "need at least one worker");
    let cells = spec.cells();

    // Collapse cells onto distinct effective inputs, preserving first-
    // appearance order so the job list is deterministic.
    let mut job_of_cell = Vec::with_capacity(cells.len());
    let mut job_cells: Vec<CellParams> = Vec::new();
    let mut seen: HashMap<String, usize> = HashMap::new();
    for cell in &cells {
        let key = cell.memo_key();
        let job = *seen.entry(key).or_insert_with(|| {
            job_cells.push(*cell);
            job_cells.len() - 1
        });
        job_of_cell.push(job);
    }

    type JobSlot = Mutex<Option<Result<(PolsimReport, u64), StoreError>>>;
    let results: Vec<JobSlot> = job_cells.iter().map(|_| Mutex::new(None)).collect();

    // Restore journaled cells up front: their slots are filled before
    // any worker starts, so workers simply skip them.
    let mut resumed = 0usize;
    if let Some(c) = ckpt {
        for (i, cell) in job_cells.iter().enumerate() {
            if let Some((report, n)) = c.resume.get(&cell.memo_key()) {
                *results[i].lock().unwrap_or_else(|e| e.into_inner()) =
                    Some(Ok((report.clone(), *n)));
                resumed += 1;
            }
        }
    }

    let next = AtomicUsize::new(0);
    let workers = jobs.min(job_cells.len()).max(1);
    let merged_prof: Mutex<SpanProfiler> = Mutex::new(SpanProfiler::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Each worker keeps its own profiler so the replay loop
                // never contends on shared state; the merge at the end
                // is commutative, so the aggregate is scheduling-
                // independent.
                let mut local_prof = profile.then(SpanProfiler::new);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = job_cells.get(i) else {
                        break;
                    };
                    if results[i]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .is_some()
                    {
                        continue; // restored from the checkpoint journal
                    }
                    let span = local_prof.as_mut().and_then(|p| p.enter(Phase::Replay));
                    let started = Instant::now();
                    let outcome = replay_cell(cell, nodes, other_time, spec.filter, &open);
                    if let Some(p) = local_prof.as_mut() {
                        p.exit(Phase::Replay, span);
                    }
                    if let (Some(c), Ok((report, n))) = (ckpt, &outcome) {
                        if let Some(soft) = c.soft_deadline {
                            let wall = started.elapsed();
                            if wall > soft {
                                eprintln!(
                                    "warning: watchdog: sweep cell {} exceeded soft deadline \
                                     ({:.2}s > {:.2}s)",
                                    cell.memo_key(),
                                    wall.as_secs_f64(),
                                    soft.as_secs_f64()
                                );
                            }
                        }
                        (c.on_complete)(&cell.memo_key(), report, *n);
                    }
                    *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
                }
                if let Some(p) = local_prof {
                    merged_prof
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .merge(&p);
                }
            });
        }
    });

    let mut reports = Vec::with_capacity(job_cells.len());
    let mut records = 0u64;
    for slot in results {
        match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(Ok((report, n))) => {
                records = records.max(n);
                reports.push(report);
            }
            Some(Err(e)) => return Err(e),
            None => unreachable!("every job slot is filled before the scope ends"),
        }
    }

    let unique_replays = job_cells.len();
    let cells = cells
        .into_iter()
        .zip(&job_of_cell)
        .map(|(params, &job)| SweepCell {
            params,
            report: reports[job].clone(),
        })
        .collect();
    let prof = profile.then(|| merged_prof.into_inner().unwrap_or_else(|e| e.into_inner()));
    Ok((
        SweepReport {
            nodes,
            records,
            cells,
            unique_replays,
        },
        prof,
        resumed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_types::{Pid, ProcId, VirtPage};

    fn records() -> Vec<MissRecord> {
        let mut v = Vec::new();
        for i in 0..400u64 {
            let proc = if i % 2 == 0 { ProcId(0) } else { ProcId(5) };
            v.push(MissRecord::user_data_read(
                Ns(i * 500),
                proc,
                Pid(0),
                VirtPage(1 + i / 64),
            ));
        }
        v
    }

    fn open_mem(recs: &[MissRecord]) -> impl Iterator<Item = Result<MissRecord, StoreError>> + '_ {
        recs.iter().map(|r| Ok(*r))
    }

    #[test]
    fn default_grid_is_twelve_cells() {
        let spec = SweepSpec::default_grid();
        assert_eq!(spec.len(), 12);
        assert_eq!(spec.cells().len(), 12);
    }

    #[test]
    fn static_cells_collapse_to_one_replay() {
        let spec = SweepSpec {
            policies: vec![SweepPolicy::FirstTouch],
            triggers: vec![32, 64, 128],
            sample_rates: vec![1, 10],
            remote_latencies_ns: vec![1200],
            move_costs_us: vec![350],
            topologies: vec![TopologyPreset::Flat],
            filter: TraceFilter::All,
        };
        let recs = records();
        let report = run_sweep(&spec, 8, Ns::ZERO, 2, || Ok(open_mem(&recs))).unwrap();
        assert_eq!(report.cells.len(), 6);
        assert_eq!(report.unique_replays, 1, "FT ignores trigger and sampling");
        // Every cell carries the same numbers.
        for c in &report.cells {
            assert_eq!(c.report, report.cells[0].report);
        }
    }

    #[test]
    fn sweep_matches_direct_simulate() {
        let recs = records();
        let trace: ccnuma_trace::Trace = recs.iter().copied().collect();
        let spec = SweepSpec {
            policies: vec![SweepPolicy::MigRep],
            triggers: vec![128],
            sample_rates: vec![1],
            remote_latencies_ns: vec![1200],
            move_costs_us: vec![350],
            topologies: vec![TopologyPreset::Flat],
            filter: TraceFilter::All,
        };
        let swept = run_sweep(&spec, 8, Ns::ZERO, 1, || Ok(open_mem(&recs))).unwrap();
        let direct = ccnuma_polsim::simulate(
            &trace,
            &PolsimConfig::section8(8),
            SimPolicy::base_dynamic(),
            TraceFilter::All,
        );
        assert_eq!(swept.cells[0].report, direct);
        assert_eq!(swept.records, 400);
    }

    #[test]
    fn artifacts_are_job_count_invariant() {
        let recs = records();
        let spec = SweepSpec::default_grid();
        let run = |jobs| {
            let r = run_sweep(&spec, 8, Ns(777), jobs, || Ok(open_mem(&recs))).unwrap();
            (r.to_json("demo"), r.to_csv())
        };
        let (j1, c1) = run(1);
        let (j4, c4) = run(4);
        assert_eq!(j1, j4, "JSON must not depend on worker count");
        assert_eq!(c1, c4, "CSV must not depend on worker count");
        assert!(j1.starts_with(&format!("{{\"schema\":\"{SWEEP_SCHEMA}\"")));
    }

    #[test]
    fn post_facto_cell_primes_twice() {
        use std::sync::atomic::AtomicUsize;
        let recs = records();
        let opens = AtomicUsize::new(0);
        let spec = SweepSpec {
            policies: vec![SweepPolicy::PostFacto],
            triggers: vec![128],
            sample_rates: vec![1],
            remote_latencies_ns: vec![1200],
            move_costs_us: vec![350],
            topologies: vec![TopologyPreset::Flat],
            filter: TraceFilter::All,
        };
        let report = run_sweep(&spec, 8, Ns::ZERO, 1, || {
            opens.fetch_add(1, Ordering::Relaxed);
            Ok(open_mem(&recs))
        })
        .unwrap();
        assert_eq!(opens.load(Ordering::Relaxed), 2, "prime + replay passes");
        assert_eq!(report.cells[0].report.label, "PF");
    }

    #[test]
    fn topology_axis_sweeps_and_drops_the_latency_axis() {
        let recs = records();
        let spec = SweepSpec {
            policies: vec![SweepPolicy::FirstTouch],
            triggers: vec![128],
            sample_rates: vec![1],
            remote_latencies_ns: vec![1200, 2400],
            move_costs_us: vec![350],
            topologies: vec![TopologyPreset::Flat, TopologyPreset::CxlTiered],
            filter: TraceFilter::All,
        };
        let report = run_sweep(&spec, 8, Ns::ZERO, 2, || Ok(open_mem(&recs))).unwrap();
        assert_eq!(report.cells.len(), 4);
        // Flat cells differ by latency (2 replays); the cxl-tiered cells
        // ignore the latency axis and collapse onto one replay.
        assert_eq!(report.unique_replays, 3);
        let cxl: Vec<&SweepCell> = report
            .cells
            .iter()
            .filter(|c| c.params.topology == TopologyPreset::CxlTiered)
            .collect();
        assert_eq!(
            cxl[0].report, cxl[1].report,
            "latency axis must not split cxl"
        );
        // The artifact carries the topology column.
        let json = report.to_json("demo");
        assert!(json.contains("\"topology\":\"cxl-tiered\""), "{json}");
        assert!(report
            .to_csv()
            .lines()
            .next()
            .unwrap()
            .contains(",topology,"));
    }

    #[test]
    fn profiled_sweep_matches_plain_and_counts_replays() {
        let recs = records();
        let spec = SweepSpec::default_grid();
        let plain = run_sweep(&spec, 8, Ns::ZERO, 2, || Ok(open_mem(&recs))).unwrap();
        for jobs in [1, 4] {
            let (report, prof) =
                run_sweep_profiled(&spec, 8, Ns::ZERO, jobs, || Ok(open_mem(&recs))).unwrap();
            assert_eq!(report, plain, "profiling never changes the sweep");
            // One Replay span per distinct replay, independent of the
            // worker count (the merge is commutative).
            assert_eq!(
                prof.entries(Phase::Replay),
                report.unique_replays as u64,
                "jobs={jobs}"
            );
            assert_eq!(prof.spans(Phase::Replay), report.unique_replays as u64);
            assert!(prof.histogram(Phase::Replay).count() > 0);
        }
    }

    #[test]
    fn resumable_sweep_journals_and_resumes_byte_identically() {
        let dir = std::env::temp_dir().join(format!("ccnuma-sweep-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let recs = records();
        // Dynamic + static policies so payloads cover both the
        // policy_stats object and the null branch.
        let spec = SweepSpec {
            policies: vec![SweepPolicy::FirstTouch, SweepPolicy::MigRep],
            triggers: vec![64, 128],
            sample_rates: vec![1],
            remote_latencies_ns: vec![1200],
            move_costs_us: vec![350],
            topologies: vec![TopologyPreset::Flat],
            filter: TraceFilter::All,
        };
        let opens = AtomicUsize::new(0);
        let open = || {
            opens.fetch_add(1, Ordering::Relaxed);
            Ok(open_mem(&recs))
        };

        let journal = CheckpointJournal::open(&dir).unwrap();
        let (fresh, resumed) =
            run_sweep_resumable(&spec, 8, Ns(777), 2, open, &journal, None).unwrap();
        assert_eq!(resumed, 0, "first run restores nothing");
        assert_eq!(fresh.unique_replays, 3, "FT + MigRep x 2 triggers");
        let opened_fresh = opens.load(Ordering::Relaxed);
        assert!(opened_fresh >= 3);

        // A new invocation over the same journal replays nothing and
        // renders the exact same bytes.
        let journal = CheckpointJournal::open(&dir).unwrap();
        let (resumed_report, resumed) =
            run_sweep_resumable(&spec, 8, Ns(777), 2, open, &journal, None).unwrap();
        assert_eq!(resumed, 3, "every distinct cell restored");
        assert_eq!(
            opens.load(Ordering::Relaxed),
            opened_fresh,
            "zero recomputation: the trace was never reopened"
        );
        assert_eq!(resumed_report, fresh);
        assert_eq!(resumed_report.to_json("demo"), fresh.to_json("demo"));
        assert_eq!(resumed_report.to_csv(), fresh.to_csv());

        // And it matches a plain, never-checkpointed sweep.
        let plain = run_sweep(&spec, 8, Ns(777), 2, || Ok(open_mem(&recs))).unwrap();
        assert_eq!(plain, fresh);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_journal_resumes_only_missing_cells() {
        let dir = std::env::temp_dir().join(format!("ccnuma-sweep-part-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let recs = records();
        let spec = SweepSpec::default_grid();
        // Journal only some cells, as if the first invocation was
        // killed partway.
        {
            let journal = CheckpointJournal::open(&dir).unwrap();
            let half = SweepSpec {
                policies: vec![SweepPolicy::MigrationOnly],
                ..spec.clone()
            };
            run_sweep_resumable(
                &half,
                8,
                Ns::ZERO,
                2,
                || Ok(open_mem(&recs)),
                &journal,
                None,
            )
            .unwrap();
        }
        let journal = CheckpointJournal::open(&dir).unwrap();
        let (report, resumed) = run_sweep_resumable(
            &spec,
            8,
            Ns::ZERO,
            2,
            || Ok(open_mem(&recs)),
            &journal,
            None,
        )
        .unwrap();
        assert_eq!(resumed, 4, "the four Migr cells came from the journal");
        assert_eq!(report.unique_replays, 12);
        let plain = run_sweep(&spec, 8, Ns::ZERO, 2, || Ok(open_mem(&recs))).unwrap();
        assert_eq!(report, plain);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_payload_roundtrips_exactly() {
        let recs = records();
        let spec = SweepSpec::default_grid();
        let report = run_sweep(&spec, 8, Ns(12345), 1, || Ok(open_mem(&recs))).unwrap();
        for cell in &report.cells {
            let payload = cell_payload(&cell.report, report.records);
            let v = JsonValue::parse(&payload).unwrap();
            let (back, n) = cell_from_payload(&v).unwrap();
            assert_eq!(back, cell.report);
            assert_eq!(n, report.records);
        }
        // Malformed payloads are rejected, not misread.
        assert!(cell_from_payload(&JsonValue::parse("{\"label\":\"FT\"}").unwrap()).is_none());
    }

    #[test]
    fn sweep_policy_labels_roundtrip() {
        for p in SweepPolicy::ALL {
            assert_eq!(SweepPolicy::parse(&p.to_string()), Some(p));
        }
        assert_eq!(SweepPolicy::parse("bogus"), None);
    }
}
