//! The chunked on-disk trace format, version 2.
//!
//! A v2 stream shares the v1 header shape — the `CCNT` magic followed by
//! a little-endian `u32` version — so one reader sniffs both. After the
//! header come self-contained chunks and a chunk-index footer:
//!
//! ```text
//! header := "CCNT" u32(version = 2)
//! chunk  := 0x01 u32(body_len) u64(fnv1a64 of body) body
//! footer := 0x00 u32(body_len) u64(fnv1a64 of body) body
//!           u32(body_len again) "CCNX"
//! ```
//!
//! A chunk body is `varint(record_count)` followed by delta-encoded
//! records; the delta baseline resets to zero at every chunk boundary,
//! so any chunk decodes on its own — that is what makes parallel decode
//! and tail salvage possible. Each record is four zigzag varints (time,
//! page, pid and processor deltas) plus the one-byte v1 flags, which for
//! the simulator's sorted, page-local traces comes to ~3–8 bytes
//! instead of v1's fixed 24.
//!
//! The footer body is `varint(chunk_count)`, then per chunk
//! `varint(file_offset) varint(record_count)`, then
//! `varint(total_records)`. The trailing length + `CCNX` magic let a
//! seekable reader find the index from the end of the file without
//! scanning.

use crate::varint;
use ccnuma_obs::{fnv1a64, Phase, Profiler, SpanProfiler};
use ccnuma_trace::io::{encode_flags, record_from_parts, ReadTraceError, TraceStream, MAGIC};
use ccnuma_trace::MissRecord;
use std::fmt;
use std::io::{self, Cursor, Read, Seek, SeekFrom, Write};

/// Format version written by [`TraceWriter`].
pub const VERSION_V2: u32 = 2;
/// Marker byte that opens every chunk.
pub const CHUNK_MARKER: u8 = 0x01;
/// Marker byte that opens the footer.
pub const FOOTER_MARKER: u8 = 0x00;
/// Magic that ends a complete v2 file.
pub const END_MAGIC: &[u8; 4] = b"CCNX";
/// Default records per chunk: bounds writer and reader memory to a few
/// hundred KB while keeping per-chunk overhead (13 bytes) negligible.
pub const DEFAULT_CHUNK_RECORDS: usize = 4096;

/// Everything that can go wrong reading or writing a stored trace.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `CCNT` magic.
    BadMagic([u8; 4]),
    /// A version this reader does not understand.
    BadVersion(u32),
    /// A chunk's FNV checksum does not match its body.
    ChecksumMismatch {
        /// Zero-based index of the failing chunk.
        chunk: usize,
    },
    /// A structural problem inside a chunk or the footer.
    Corrupt {
        /// Zero-based chunk index (chunk count for the footer).
        chunk: usize,
        /// What was malformed.
        what: &'static str,
    },
    /// A record carried reserved flag bits.
    BadFlags(u8),
    /// The file ended before a complete footer.
    MissingFooter,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "trace store I/O error: {e}"),
            StoreError::BadMagic(m) => write!(f, "not a trace file (magic {m:02x?})"),
            StoreError::BadVersion(v) => write!(f, "unsupported trace format version {v}"),
            StoreError::ChecksumMismatch { chunk } => {
                write!(f, "checksum mismatch in chunk {chunk}")
            }
            StoreError::Corrupt { chunk, what } => {
                write!(f, "corrupt trace file at chunk {chunk}: {what}")
            }
            StoreError::BadFlags(b) => write!(f, "record with reserved flag bits {b:#04x}"),
            StoreError::MissingFooter => write!(f, "trace file truncated before its footer"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<ReadTraceError> for StoreError {
    fn from(e: ReadTraceError) -> StoreError {
        match e {
            ReadTraceError::Io(e) => StoreError::Io(e),
            ReadTraceError::BadMagic => StoreError::BadMagic(*MAGIC),
            ReadTraceError::BadVersion(v) => StoreError::BadVersion(v),
            ReadTraceError::BadFlags(b) => StoreError::BadFlags(b),
        }
    }
}

/// One entry of the chunk-index footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Byte offset of the chunk's marker byte from the start of the file.
    pub offset: u64,
    /// Records stored in the chunk.
    pub records: u64,
}

/// The decoded chunk-index footer of a v2 file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkIndex {
    /// Per-chunk offsets and record counts, in file order.
    pub chunks: Vec<ChunkEntry>,
    /// Total records across all chunks.
    pub total_records: u64,
}

impl ChunkIndex {
    /// Reads the index from the end of a seekable v2 file without
    /// scanning the chunks.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingFooter`] when the trailer is absent or
    /// damaged, [`StoreError::Corrupt`]/[`StoreError::ChecksumMismatch`]
    /// when the footer body does not validate, or an I/O error.
    pub fn read_from<R: Read + Seek>(r: &mut R) -> Result<ChunkIndex, StoreError> {
        let file_len = r.seek(SeekFrom::End(0))?;
        // Trailer: u32 body_len + 4-byte end magic.
        if file_len < 8 {
            return Err(StoreError::MissingFooter);
        }
        r.seek(SeekFrom::End(-8))?;
        let mut trailer = [0u8; 8];
        r.read_exact(&mut trailer)?;
        if &trailer[4..] != END_MAGIC {
            return Err(StoreError::MissingFooter);
        }
        let body_len = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]) as u64;
        // marker(1) + len(4) + checksum(8) + body + trailer(8)
        let footer_total = 13 + body_len + 8;
        if file_len < footer_total {
            return Err(StoreError::MissingFooter);
        }
        r.seek(SeekFrom::Start(file_len - footer_total))?;
        let mut head = [0u8; 13];
        r.read_exact(&mut head)?;
        if head[0] != FOOTER_MARKER {
            return Err(StoreError::MissingFooter);
        }
        let len = u32::from_le_bytes([head[1], head[2], head[3], head[4]]) as u64;
        if len != body_len {
            return Err(StoreError::MissingFooter);
        }
        let checksum = u64::from_le_bytes(head[5..13].try_into().expect("8 bytes"));
        let mut body = vec![0u8; body_len as usize];
        r.read_exact(&mut body)?;
        decode_footer_body(&body, checksum)
    }
}

fn decode_footer_body(body: &[u8], checksum: u64) -> Result<ChunkIndex, StoreError> {
    if fnv1a64(body) != checksum {
        return Err(StoreError::Corrupt {
            chunk: usize::MAX,
            what: "footer checksum mismatch",
        });
    }
    let corrupt = |what| StoreError::Corrupt {
        chunk: usize::MAX,
        what,
    };
    let mut pos = 0;
    let count = varint::read_u64(body, &mut pos).ok_or(corrupt("footer chunk count"))?;
    if count > body.len() as u64 {
        // Each entry takes at least two bytes; a count beyond the body
        // length is garbage and must not drive an allocation.
        return Err(corrupt("footer chunk count out of range"));
    }
    let mut chunks = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let offset = varint::read_u64(body, &mut pos).ok_or(corrupt("footer chunk offset"))?;
        let records = varint::read_u64(body, &mut pos).ok_or(corrupt("footer record count"))?;
        chunks.push(ChunkEntry { offset, records });
    }
    let total_records = varint::read_u64(body, &mut pos).ok_or(corrupt("footer total"))?;
    if pos != body.len() {
        return Err(corrupt("trailing bytes in footer"));
    }
    if total_records != chunks.iter().map(|c| c.records).sum::<u64>() {
        return Err(corrupt("footer total disagrees with entries"));
    }
    Ok(ChunkIndex {
        chunks,
        total_records,
    })
}

/// Delta-encodes `records` into a chunk body (count prefix included).
fn encode_chunk_body(records: &[MissRecord]) -> Vec<u8> {
    // ~6 bytes/record is typical; over-reserving slightly avoids realloc.
    let mut body = Vec::with_capacity(8 + records.len() * 8);
    varint::write_u64(&mut body, records.len() as u64);
    let (mut pt, mut pp, mut ppid, mut pproc) = (0u64, 0u64, 0i64, 0i64);
    for r in records {
        varint::write_u64(&mut body, varint::zigzag(r.time.0.wrapping_sub(pt) as i64));
        varint::write_u64(&mut body, varint::zigzag(r.page.0.wrapping_sub(pp) as i64));
        varint::write_u64(&mut body, varint::zigzag(r.pid.0 as i64 - ppid));
        varint::write_u64(&mut body, varint::zigzag(r.proc.0 as i64 - pproc));
        body.push(encode_flags(r));
        pt = r.time.0;
        pp = r.page.0;
        ppid = r.pid.0 as i64;
        pproc = r.proc.0 as i64;
    }
    body
}

/// Decodes a chunk body back into records.
fn decode_chunk_body(body: &[u8], chunk: usize) -> Result<Vec<MissRecord>, StoreError> {
    let corrupt = |what| StoreError::Corrupt { chunk, what };
    let mut pos = 0;
    let count = varint::read_u64(body, &mut pos).ok_or(corrupt("record count"))?;
    // Each record needs at least 5 bytes, so a count past the body
    // length can never be satisfied; reject before allocating.
    if count > body.len() as u64 {
        return Err(corrupt("record count out of range"));
    }
    let mut records = Vec::with_capacity(count as usize);
    let (mut pt, mut pp, mut ppid, mut pproc) = (0u64, 0u64, 0i64, 0i64);
    for _ in 0..count {
        let dt = varint::read_u64(body, &mut pos).ok_or(corrupt("time delta"))?;
        let dp = varint::read_u64(body, &mut pos).ok_or(corrupt("page delta"))?;
        let dpid = varint::read_u64(body, &mut pos).ok_or(corrupt("pid delta"))?;
        let dproc = varint::read_u64(body, &mut pos).ok_or(corrupt("proc delta"))?;
        let flags = *body.get(pos).ok_or(corrupt("flags byte"))?;
        pos += 1;
        let time = pt.wrapping_add(varint::unzigzag(dt) as u64);
        let page = pp.wrapping_add(varint::unzigzag(dp) as u64);
        let pid = ppid + varint::unzigzag(dpid);
        let proc = pproc + varint::unzigzag(dproc);
        let pid = u32::try_from(pid).map_err(|_| corrupt("pid out of range"))?;
        let proc = u16::try_from(proc).map_err(|_| corrupt("proc out of range"))?;
        records.push(record_from_parts(time, page, pid, proc, flags)?);
        pt = time;
        pp = page;
        ppid = pid as i64;
        pproc = proc as i64;
    }
    if pos != body.len() {
        return Err(corrupt("trailing bytes in chunk"));
    }
    Ok(records)
}

/// Summary returned by [`TraceWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSummary {
    /// Records written.
    pub records: u64,
    /// Chunks written.
    pub chunks: usize,
    /// Total bytes of the finished file, header to end magic.
    pub bytes: u64,
}

/// Bounded-memory streaming writer for format v2.
///
/// Push records one at a time; the writer buffers at most one chunk
/// (default [`DEFAULT_CHUNK_RECORDS`] records) before flushing it with
/// its checksum, and [`finish`](TraceWriter::finish) appends the
/// chunk-index footer.
///
/// # Examples
///
/// ```
/// use ccnuma_tracestore::{TraceReader, TraceWriter};
/// use ccnuma_trace::MissRecord;
/// use ccnuma_types::{Ns, Pid, ProcId, VirtPage};
///
/// # fn main() -> Result<(), ccnuma_tracestore::StoreError> {
/// let mut buf = Vec::new();
/// let mut w = TraceWriter::new(&mut buf)?;
/// for i in 0..100u64 {
///     w.push(&MissRecord::user_data_read(Ns(i * 500), ProcId(0), Pid(0), VirtPage(i / 8)))?;
/// }
/// let summary = w.finish()?;
/// assert_eq!(summary.records, 100);
/// let back: Result<Vec<_>, _> = TraceReader::new(buf.as_slice())?.collect();
/// assert_eq!(back?.len(), 100);
/// # Ok(())
/// # }
/// ```
pub struct TraceWriter<W: Write> {
    w: W,
    written: u64,
    buf: Vec<MissRecord>,
    chunk_records: usize,
    index: Vec<ChunkEntry>,
    total: u64,
    /// When attached, each chunk encode is timed as a
    /// [`Phase::TraceEncode`] span.
    prof: Option<SpanProfiler>,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a v2 stream on `w` with the default chunk size.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(w: W) -> Result<TraceWriter<W>, StoreError> {
        TraceWriter::with_chunk_records(w, DEFAULT_CHUNK_RECORDS)
    }

    /// Starts a v2 stream flushing every `chunk_records` records.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_records` is zero.
    pub fn with_chunk_records(
        mut w: W,
        chunk_records: usize,
    ) -> Result<TraceWriter<W>, StoreError> {
        assert!(chunk_records > 0, "chunks must hold at least one record");
        w.write_all(MAGIC)?;
        w.write_all(&VERSION_V2.to_le_bytes())?;
        Ok(TraceWriter {
            w,
            written: 8,
            buf: Vec::with_capacity(chunk_records),
            chunk_records,
            index: Vec::new(),
            total: 0,
            prof: None,
        })
    }

    /// Attaches a host-time profiler: every chunk encode (delta
    /// encoding, checksum, write) becomes one [`Phase::TraceEncode`]
    /// span, recovered via [`TraceWriter::finish_with_profile`]. Purely
    /// observational — the bytes written are identical either way.
    #[must_use]
    pub fn with_profiling(mut self) -> TraceWriter<W> {
        self.prof = Some(SpanProfiler::new());
        self
    }

    /// Appends one record, flushing a chunk when the buffer fills.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from a chunk flush.
    pub fn push(&mut self, rec: &MissRecord) -> Result<(), StoreError> {
        self.buf.push(*rec);
        self.total += 1;
        if self.buf.len() >= self.chunk_records {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), StoreError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let span = self.prof.as_mut().and_then(|p| p.enter(Phase::TraceEncode));
        let body = encode_chunk_body(&self.buf);
        self.index.push(ChunkEntry {
            offset: self.written,
            records: self.buf.len() as u64,
        });
        self.w.write_all(&[CHUNK_MARKER])?;
        self.w.write_all(&(body.len() as u32).to_le_bytes())?;
        self.w.write_all(&fnv1a64(&body).to_le_bytes())?;
        self.w.write_all(&body)?;
        self.written += 13 + body.len() as u64;
        self.buf.clear();
        if let Some(p) = self.prof.as_mut() {
            p.exit(Phase::TraceEncode, span);
        }
        Ok(())
    }

    /// Flushes the last chunk, writes the footer, and returns totals.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the final writes.
    pub fn finish(self) -> Result<WriteSummary, StoreError> {
        self.finish_with_profile().map(|(summary, _)| summary)
    }

    /// [`TraceWriter::finish`] that also hands back the profiler
    /// attached with [`TraceWriter::with_profiling`] (`None` when
    /// profiling was never enabled).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the final writes.
    pub fn finish_with_profile(
        mut self,
    ) -> Result<(WriteSummary, Option<SpanProfiler>), StoreError> {
        self.flush_chunk()?;
        let mut body = Vec::new();
        varint::write_u64(&mut body, self.index.len() as u64);
        for entry in &self.index {
            varint::write_u64(&mut body, entry.offset);
            varint::write_u64(&mut body, entry.records);
        }
        varint::write_u64(&mut body, self.total);
        self.w.write_all(&[FOOTER_MARKER])?;
        let len = (body.len() as u32).to_le_bytes();
        self.w.write_all(&len)?;
        self.w.write_all(&fnv1a64(&body).to_le_bytes())?;
        self.w.write_all(&body)?;
        self.w.write_all(&len)?;
        self.w.write_all(END_MAGIC)?;
        self.w.flush()?;
        Ok((
            WriteSummary {
                records: self.total,
                chunks: self.index.len(),
                bytes: self.written + 13 + body.len() as u64 + 8,
            },
            self.prof.take(),
        ))
    }
}

/// What a salvaging reader recovered from a damaged file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SalvageInfo {
    /// Complete chunks recovered before the damage.
    pub chunks_kept: usize,
    /// Records in those chunks.
    pub records_kept: u64,
    /// Why the scan stopped.
    pub reason: SalvageReason,
}

/// Why a salvage scan stopped accepting chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SalvageReason {
    /// The file ended mid-chunk (e.g. an interrupted capture).
    TruncatedChunk,
    /// A chunk's checksum or structure did not validate.
    DamagedChunk,
    /// All chunks were fine but the footer was missing or damaged.
    MissingFooter,
}

enum ReaderKind<R: Read> {
    V1 {
        stream: TraceStream<io::Chain<Cursor<[u8; 8]>, R>>,
        done: u64,
    },
    V2(V2State<R>),
}

struct V2State<R: Read> {
    reader: R,
    current: std::vec::IntoIter<MissRecord>,
    chunks_done: usize,
    records_done: u64,
    footer_seen: bool,
    salvage: bool,
    salvaged: Option<SalvageInfo>,
    finished: bool,
    /// When attached, each chunk decode is timed as a
    /// [`Phase::TraceDecode`] span. Boxed: the profiler's per-phase
    /// aggregates are several KB and would dominate the reader's size.
    prof: Option<Box<SpanProfiler>>,
}

/// Streaming reader for stored traces: decodes v2 chunk by chunk with
/// bounded memory, and falls back to the flat v1 stream for old files.
///
/// Iterate it (`Iterator<Item = Result<MissRecord, StoreError>>`); after
/// a salvaging read finishes, [`salvaged`](TraceReader::salvaged)
/// reports what was dropped.
///
/// # Examples
///
/// Reading a v1 stream transparently:
///
/// ```
/// use ccnuma_trace::{io::write_trace, MissRecord, Trace};
/// use ccnuma_tracestore::TraceReader;
/// use ccnuma_types::{Ns, Pid, ProcId, VirtPage};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace: Trace = [MissRecord::user_data_read(Ns(1), ProcId(0), Pid(0), VirtPage(2))]
///     .into_iter()
///     .collect();
/// let mut v1 = Vec::new();
/// write_trace(&mut v1, &trace)?;
/// let records: Result<Vec<_>, _> = TraceReader::new(v1.as_slice())?.collect();
/// assert_eq!(records?, trace.as_slice());
/// # Ok(())
/// # }
/// ```
pub struct TraceReader<R: Read> {
    kind: ReaderKind<R>,
}

impl<R: Read> TraceReader<R> {
    /// Opens a stored trace, sniffing the version from the header.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`] / [`StoreError::BadVersion`] for foreign
    /// input, or an I/O error reading the header.
    pub fn new(reader: R) -> Result<TraceReader<R>, StoreError> {
        TraceReader::open(reader, false)
    }

    /// Like [`new`](TraceReader::new), but a damaged or truncated v2
    /// tail ends the stream cleanly (recording [`SalvageInfo`]) instead
    /// of yielding an error. Header problems still fail: there is
    /// nothing to salvage from a file of the wrong format.
    ///
    /// # Errors
    ///
    /// Same header errors as [`new`](TraceReader::new).
    pub fn with_salvage(reader: R) -> Result<TraceReader<R>, StoreError> {
        TraceReader::open(reader, true)
    }

    fn open(mut reader: R, salvage: bool) -> Result<TraceReader<R>, StoreError> {
        let mut header = [0u8; 8];
        reader.read_exact(&mut header)?;
        let magic: [u8; 4] = header[..4].try_into().expect("4 bytes");
        if &magic != MAGIC {
            return Err(StoreError::BadMagic(magic));
        }
        let version = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        let kind = match version {
            1 => {
                // Hand the already-consumed header back to the v1 parser.
                let chained = Cursor::new(header).chain(reader);
                ReaderKind::V1 {
                    stream: TraceStream::new(chained)?,
                    done: 0,
                }
            }
            VERSION_V2 => ReaderKind::V2(V2State {
                reader,
                current: Vec::new().into_iter(),
                chunks_done: 0,
                records_done: 0,
                footer_seen: false,
                salvage,
                salvaged: None,
                finished: false,
                prof: None,
            }),
            v => return Err(StoreError::BadVersion(v)),
        };
        Ok(TraceReader { kind })
    }

    /// Attaches a host-time profiler: every v2 chunk decode (read,
    /// checksum, delta decoding) becomes one [`Phase::TraceDecode`]
    /// span, recovered via [`TraceReader::take_profile`]. A v1 stream
    /// has no chunk structure, so profiling is a no-op there.
    #[must_use]
    pub fn with_profiling(mut self) -> TraceReader<R> {
        if let ReaderKind::V2(s) = &mut self.kind {
            s.prof = Some(Box::new(SpanProfiler::new()));
        }
        self
    }

    /// Takes the profiler attached with
    /// [`TraceReader::with_profiling`], if any (typically after
    /// iteration ends).
    pub fn take_profile(&mut self) -> Option<SpanProfiler> {
        match &mut self.kind {
            ReaderKind::V1 { .. } => None,
            ReaderKind::V2(s) => s.prof.take().map(|p| *p),
        }
    }

    /// After iteration: what a salvaging read had to drop, if anything.
    /// Always `None` for v1 streams — they carry no chunk structure to
    /// salvage.
    pub fn salvaged(&self) -> Option<SalvageInfo> {
        match &self.kind {
            ReaderKind::V1 { .. } => None,
            ReaderKind::V2(s) => s.salvaged,
        }
    }

    /// Records yielded so far.
    pub fn records_read(&self) -> u64 {
        match &self.kind {
            ReaderKind::V1 { done, .. } => *done,
            ReaderKind::V2(s) => s.records_done,
        }
    }
}

impl<R: Read> V2State<R> {
    /// Loads the next chunk into `current`. Returns `Ok(false)` at a
    /// clean end of stream (footer validated, or salvage stop).
    fn refill(&mut self) -> Result<bool, StoreError> {
        loop {
            let mut marker = [0u8; 1];
            match self.reader.read_exact(&mut marker) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                    return self.stop(SalvageReason::MissingFooter, StoreError::MissingFooter);
                }
                Err(e) => return self.stop(SalvageReason::TruncatedChunk, e.into()),
            }
            match marker[0] {
                CHUNK_MARKER => {
                    // One TraceDecode span per chunk; error paths drop
                    // the token (the entry stays counted, the span does
                    // not — a damaged read is not a representative
                    // decode timing).
                    let span = self.prof.as_mut().and_then(|p| p.enter(Phase::TraceDecode));
                    let mut head = [0u8; 12];
                    if let Err(e) = self.reader.read_exact(&mut head) {
                        return self.stop_io(e);
                    }
                    let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes"));
                    let checksum = u64::from_le_bytes(head[4..].try_into().expect("8 bytes"));
                    let mut body = vec![0u8; len as usize];
                    if let Err(e) = self.reader.read_exact(&mut body) {
                        return self.stop_io(e);
                    }
                    if fnv1a64(&body) != checksum {
                        return self.stop(
                            SalvageReason::DamagedChunk,
                            StoreError::ChecksumMismatch {
                                chunk: self.chunks_done,
                            },
                        );
                    }
                    let records = match decode_chunk_body(&body, self.chunks_done) {
                        Ok(r) => r,
                        Err(e) => return self.stop(SalvageReason::DamagedChunk, e),
                    };
                    self.chunks_done += 1;
                    if let Some(p) = self.prof.as_mut() {
                        p.exit(Phase::TraceDecode, span);
                    }
                    if records.is_empty() {
                        continue;
                    }
                    self.current = records.into_iter();
                    return Ok(true);
                }
                FOOTER_MARKER => {
                    let mut head = [0u8; 12];
                    if let Err(e) = self.reader.read_exact(&mut head) {
                        return self.stop_io(e);
                    }
                    let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes"));
                    let checksum = u64::from_le_bytes(head[4..].try_into().expect("8 bytes"));
                    let mut body = vec![0u8; len as usize];
                    if let Err(e) = self.reader.read_exact(&mut body) {
                        return self.stop_io(e);
                    }
                    let index = match decode_footer_body(&body, checksum) {
                        Ok(i) => i,
                        Err(e) => return self.stop(SalvageReason::MissingFooter, e),
                    };
                    if index.chunks.len() != self.chunks_done
                        || index.total_records != self.records_done
                    {
                        return self.stop(
                            SalvageReason::MissingFooter,
                            StoreError::Corrupt {
                                chunk: self.chunks_done,
                                what: "footer disagrees with chunks read",
                            },
                        );
                    }
                    self.footer_seen = true;
                    return Ok(false);
                }
                _ => {
                    return self.stop(
                        SalvageReason::DamagedChunk,
                        StoreError::Corrupt {
                            chunk: self.chunks_done,
                            what: "unknown marker byte",
                        },
                    );
                }
            }
        }
    }

    fn stop_io(&mut self, e: io::Error) -> Result<bool, StoreError> {
        let reason = if e.kind() == io::ErrorKind::UnexpectedEof {
            SalvageReason::TruncatedChunk
        } else {
            SalvageReason::DamagedChunk
        };
        self.stop(reason, e.into())
    }

    /// In salvage mode, record the reason and end cleanly; otherwise
    /// surface the error.
    fn stop(&mut self, reason: SalvageReason, err: StoreError) -> Result<bool, StoreError> {
        self.finished = true;
        if self.salvage {
            self.salvaged = Some(SalvageInfo {
                chunks_kept: self.chunks_done,
                records_kept: self.records_done,
                reason,
            });
            Ok(false)
        } else {
            Err(err)
        }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<MissRecord, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.kind {
            ReaderKind::V1 { stream, done } => {
                let item = stream.next()?;
                if item.is_ok() {
                    *done += 1;
                }
                Some(item.map_err(StoreError::from))
            }
            ReaderKind::V2(s) => {
                if let Some(rec) = s.current.next() {
                    s.records_done += 1;
                    return Some(Ok(rec));
                }
                if s.finished || s.footer_seen {
                    return None;
                }
                match s.refill() {
                    Ok(true) => {
                        let rec = s.current.next().expect("refilled chunk is non-empty");
                        s.records_done += 1;
                        Some(Ok(rec))
                    }
                    Ok(false) => None,
                    Err(e) => {
                        s.finished = true;
                        Some(Err(e))
                    }
                }
            }
        }
    }
}

/// Decodes the chunk at `entry` from a seekable reader — the unit of
/// parallel decode.
///
/// # Errors
///
/// Checksum, structure, or I/O errors for that chunk.
pub fn read_chunk_at<R: Read + Seek>(
    r: &mut R,
    chunk_no: usize,
    entry: ChunkEntry,
) -> Result<Vec<MissRecord>, StoreError> {
    r.seek(SeekFrom::Start(entry.offset))?;
    let mut head = [0u8; 13];
    r.read_exact(&mut head)?;
    if head[0] != CHUNK_MARKER {
        return Err(StoreError::Corrupt {
            chunk: chunk_no,
            what: "index points at a non-chunk",
        });
    }
    let len = u32::from_le_bytes(head[1..5].try_into().expect("4 bytes"));
    let checksum = u64::from_le_bytes(head[5..].try_into().expect("8 bytes"));
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    if fnv1a64(&body) != checksum {
        return Err(StoreError::ChecksumMismatch { chunk: chunk_no });
    }
    let records = decode_chunk_body(&body, chunk_no)?;
    if records.len() as u64 != entry.records {
        return Err(StoreError::Corrupt {
            chunk: chunk_no,
            what: "chunk record count disagrees with index",
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_trace::{Trace, TraceBuilder};
    use ccnuma_types::{Ns, Pid, ProcId, VirtPage};

    fn sample(n: u64) -> Trace {
        let mut b = TraceBuilder::new();
        for i in 0..n {
            b.push(MissRecord::user_data_read(
                Ns(i * 500),
                ProcId((i % 8) as u16),
                Pid((i % 3) as u32),
                VirtPage(100 + i / 16),
            ));
        }
        b.finish()
    }

    fn encode(trace: &Trace, chunk_records: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = TraceWriter::with_chunk_records(&mut buf, chunk_records).unwrap();
        for r in trace.iter() {
            w.push(r).unwrap();
        }
        w.finish().unwrap();
        buf
    }

    #[test]
    fn roundtrip_across_chunk_boundaries() {
        let t = sample(1000);
        let buf = encode(&t, 64);
        let back: Result<Vec<_>, _> = TraceReader::new(buf.as_slice()).unwrap().collect();
        assert_eq!(back.unwrap(), t.as_slice());
    }

    #[test]
    fn v2_is_much_smaller_than_v1() {
        let t = sample(4000);
        let mut v1 = Vec::new();
        ccnuma_trace::io::write_trace(&mut v1, &t).unwrap();
        let v2 = encode(&t, DEFAULT_CHUNK_RECORDS);
        assert!(
            v2.len() * 2 <= v1.len(),
            "v2 {} bytes vs v1 {} bytes",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn empty_trace_roundtrips() {
        let buf = encode(&Trace::new(), 16);
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        assert!(r.next().is_none());
        assert!(r.salvaged().is_none());
    }

    #[test]
    fn index_reads_from_the_end_and_seeks_chunks() {
        let t = sample(300);
        let buf = encode(&t, 100);
        let mut cur = Cursor::new(&buf);
        let index = ChunkIndex::read_from(&mut cur).unwrap();
        assert_eq!(index.chunks.len(), 3);
        assert_eq!(index.total_records, 300);
        // Decode the middle chunk alone.
        let mid = read_chunk_at(&mut cur, 1, index.chunks[1]).unwrap();
        assert_eq!(mid, &t.as_slice()[100..200]);
    }

    #[test]
    fn truncated_tail_errors_strictly_and_salvages_leniently() {
        let t = sample(300);
        let full = encode(&t, 100);
        // Cut into the middle of the last chunk (before the footer).
        let mut cur = Cursor::new(&full);
        let index = ChunkIndex::read_from(&mut cur).unwrap();
        let cut = (index.chunks[2].offset + 20) as usize;
        let buf = &full[..cut];

        let strict: Result<Vec<_>, _> = TraceReader::new(buf).unwrap().collect();
        assert!(strict.is_err(), "strict read must surface truncation");

        let mut lenient = TraceReader::with_salvage(buf).unwrap();
        let recovered: Result<Vec<_>, _> = (&mut lenient).collect();
        assert_eq!(recovered.unwrap(), &t.as_slice()[..200]);
        let info = lenient.salvaged().unwrap();
        assert_eq!(info.chunks_kept, 2);
        assert_eq!(info.records_kept, 200);
        assert_eq!(info.reason, SalvageReason::TruncatedChunk);
    }

    #[test]
    fn bit_flip_in_a_chunk_is_a_checksum_error() {
        let t = sample(300);
        let mut buf = encode(&t, 100);
        let mut cur = Cursor::new(&buf);
        let index = ChunkIndex::read_from(&mut cur).unwrap();
        // Flip a byte inside the second chunk's body.
        let victim = (index.chunks[1].offset + 15) as usize;
        buf[victim] ^= 0x40;
        let res: Result<Vec<_>, _> = TraceReader::new(buf.as_slice()).unwrap().collect();
        match res {
            Err(StoreError::ChecksumMismatch { chunk: 1 }) => {}
            other => panic!("expected checksum mismatch in chunk 1, got {other:?}"),
        }
        // Salvage keeps the first chunk.
        let mut lenient = TraceReader::with_salvage(buf.as_slice()).unwrap();
        let recovered: Result<Vec<_>, _> = (&mut lenient).collect();
        assert_eq!(recovered.unwrap().len(), 100);
        assert_eq!(
            lenient.salvaged().unwrap().reason,
            SalvageReason::DamagedChunk
        );
    }

    #[test]
    fn missing_footer_is_detected() {
        let t = sample(50);
        let full = encode(&t, 100);
        // Drop the whole footer (marker through end magic).
        let mut cur = Cursor::new(&full);
        let index = ChunkIndex::read_from(&mut cur).unwrap();
        let footer_start = (index.chunks[0].offset + 13) as usize + {
            // chunk body length
            u32::from_le_bytes(
                full[(index.chunks[0].offset + 1) as usize..][..4]
                    .try_into()
                    .unwrap(),
            ) as usize
        };
        let buf = &full[..footer_start];
        let strict: Result<Vec<_>, _> = TraceReader::new(buf).unwrap().collect();
        assert!(matches!(strict, Err(StoreError::MissingFooter)));
        let mut lenient = TraceReader::with_salvage(buf).unwrap();
        let recovered: Result<Vec<_>, _> = (&mut lenient).collect();
        assert_eq!(recovered.unwrap().len(), 50, "all chunks were intact");
        assert_eq!(
            lenient.salvaged().unwrap().reason,
            SalvageReason::MissingFooter
        );
    }

    #[test]
    fn foreign_bytes_are_bad_magic() {
        let res = TraceReader::new(&b"not a trace file"[..]);
        assert!(matches!(res, Err(StoreError::BadMagic(_))));
        let res = TraceReader::new(&b"CCNT\x09\x00\x00\x00"[..]);
        assert!(matches!(res, Err(StoreError::BadVersion(9))));
    }

    #[test]
    fn profiled_codec_counts_chunks_and_keeps_bytes_identical() {
        let t = sample(1000);
        let plain = encode(&t, 64);

        let mut buf = Vec::new();
        let mut w = TraceWriter::with_chunk_records(&mut buf, 64)
            .unwrap()
            .with_profiling();
        for r in t.iter() {
            w.push(r).unwrap();
        }
        let (summary, prof) = w.finish_with_profile().unwrap();
        let prof = prof.expect("profiling was enabled");
        assert_eq!(buf, plain, "profiling never changes the bytes");
        assert_eq!(summary.chunks, 16, "1000 records / 64 per chunk");
        assert_eq!(prof.entries(Phase::TraceEncode), 16);
        assert_eq!(prof.spans(Phase::TraceEncode), 16);

        let mut r = TraceReader::new(buf.as_slice()).unwrap().with_profiling();
        let back: Result<Vec<_>, _> = (&mut r).collect();
        assert_eq!(back.unwrap(), t.as_slice());
        let rprof = r.take_profile().expect("profiling was enabled");
        assert_eq!(rprof.entries(Phase::TraceDecode), 16);
        assert_eq!(rprof.spans(Phase::TraceDecode), 16);
        assert!(r.take_profile().is_none(), "profile is taken once");
    }

    #[test]
    fn unprofiled_codec_reports_no_profile() {
        let t = sample(10);
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        for r in t.iter() {
            w.push(r).unwrap();
        }
        let (_, prof) = w.finish_with_profile().unwrap();
        assert!(prof.is_none());
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        assert!(r.take_profile().is_none());
    }

    #[test]
    fn v1_streams_read_transparently() {
        let t = sample(120);
        let mut v1 = Vec::new();
        ccnuma_trace::io::write_trace(&mut v1, &t).unwrap();
        let back: Result<Vec<_>, _> = TraceReader::new(v1.as_slice()).unwrap().collect();
        assert_eq!(back.unwrap(), t.as_slice());
    }
}
