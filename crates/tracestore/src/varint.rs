//! LEB128 varints and zigzag signed mapping — the primitive codec under
//! the v2 chunk format.
//!
//! Timestamps in a trace are monotone and pages exhibit locality, so
//! successive records differ by small amounts; zigzag folds those small
//! signed deltas onto small unsigned values and LEB128 stores them in
//! one or two bytes instead of eight.

/// Appends `v` to `out` as an LEB128 varint (1–10 bytes).
///
/// # Examples
///
/// ```
/// use ccnuma_tracestore::varint::write_u64;
///
/// let mut buf = Vec::new();
/// write_u64(&mut buf, 0);
/// write_u64(&mut buf, 300);
/// assert_eq!(buf, [0x00, 0xac, 0x02]);
/// ```
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `bytes` at `*pos`, advancing `*pos`.
/// Returns `None` on buffer overrun or a malformed encoding (more than
/// ten bytes, or bits beyond the 64th).
///
/// # Examples
///
/// ```
/// use ccnuma_tracestore::varint::{read_u64, write_u64};
///
/// let mut buf = Vec::new();
/// write_u64(&mut buf, u64::MAX);
/// let mut pos = 0;
/// assert_eq!(read_u64(&buf, &mut pos), Some(u64::MAX));
/// assert_eq!(pos, 10);
/// assert_eq!(read_u64(&buf, &mut pos), None, "overrun");
/// ```
pub fn read_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        let low = (byte & 0x7f) as u64;
        // The tenth byte carries the top single bit; anything above it
        // would overflow u64.
        if shift == 63 && low > 1 {
            return None;
        }
        v |= low << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

/// Maps a signed value onto an unsigned one with small magnitudes first:
/// 0, -1, 1, -2, 2, ...
///
/// # Examples
///
/// ```
/// use ccnuma_tracestore::varint::zigzag;
///
/// assert_eq!(zigzag(0), 0);
/// assert_eq!(zigzag(-1), 1);
/// assert_eq!(zigzag(1), 2);
/// ```
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
///
/// # Examples
///
/// ```
/// use ccnuma_tracestore::varint::{unzigzag, zigzag};
///
/// for v in [0i64, 1, -1, i64::MAX, i64::MIN] {
///     assert_eq!(unzigzag(zigzag(v)), v);
/// }
/// ```
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_boundary_values() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len(), "no trailing bytes for {v}");
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        for v in 0u64..128 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn rejects_overlong_encoding() {
        // 11 continuation bytes never terminate within the 10-byte cap.
        let bytes = [0xffu8; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&bytes, &mut pos), None);
        // A tenth byte with payload beyond bit 64 is also malformed.
        let mut overflow = vec![0x80u8; 9];
        overflow.push(0x02);
        pos = 0;
        assert_eq!(read_u64(&overflow, &mut pos), None);
    }

    #[test]
    fn truncated_input_is_none_not_panic() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1u64 << 40);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(read_u64(&buf[..cut], &mut pos), None);
        }
    }
}
