//! Store-wide verification (`fsck`), quarantine/salvage repair, and
//! byte-budget garbage collection for a [`TraceStore`].
//!
//! A trace store accretes entries across many invocations, and the
//! paper pipeline trusts it blindly on the capture-once fast path — a
//! flipped bit or a truncated tail would otherwise surface as a wrong
//! replay deep inside an experiment. [`fsck`] walks every entry with
//! the strict reader, classifies the damage, and (with repair enabled)
//! moves damaged files into a `quarantine/` subdirectory, salvaging
//! every complete chunk through the format's existing
//! truncation-salvage path first. [`gc`] evicts least-recently-used
//! entries until the store fits a byte budget; [`TraceStore::load`]
//! freshens mtimes, so "recently used" means used, not just captured.

use crate::format::{SalvageReason, StoreError, TraceReader};
use crate::store::{TraceMeta, TraceStore};
use ccnuma_faults::io::Storage;
use ccnuma_trace::MissRecord;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Subdirectory of the store that repair moves damaged files into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// The verdict on one store entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryStatus {
    /// Strict read succeeded and the record count matches the sidecar.
    Clean {
        /// Records in the trace.
        records: u64,
    },
    /// The tail is damaged but complete chunks are recoverable through
    /// the salvage path.
    Salvageable {
        /// Records recoverable from intact chunks.
        records_kept: u64,
        /// Records the sidecar claims.
        records_expected: u64,
        /// What stopped the scan.
        reason: SalvageReason,
    },
    /// Nothing recoverable: bad header, or no intact leading chunk.
    Unreadable {
        /// The strict reader's error rendering.
        detail: String,
    },
    /// The meta sidecar is missing a field, malformed, or of an
    /// unknown schema.
    CorruptMeta {
        /// The parse error rendering.
        detail: String,
    },
    /// The trace reads cleanly but its record count disagrees with the
    /// sidecar — one of the two is lying.
    MetaMismatch {
        /// Records actually in the trace.
        records: u64,
        /// Records the sidecar claims.
        records_expected: u64,
    },
}

impl EntryStatus {
    /// True for the one status that needs no attention.
    pub fn is_clean(&self) -> bool {
        matches!(self, EntryStatus::Clean { .. })
    }
}

/// One entry's fsck result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckEntry {
    /// The entry's slug.
    pub slug: String,
    /// What the verifier found.
    pub status: EntryStatus,
}

/// What one repair action did to an entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairAction {
    /// Both files moved to `quarantine/`; nothing was recoverable.
    Quarantined,
    /// Damaged original quarantined and the salvageable records
    /// rewritten as a fresh entry (sidecar updated to the kept count).
    Salvaged {
        /// Records in the rewritten entry.
        records_kept: u64,
    },
    /// Sidecar rewritten to match the (clean) trace's record count.
    MetaRewritten,
}

/// The result of an [`fsck`] walk.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Every entry examined, sorted by slug.
    pub entries: Vec<FsckEntry>,
    /// Files that are not part of a complete entry: traces without a
    /// sidecar, sidecars without a trace, stale `*.tmp` leftovers.
    /// Sorted.
    pub orphans: Vec<String>,
    /// Repairs performed (empty unless repair was requested), in slug
    /// order.
    pub repaired: Vec<(String, RepairAction)>,
}

impl FsckReport {
    /// True when every entry is clean and nothing is orphaned.
    pub fn is_clean(&self) -> bool {
        self.orphans.is_empty() && self.entries.iter().all(|e| e.status.is_clean())
    }

    /// Entries that are not clean.
    pub fn damaged(&self) -> impl Iterator<Item = &FsckEntry> {
        self.entries.iter().filter(|e| !e.status.is_clean())
    }

    /// Renders the deterministic human-readable summary the
    /// `repro trace fsck` subcommand prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            match &e.status {
                EntryStatus::Clean { records } => {
                    let _ = writeln!(out, "ok        {} ({records} records)", e.slug);
                }
                EntryStatus::Salvageable {
                    records_kept,
                    records_expected,
                    reason,
                } => {
                    let _ = writeln!(
                        out,
                        "damaged   {} ({records_kept}/{records_expected} records salvageable, {reason:?})",
                        e.slug
                    );
                }
                EntryStatus::Unreadable { detail } => {
                    let _ = writeln!(out, "unreadable {} ({detail})", e.slug);
                }
                EntryStatus::CorruptMeta { detail } => {
                    let _ = writeln!(out, "bad-meta  {} ({detail})", e.slug);
                }
                EntryStatus::MetaMismatch {
                    records,
                    records_expected,
                } => {
                    let _ = writeln!(
                        out,
                        "mismatch  {} (trace has {records}, sidecar claims {records_expected})",
                        e.slug
                    );
                }
            }
        }
        for o in &self.orphans {
            let _ = writeln!(out, "orphan    {o}");
        }
        for (slug, action) in &self.repaired {
            let what = match action {
                RepairAction::Quarantined => "quarantined".to_string(),
                RepairAction::Salvaged { records_kept } => {
                    format!("salvaged {records_kept} records, original quarantined")
                }
                RepairAction::MetaRewritten => "sidecar rewritten".to_string(),
            };
            let _ = writeln!(out, "repaired  {slug}: {what}");
        }
        let damaged = self.damaged().count();
        let _ = writeln!(
            out,
            "{} entries: {} clean, {} damaged, {} orphaned file(s)",
            self.entries.len(),
            self.entries.len() - damaged,
            damaged,
            self.orphans.len()
        );
        out
    }
}

/// Classifies one trace file by strict read, falling back to a salvage
/// scan to measure what is recoverable.
fn verify_entry<S: Storage>(
    store: &TraceStore<S>,
    slug: &str,
    meta: &TraceMeta,
) -> Result<EntryStatus, StoreError> {
    let bytes = store.storage().read(&store.trace_path(slug))?;
    let strict = TraceReader::new(&bytes[..]).and_then(|r| {
        let mut n = 0u64;
        for rec in r {
            rec?;
            n += 1;
        }
        Ok(n)
    });
    match strict {
        Ok(records) if records == meta.records => Ok(EntryStatus::Clean { records }),
        Ok(records) => Ok(EntryStatus::MetaMismatch {
            records,
            records_expected: meta.records,
        }),
        Err(e) => {
            // Damaged: measure what the salvage path would keep.
            let mut lenient = match TraceReader::with_salvage(&bytes[..]) {
                Ok(r) => r,
                Err(_) => {
                    return Ok(EntryStatus::Unreadable {
                        detail: e.to_string(),
                    })
                }
            };
            let mut kept = 0u64;
            for rec in &mut lenient {
                if rec.is_err() {
                    break;
                }
                kept += 1;
            }
            if kept == 0 {
                Ok(EntryStatus::Unreadable {
                    detail: e.to_string(),
                })
            } else {
                let reason = lenient
                    .salvaged()
                    .map_or(SalvageReason::DamagedChunk, |s| s.reason);
                Ok(EntryStatus::Salvageable {
                    records_kept: kept,
                    records_expected: meta.records,
                    reason,
                })
            }
        }
    }
}

/// Moves `path` into the store's quarantine directory (best-effort
/// create), preserving the file name.
fn quarantine<S: Storage>(store: &TraceStore<S>, path: &Path) -> Result<(), StoreError> {
    let qdir = store.dir().join(QUARANTINE_DIR);
    store.storage().create_dir_all(&qdir)?;
    let name = path.file_name().expect("store paths have file names");
    store.storage().rename(path, &qdir.join(name))?;
    Ok(())
}

/// Reads the salvageable prefix of a damaged entry.
fn salvage_records<S: Storage>(
    store: &TraceStore<S>,
    slug: &str,
) -> Result<Vec<MissRecord>, StoreError> {
    let bytes = store.storage().read(&store.trace_path(slug))?;
    let mut out = Vec::new();
    for rec in TraceReader::with_salvage(&bytes[..])? {
        match rec {
            Ok(r) => out.push(r),
            Err(_) => break,
        }
    }
    Ok(out)
}

/// Verifies every entry of `store`; with `repair`, quarantines damaged
/// files (salvaging complete chunks into a fresh entry first) and
/// removes stale `*.tmp` leftovers.
///
/// Never panics on damaged input: corruption is reported (and with
/// `repair`, contained), not propagated as a torn replay.
///
/// # Errors
///
/// Only environment errors — an unlistable directory, a quarantine
/// move that fails. Damage inside entries is a report, not an error.
pub fn fsck<S: Storage>(store: &TraceStore<S>, repair: bool) -> Result<FsckReport, StoreError> {
    let mut report = FsckReport::default();
    let mut traces = Vec::new();
    let mut metas = Vec::new();
    for entry in fs::read_dir(store.dir())? {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".tmp") {
            report.orphans.push(name);
        } else if let Some(slug) = name.strip_suffix(".trace") {
            traces.push(slug.to_string());
        } else if let Some(slug) = name.strip_suffix(".meta.json") {
            metas.push(slug.to_string());
        }
    }
    traces.sort();
    metas.sort();
    for slug in &traces {
        if !metas.contains(slug) {
            report.orphans.push(format!("{slug}.trace"));
        }
    }
    for slug in &metas {
        if !traces.contains(slug) {
            report.orphans.push(format!("{slug}.meta.json"));
        }
    }
    report.orphans.sort();

    for slug in traces.iter().filter(|s| metas.contains(s)) {
        let status = match store.meta(slug) {
            Ok(meta) => verify_entry(store, slug, &meta)?,
            Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
            Err(e) => EntryStatus::CorruptMeta {
                detail: e.to_string(),
            },
        };
        report.entries.push(FsckEntry {
            slug: slug.clone(),
            status,
        });
    }

    if repair {
        for entry in &report.entries {
            match &entry.status {
                EntryStatus::Clean { .. } => {}
                EntryStatus::Salvageable { .. } => {
                    let records = salvage_records(store, &entry.slug)?;
                    let meta = store.meta(&entry.slug)?;
                    quarantine(store, &store.trace_path(&entry.slug))?;
                    let kept = records.len() as u64;
                    store.save_records(
                        &entry.slug,
                        records,
                        &TraceMeta {
                            records: kept,
                            ..meta
                        },
                    )?;
                    report.repaired.push((
                        entry.slug.clone(),
                        RepairAction::Salvaged { records_kept: kept },
                    ));
                }
                EntryStatus::MetaMismatch { records, .. } => {
                    let meta = store.meta(&entry.slug)?;
                    store.storage().write_atomic(
                        &store.meta_path(&entry.slug),
                        TraceMeta {
                            records: *records,
                            ..meta
                        }
                        .to_json()
                        .as_bytes(),
                    )?;
                    report
                        .repaired
                        .push((entry.slug.clone(), RepairAction::MetaRewritten));
                }
                EntryStatus::Unreadable { .. } | EntryStatus::CorruptMeta { .. } => {
                    quarantine(store, &store.trace_path(&entry.slug))?;
                    quarantine(store, &store.meta_path(&entry.slug))?;
                    report
                        .repaired
                        .push((entry.slug.clone(), RepairAction::Quarantined));
                }
            }
        }
        // Stale temporaries are droppings from an interrupted save;
        // with repair on they are deleted, not quarantined.
        for orphan in &report.orphans {
            if orphan.ends_with(".tmp") {
                let _ = store.storage().remove_file(&store.dir().join(orphan));
            }
        }
    }
    Ok(report)
}

/// One evicted entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted {
    /// The entry's slug.
    pub slug: String,
    /// Bytes freed (trace + sidecar).
    pub bytes: u64,
}

/// The result of a [`gc`] pass.
#[derive(Debug, Clone, Default)]
pub struct GcReport {
    /// Store size (complete entries, trace + sidecar) before eviction.
    pub bytes_before: u64,
    /// Store size after eviction.
    pub bytes_after: u64,
    /// Evicted entries, least-recently-used first.
    pub evicted: Vec<Evicted>,
    /// Entries kept.
    pub kept: usize,
}

impl GcReport {
    /// Renders the deterministic summary `repro trace gc` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.evicted {
            let _ = writeln!(out, "evicted   {} ({} bytes)", e.slug, e.bytes);
        }
        let _ = writeln!(
            out,
            "{} -> {} bytes, {} evicted, {} kept",
            self.bytes_before,
            self.bytes_after,
            self.evicted.len(),
            self.kept
        );
        out
    }
}

/// Evicts least-recently-used entries until the store's complete
/// entries total at most `max_bytes`. Use order is file mtime —
/// [`TraceStore::load`] freshens it on every successful load. Ties
/// break by slug so the eviction order is deterministic.
///
/// Concurrency-safe against loaders and other collectors: each victim
/// is re-stat'ed immediately before unlinking, so an entry a load
/// freshened after the scan (it just proved itself hot) is skipped, and
/// an entry another collector already removed is accounted as gone
/// instead of erroring.
///
/// # Errors
///
/// Directory-listing or removal failures (a concurrently vanished
/// entry is not a failure).
pub fn gc<S: Storage>(store: &TraceStore<S>, max_bytes: u64) -> Result<GcReport, StoreError> {
    gc_with_hook(store, max_bytes, |_| {})
}

/// [`gc`] with a test seam: `before_unlink` runs after a victim is
/// chosen and before its files are unlinked — exactly the window a
/// concurrent [`TraceStore::load`] freshen or a racing collector's
/// unlink lands in.
fn gc_with_hook<S: Storage>(
    store: &TraceStore<S>,
    max_bytes: u64,
    mut before_unlink: impl FnMut(&str),
) -> Result<GcReport, StoreError> {
    let mut entries = Vec::new();
    for slug in store.list()? {
        let trace_path = store.trace_path(&slug);
        let meta_path = store.meta_path(&slug);
        // An entry may vanish between list() and here (a racing
        // collector): it holds no bytes, so it is simply not a victim.
        let trace_md = match fs::metadata(&trace_path) {
            Ok(md) => md,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e.into()),
        };
        let bytes = trace_md.len() + fs::metadata(&meta_path).map_or(0, |m| m.len());
        let used = trace_md
            .modified()
            .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        entries.push((used, slug, bytes));
    }
    let mut report = GcReport {
        bytes_before: entries.iter().map(|(_, _, b)| b).sum(),
        ..GcReport::default()
    };
    report.bytes_after = report.bytes_before;
    // Oldest first; equal timestamps fall back to slug order.
    entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let mut vanished = 0usize;
    let mut next = 0;
    while report.bytes_after > max_bytes && next < entries.len() {
        let (seen, slug, bytes) = &entries[next];
        next += 1;
        before_unlink(slug);
        // Re-stat before unlinking. A fresher mtime means a load used
        // the entry after our scan — it is hot now, so evicting it
        // would throw away exactly the bytes most worth keeping; skip
        // to the next-oldest victim instead.
        match fs::metadata(store.trace_path(slug)) {
            Ok(md) => {
                let now = md.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                if now > *seen {
                    continue;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // A racing collector won: the bytes are already gone.
                report.bytes_after -= bytes;
                vanished += 1;
                let _ = remove_if_present(store, &store.meta_path(slug));
                continue;
            }
            Err(e) => return Err(e.into()),
        }
        remove_if_present(store, &store.trace_path(slug))?;
        remove_if_present(store, &store.meta_path(slug))?;
        report.bytes_after -= bytes;
        report.evicted.push(Evicted {
            slug: slug.clone(),
            bytes: *bytes,
        });
    }
    report.kept = entries.len() - report.evicted.len() - vanished;
    Ok(report)
}

/// Unlinks `path`, treating an already-missing file (a racing collector
/// got there first) as success.
fn remove_if_present<S: Storage>(store: &TraceStore<S>, path: &Path) -> Result<(), StoreError> {
    match store.storage().remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceWriter;
    use ccnuma_trace::Trace;
    use ccnuma_types::{Ns, Pid, ProcId, VirtPage};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ccnuma-fsck-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample(n: u64) -> Trace {
        (0..n)
            .map(|i| MissRecord::user_data_read(Ns(i * 500), ProcId(0), Pid(0), VirtPage(i / 8)))
            .collect()
    }

    fn meta_for(t: &Trace) -> TraceMeta {
        TraceMeta {
            label: "sample".into(),
            records: t.len() as u64,
            nodes: 8,
            other_time_ns: 0,
        }
    }

    fn store_with(tag: &str, slugs: &[(&str, u64)]) -> (TraceStore, PathBuf) {
        let dir = tmpdir(tag);
        let store = TraceStore::new(&dir).unwrap();
        for (slug, n) in slugs {
            let t = sample(*n);
            store.save(slug, &t, &meta_for(&t)).unwrap();
        }
        (store, dir)
    }

    #[test]
    fn clean_store_passes() {
        let (store, dir) = store_with("clean", &[("a", 100), ("b", 50)]);
        let report = fsck(&store, false).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.entries.len(), 2);
        assert!(report.render().contains("2 entries: 2 clean"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_is_salvageable_and_repair_rewrites() {
        let (store, dir) = store_with("trunc", &[("a", 10_000)]);
        // Chop the tail mid-chunk.
        let path = store.trace_path("a");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let report = fsck(&store, false).unwrap();
        assert!(!report.is_clean());
        let FsckEntry { status, .. } = &report.entries[0];
        let EntryStatus::Salvageable { records_kept, .. } = status else {
            panic!("expected salvageable, got {status:?}");
        };
        assert!(*records_kept > 0 && *records_kept < 10_000);

        let repaired = fsck(&store, true).unwrap();
        assert_eq!(repaired.repaired.len(), 1);
        // The store now holds the salvaged entry and passes fsck.
        let after = fsck(&store, false).unwrap();
        assert!(after.is_clean(), "{}", after.render());
        let (t, m) = store.load("a").unwrap();
        assert_eq!(t.len() as u64, m.records);
        assert!(dir.join(QUARANTINE_DIR).join("a.trace").is_file());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_header_is_quarantined() {
        let (store, dir) = store_with("garbage", &[("a", 100)]);
        fs::write(store.trace_path("a"), b"not a trace at all").unwrap();
        let report = fsck(&store, true).unwrap();
        assert!(matches!(
            report.entries[0].status,
            EntryStatus::Unreadable { .. }
        ));
        assert_eq!(report.repaired[0].1, RepairAction::Quarantined);
        assert!(store.list().unwrap().is_empty());
        assert!(dir.join(QUARANTINE_DIR).join("a.trace").is_file());
        assert!(dir.join(QUARANTINE_DIR).join("a.meta.json").is_file());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_meta_and_mismatch_are_detected() {
        let (store, dir) = store_with("meta", &[("a", 100), ("b", 100)]);
        fs::write(store.meta_path("a"), "{ not json").unwrap();
        let good = store.meta("b").unwrap();
        fs::write(
            store.meta_path("b"),
            TraceMeta {
                records: 999,
                ..good
            }
            .to_json(),
        )
        .unwrap();
        let report = fsck(&store, false).unwrap();
        assert!(matches!(
            report.entries[0].status,
            EntryStatus::CorruptMeta { .. }
        ));
        assert!(matches!(
            report.entries[1].status,
            EntryStatus::MetaMismatch {
                records: 100,
                records_expected: 999
            }
        ));
        // Repair rewrites the lying sidecar in place.
        let repaired = fsck(&store, true).unwrap();
        assert!(repaired
            .repaired
            .iter()
            .any(|(s, a)| s == "b" && *a == RepairAction::MetaRewritten));
        assert_eq!(store.meta("b").unwrap().records, 100);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphans_and_stale_tmps_are_reported_and_cleaned() {
        let (store, dir) = store_with("orphan", &[("a", 10)]);
        fs::write(dir.join("lonely.trace"), b"x").unwrap();
        fs::write(dir.join("b.trace.tmp"), b"y").unwrap();
        let report = fsck(&store, false).unwrap();
        assert_eq!(report.orphans, vec!["b.trace.tmp", "lonely.trace"]);
        assert!(dir.join("b.trace.tmp").is_file(), "dry run deletes nothing");
        fsck(&store, true).unwrap();
        assert!(!dir.join("b.trace.tmp").is_file(), "repair removes tmps");
        assert!(dir.join("lonely.trace").is_file(), "orphans are kept");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_evicts_lru_until_under_budget() {
        let (store, dir) = store_with("gc", &[("old", 5000), ("hot", 5000), ("mid", 5000)]);
        // Establish distinct mtimes: old < mid < hot.
        let stamp = |slug: &str, secs: u64| {
            let f = fs::OpenOptions::new()
                .append(true)
                .open(store.trace_path(slug))
                .unwrap();
            f.set_modified(
                std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(secs),
            )
            .unwrap();
        };
        stamp("old", 1000);
        stamp("mid", 2000);
        stamp("hot", 3000);
        let total: u64 = store
            .list()
            .unwrap()
            .iter()
            .map(|s| {
                fs::metadata(store.trace_path(s)).unwrap().len()
                    + fs::metadata(store.meta_path(s)).unwrap().len()
            })
            .sum();
        // Budget for roughly two entries: the oldest goes.
        let report = gc(&store, total * 2 / 3).unwrap();
        assert_eq!(report.evicted.len(), 1);
        assert_eq!(report.evicted[0].slug, "old");
        assert_eq!(report.kept, 2);
        assert!(report.bytes_after <= total * 2 / 3);
        assert_eq!(store.list().unwrap(), vec!["hot", "mid"]);
        // A zero budget clears the store.
        let report = gc(&store, 0).unwrap();
        assert_eq!(report.evicted.len(), 2);
        assert_eq!(report.bytes_after, 0);
        assert!(store.list().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_skips_a_victim_freshened_mid_collection() {
        // Regression: a load that freshens the chosen victim between
        // gc's scan and its unlink proves the entry hot — gc must move
        // on to the next-oldest instead of evicting it.
        let (store, dir) = store_with("gc-race-hot", &[("old", 5000), ("mid", 5000)]);
        let stamp = |slug: &str, secs: u64| {
            let f = fs::OpenOptions::new()
                .append(true)
                .open(store.trace_path(slug))
                .unwrap();
            f.set_modified(
                std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(secs),
            )
            .unwrap();
        };
        stamp("old", 1000);
        stamp("mid", 2000);
        let report = gc_with_hook(&store, 0, |slug| {
            if slug == "old" {
                // The concurrent load's mtime freshen.
                let _ = store.load("old");
            }
        })
        .unwrap();
        assert_eq!(
            report
                .evicted
                .iter()
                .map(|e| e.slug.as_str())
                .collect::<Vec<_>>(),
            vec!["mid"],
            "the freshened victim survives; the next-oldest goes"
        );
        assert_eq!(report.kept, 1);
        assert_eq!(store.list().unwrap(), vec!["old"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_tolerates_a_racing_collector_unlinking_first() {
        // Regression: a second collector removing the victim between
        // gc's scan and its unlink used to surface as a hard I/O error.
        let (store, dir) = store_with("gc-race-gone", &[("old", 5000), ("mid", 5000)]);
        let stamp = |slug: &str, secs: u64| {
            let f = fs::OpenOptions::new()
                .append(true)
                .open(store.trace_path(slug))
                .unwrap();
            f.set_modified(
                std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(secs),
            )
            .unwrap();
        };
        stamp("old", 1000);
        stamp("mid", 2000);
        let report = gc_with_hook(&store, 0, |slug| {
            if slug == "old" {
                // The racing collector wins the unlink.
                fs::remove_file(store.trace_path("old")).unwrap();
                fs::remove_file(store.meta_path("old")).unwrap();
            }
        })
        .unwrap();
        assert_eq!(
            report
                .evicted
                .iter()
                .map(|e| e.slug.as_str())
                .collect::<Vec<_>>(),
            vec!["mid"],
            "only the entry this gc actually unlinked is reported evicted"
        );
        assert_eq!(
            report.kept, 0,
            "the vanished entry is neither kept nor evicted"
        );
        assert_eq!(report.bytes_after, 0);
        assert!(store.list().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_freshens_mtime_for_lru() {
        let (store, dir) = store_with("touch", &[("a", 100)]);
        let f = fs::OpenOptions::new()
            .append(true)
            .open(store.trace_path("a"))
            .unwrap();
        f.set_modified(std::time::SystemTime::UNIX_EPOCH).unwrap();
        drop(f);
        let before = fs::metadata(store.trace_path("a"))
            .unwrap()
            .modified()
            .unwrap();
        store.load("a").unwrap();
        let after = fs::metadata(store.trace_path("a"))
            .unwrap()
            .modified()
            .unwrap();
        assert!(after > before, "load must freshen the LRU stamp");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_never_panics_on_random_corruption() {
        // A cheap deterministic sweep: flip one byte at a range of
        // offsets and truncate at a range of lengths; fsck must always
        // classify, never panic, and repair must always converge.
        let t = sample(2000);
        let mut encoded = Vec::new();
        let mut w = TraceWriter::new(&mut encoded).unwrap();
        for r in t.iter() {
            w.push(r).unwrap();
        }
        w.finish().unwrap();
        for step in 0..24usize {
            let dir = tmpdir(&format!("sweep-{step}"));
            let store = TraceStore::new(&dir).unwrap();
            store.save("x", &t, &meta_for(&t)).unwrap();
            let path = store.trace_path("x");
            let mut bytes = encoded.clone();
            if step % 2 == 0 {
                let at = (step / 2) * bytes.len() / 12;
                let at = at.min(bytes.len() - 1);
                bytes[at] ^= 0x10;
            } else {
                let keep = (step / 2 + 1) * bytes.len() / 13;
                bytes.truncate(keep.min(bytes.len()));
            }
            fs::write(&path, &bytes).unwrap();
            let report = fsck(&store, true).unwrap();
            assert_eq!(report.entries.len(), 1);
            // After repair the store must verify clean (possibly empty).
            let after = fsck(&store, false).unwrap();
            assert!(after.is_clean(), "step {step}: {}", after.render());
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}
