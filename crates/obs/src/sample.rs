//! The epoch sampler: a time series of simulator state snapshots.
//!
//! The paper's analysis is time-resolved — pages heat up, the pager
//! migrates and replicates, replicas accumulate and collapse — but a
//! [`RunReport`](https://docs.rs) only carries end-of-run aggregates. The
//! sampler closes that gap: the simulator calls
//! [`EpochSeries::push`] whenever sim time crosses an epoch boundary,
//! capturing a [`SampleView`] of the cumulative state; the CSV exporter
//! then derives per-epoch deltas so each row describes what happened
//! *during* that epoch.
//!
//! Everything is keyed by sim time, never wall-clock, so the series for a
//! given run spec is byte-identical however the run was scheduled.

use ccnuma_types::Ns;

/// A cumulative snapshot of the simulator state at one instant.
///
/// All counters are running totals since the start of the run; the
/// footprint and occupancy fields are instantaneous.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SampleView {
    /// L2 misses served from local memory so far.
    pub local_misses: u64,
    /// L2 misses served from remote memory so far.
    pub remote_misses: u64,
    /// Pages migrated so far (0 under static policies).
    pub migrations: u64,
    /// Pages replicated so far.
    pub replications: u64,
    /// Replica collapses so far.
    pub collapses: u64,
    /// Stale-mapping remaps so far.
    pub remaps: u64,
    /// Replica frames currently live (the §7.2.3 footprint).
    pub replica_frames: u64,
    /// Physical frames currently in use, machine-wide.
    pub frames_used: u64,
    /// Busiest directory controller's occupancy so far, in percent.
    pub dir_occupancy_pct: f64,
    /// Kernel time spent on page moves so far.
    pub policy_overhead: Ns,
}

impl SampleView {
    /// Local misses as a percentage of all misses in this snapshot
    /// (0.0 when no misses yet).
    pub fn local_miss_pct(&self) -> f64 {
        let total = self.local_misses + self.remote_misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.local_misses as f64 / total as f64
        }
    }
}

/// One sampled epoch: the boundary time and the cumulative view there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Sim time of the snapshot.
    pub t: Ns,
    /// Cumulative state at `t`.
    pub view: SampleView,
}

/// A fixed-epoch time series of [`Snapshot`]s.
#[derive(Debug, Clone)]
pub struct EpochSeries {
    epoch: Ns,
    snaps: Vec<Snapshot>,
}

impl EpochSeries {
    /// An empty series sampling every `epoch` of sim time.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero.
    pub fn new(epoch: Ns) -> EpochSeries {
        assert!(epoch > Ns::ZERO, "epoch length must be non-zero");
        EpochSeries {
            epoch,
            snaps: Vec::new(),
        }
    }

    /// The configured epoch length.
    pub fn epoch(&self) -> Ns {
        self.epoch
    }

    /// True once sim time `now` has crossed the next unsampled epoch
    /// boundary.
    #[inline]
    pub fn due(&self, now: Ns) -> bool {
        now.0 >= self.next_boundary()
    }

    fn next_boundary(&self) -> u64 {
        match self.snaps.last() {
            None => self.epoch.0,
            Some(s) => (s.t.0 / self.epoch.0 + 1) * self.epoch.0,
        }
    }

    /// Appends a snapshot taken at `now`.
    pub fn push(&mut self, now: Ns, view: SampleView) {
        self.snaps.push(Snapshot { t: now, view });
    }

    /// The snapshots, in time order.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snaps
    }

    /// Number of epochs sampled.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// True if nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_tracks_epoch_boundaries() {
        let mut s = EpochSeries::new(Ns(100));
        assert!(!s.due(Ns(99)));
        assert!(s.due(Ns(100)));
        s.push(Ns(105), SampleView::default());
        // Sampled inside epoch 1; next boundary is 200.
        assert!(!s.due(Ns(150)));
        assert!(s.due(Ns(200)));
        // A long stall skips boundaries: one catch-up sample, then the
        // next boundary advances past the sampled time.
        s.push(Ns(730), SampleView::default());
        assert!(!s.due(Ns(799)));
        assert!(s.due(Ns(800)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn local_miss_pct_handles_zero() {
        let mut v = SampleView::default();
        assert_eq!(v.local_miss_pct(), 0.0);
        v.local_misses = 3;
        v.remote_misses = 1;
        assert_eq!(v.local_miss_pct(), 75.0);
    }
}
