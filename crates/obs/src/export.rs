//! Artifact exporters: JSONL event log, CSV time series, Chrome
//! trace-event JSON, and the per-run artifact directory writer.
//!
//! Every exporter derives its output purely from recorded sim-time data,
//! so artifacts for equal run specs are byte-identical however (and on
//! however many threads) the runs were scheduled. Wall-clock never
//! appears in any per-run artifact.

use crate::audit::{AuditEvent, AuditLog};
use crate::json::JsonWriter;
use crate::recorder::RunRecorder;
use crate::sample::EpochSeries;
use ccnuma_faults::io::atomic_write;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// 64-bit FNV-1a hash — the stable fingerprint behind artifact names.
///
/// # Examples
///
/// ```
/// use ccnuma_obs::fnv1a64;
///
/// assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
/// assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Sanitizes `label` into a filesystem-safe slug and appends the FNV
/// fingerprint of `identity`, producing a stable per-spec artifact name.
///
/// # Examples
///
/// ```
/// use ccnuma_obs::artifact_slug;
///
/// let slug = artifact_slug("raytrace [Mig/Rep] +trace", "key");
/// assert!(slug.starts_with("raytrace-mig-rep-trace-"));
/// assert_eq!(artifact_slug("a", "k1"), artifact_slug("a", "k1"));
/// assert_ne!(artifact_slug("a", "k1"), artifact_slug("a", "k2"));
/// ```
pub fn artifact_slug(label: &str, identity: &str) -> String {
    let mut slug = String::new();
    let mut dash = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            slug.push(c.to_ascii_lowercase());
            dash = false;
        } else if !dash && !slug.is_empty() {
            slug.push('-');
            dash = true;
        }
    }
    while slug.ends_with('-') {
        slug.pop();
    }
    let _ = write!(slug, "-{:016x}", fnv1a64(identity.as_bytes()));
    slug
}

/// Writes the audit log as JSONL: one event object per line, fields
/// `event`, `t_ns`, then event-specific members. Time-ordered as
/// recorded.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer.
pub fn write_events_jsonl<W: Write>(mut w: W, log: &AuditLog) -> io::Result<()> {
    for e in log.events() {
        let mut j = JsonWriter::new();
        j.begin_obj();
        match e {
            AuditEvent::Decision(d) => {
                j.key("event");
                j.str("decision");
                j.key("t_ns");
                j.raw(&d.now.0.to_string());
                j.key("action");
                j.str(d.action.name());
                j.key("page");
                j.raw(&d.page.0.to_string());
                j.key("proc");
                j.raw(&d.proc.0.to_string());
                j.key("node");
                j.raw(&d.node.0.to_string());
                if let Some(t) = d.action.target() {
                    j.key("target_node");
                    j.raw(&t.0.to_string());
                }
                j.key("mapped_node");
                j.raw(&d.mapped_node.0.to_string());
                j.key("is_write");
                j.raw(if d.is_write { "true" } else { "false" });
                j.key("pressure");
                j.raw(if d.pressure { "true" } else { "false" });
                j.key("counter");
                j.raw(&d.counter.to_string());
                j.key("writes");
                j.raw(&d.writes.to_string());
                j.key("migrates");
                j.raw(&d.migrates.to_string());
            }
            AuditEvent::NoPage { now, page, action } => {
                j.key("event");
                j.str("no_page");
                j.key("t_ns");
                j.raw(&now.0.to_string());
                j.key("action");
                j.str(action.name());
                j.key("page");
                j.raw(&page.0.to_string());
            }
            AuditEvent::Reset { now, epoch } => {
                j.key("event");
                j.str("reset");
                j.key("t_ns");
                j.raw(&now.0.to_string());
                j.key("epoch");
                j.raw(&epoch.to_string());
            }
            AuditEvent::Fault(f) => {
                use ccnuma_faults::FaultKind;
                j.key("event");
                j.str("fault");
                j.key("t_ns");
                j.raw(&f.now.0.to_string());
                j.key("kind");
                j.str(f.kind.name());
                match f.kind {
                    FaultKind::StormSeize { node, frames }
                    | FaultKind::StormRelease { node, frames } => {
                        j.key("node");
                        j.raw(&node.0.to_string());
                        j.key("frames");
                        j.raw(&frames.to_string());
                    }
                    FaultKind::CopyAbort { page } | FaultKind::CounterCapped { page } => {
                        j.key("page");
                        j.raw(&page.0.to_string());
                    }
                    FaultKind::AllocBlocked { node } => {
                        j.key("node");
                        j.raw(&node.0.to_string());
                    }
                    FaultKind::AckDelay { delay } => {
                        j.key("delay_ns");
                        j.raw(&delay.0.to_string());
                    }
                    FaultKind::InterruptLost => {}
                }
            }
        }
        j.end_obj();
        writeln!(w, "{}", j.finish())?;
    }
    Ok(())
}

/// Writes the epoch time series as CSV.
///
/// Columns: `epoch,t_ns` then per-epoch deltas
/// (`local_misses,remote_misses,local_miss_pct,migrations,replications,
/// collapses,remaps`) then instantaneous state
/// (`replica_frames,frames_used,dir_occupancy_pct,policy_overhead_ns`).
/// The miss percentage is computed over the epoch's own misses, so each
/// row describes locality *during* that epoch — the paper's over-time
/// view.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer.
pub fn write_timeseries_csv<W: Write>(mut w: W, series: &EpochSeries) -> io::Result<()> {
    writeln!(
        w,
        "epoch,t_ns,local_misses,remote_misses,local_miss_pct,migrations,replications,\
         collapses,remaps,replica_frames,frames_used,dir_occupancy_pct,policy_overhead_ns"
    )?;
    let mut prev = crate::sample::SampleView::default();
    for (i, s) in series.snapshots().iter().enumerate() {
        let v = s.view;
        let local = v.local_misses - prev.local_misses;
        let remote = v.remote_misses - prev.remote_misses;
        let pct = if local + remote == 0 {
            0.0
        } else {
            100.0 * local as f64 / (local + remote) as f64
        };
        writeln!(
            w,
            "{},{},{},{},{:.3},{},{},{},{},{},{},{:.3},{}",
            i,
            s.t.0,
            local,
            remote,
            pct,
            v.migrations - prev.migrations,
            v.replications - prev.replications,
            v.collapses - prev.collapses,
            v.remaps - prev.remaps,
            v.replica_frames,
            v.frames_used,
            v.dir_occupancy_pct,
            (v.policy_overhead - prev.policy_overhead).0,
        )?;
        prev = v;
    }
    Ok(())
}

/// Nanoseconds rendered as the microsecond timestamps the trace-event
/// format wants, with fixed sub-microsecond precision (deterministic).
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Writes the run as Chrome trace-event JSON (loadable in Perfetto or
/// `chrome://tracing`).
///
/// Tracks: one thread per CPU carrying scheduler quanta (`sched` spans
/// named by pid) and pager page-ops (`pager` spans named by operation),
/// plus one `shootdowns` thread of instant events with TLB counts.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer.
pub fn write_chrome_trace<W: Write>(mut w: W, rec: &RunRecorder, cpus: usize) -> io::Result<()> {
    let mut j = JsonWriter::new();
    j.begin_obj();
    j.key("displayTimeUnit");
    j.str("ns");
    j.key("traceEvents");
    j.begin_arr();

    let shootdown_tid = cpus;
    // Thread-name metadata, one per track.
    for cpu in 0..cpus {
        j.begin_obj();
        j.key("ph");
        j.str("M");
        j.key("name");
        j.str("thread_name");
        j.key("pid");
        j.raw("1");
        j.key("tid");
        j.raw(&cpu.to_string());
        j.key("args");
        j.begin_obj();
        j.key("name");
        j.str(&format!("cpu{cpu}"));
        j.end_obj();
        j.end_obj();
    }
    j.begin_obj();
    j.key("ph");
    j.str("M");
    j.key("name");
    j.str("thread_name");
    j.key("pid");
    j.raw("1");
    j.key("tid");
    j.raw(&shootdown_tid.to_string());
    j.key("args");
    j.begin_obj();
    j.key("name");
    j.str("shootdowns");
    j.end_obj();
    j.end_obj();

    // Scheduler quanta: each context switch opens a span that ends at the
    // CPU's next switch (or end of run). Idle periods (pid None) leave a
    // gap.
    let mut last: Vec<Option<(u64, u64)>> = vec![None; cpus]; // (start_ns, pid)
    let emit_span = |j: &mut JsonWriter, cpu: usize, start: u64, end: u64, pid: u64| {
        j.begin_obj();
        j.key("ph");
        j.str("X");
        j.key("cat");
        j.str("sched");
        j.key("name");
        j.str(&format!("pid {pid}"));
        j.key("pid");
        j.raw("1");
        j.key("tid");
        j.raw(&cpu.to_string());
        j.key("ts");
        j.raw(&ts_us(start));
        j.key("dur");
        j.raw(&ts_us(end.saturating_sub(start)));
        j.end_obj();
    };
    for e in rec.sched_events() {
        if e.cpu >= cpus {
            continue;
        }
        if let Some((start, pid)) = last[e.cpu].take() {
            emit_span(&mut j, e.cpu, start, e.now.0, pid);
        }
        last[e.cpu] = e.pid.map(|p| (e.now.0, p));
    }
    let end = rec.sim_time().0;
    for (cpu, open) in last.iter().enumerate() {
        if let Some((start, pid)) = *open {
            emit_span(&mut j, cpu, start, end.max(start), pid);
        }
    }

    // Pager operations.
    for op in rec.op_events() {
        j.begin_obj();
        j.key("ph");
        j.str("X");
        j.key("cat");
        j.str("pager");
        j.key("name");
        j.str(op.name);
        j.key("pid");
        j.raw("1");
        j.key("tid");
        j.raw(&op.cpu.to_string());
        j.key("ts");
        j.raw(&ts_us(op.start.0));
        j.key("dur");
        j.raw(&ts_us(op.dur.0));
        j.key("args");
        j.begin_obj();
        j.key("page");
        j.raw(&op.page.0.to_string());
        j.key("outcome");
        j.str(op.outcome);
        j.end_obj();
        j.end_obj();
    }

    // Shootdowns: instant events.
    for s in rec.shootdown_events() {
        j.begin_obj();
        j.key("ph");
        j.str("i");
        j.key("s");
        j.str("t");
        j.key("cat");
        j.str("shootdown");
        j.key("name");
        j.str("tlb shootdown");
        j.key("pid");
        j.raw("1");
        j.key("tid");
        j.raw(&shootdown_tid.to_string());
        j.key("ts");
        j.raw(&ts_us(s.now.0));
        j.key("args");
        j.begin_obj();
        j.key("tlbs_flushed");
        j.raw(&s.tlbs.to_string());
        j.key("flush_ops");
        j.raw(&s.flush_ops.to_string());
        j.end_obj();
        j.end_obj();
    }

    j.end_arr();
    j.end_obj();
    w.write_all(j.finish().as_bytes())
}

/// Writes the full artifact set for one run under
/// `<dir>/runs/<slug>/`: `events.jsonl`, `timeseries.csv`,
/// `trace.json`, `metrics.json`. Returns the run's artifact directory.
///
/// # Errors
///
/// Propagates directory-creation and file-write errors.
pub fn write_run_artifacts(
    dir: &Path,
    slug: &str,
    rec: &RunRecorder,
    cpus: usize,
) -> io::Result<PathBuf> {
    let run_dir = dir.join("runs").join(slug);
    std::fs::create_dir_all(&run_dir)?;

    let mut buf = Vec::new();
    write_events_jsonl(&mut buf, &rec.audit)?;
    atomic_write(&run_dir.join("events.jsonl"), &buf)?;

    buf.clear();
    write_timeseries_csv(&mut buf, &rec.series)?;
    atomic_write(&run_dir.join("timeseries.csv"), &buf)?;

    buf.clear();
    write_chrome_trace(&mut buf, rec, cpus)?;
    atomic_write(&run_dir.join("trace.json"), &buf)?;

    atomic_write(
        &run_dir.join("metrics.json"),
        rec.metrics.to_json().as_bytes(),
    )?;
    Ok(run_dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{AuditAction, Decision};
    use crate::recorder::{ObsConfig, Recorder};
    use crate::sample::SampleView;
    use ccnuma_kernel::{BatchStats, OpOutcome, PageOp};
    use ccnuma_types::{NodeId, Ns, ProcId, VirtPage};

    fn sample_recorder() -> RunRecorder {
        let mut r = RunRecorder::new(ObsConfig { epoch: Ns(100) });
        r.on_context_switch(0, Ns(0), Some(1));
        r.on_context_switch(1, Ns(0), Some(2));
        r.on_context_switch(0, Ns(500), None);
        r.on_decision(&Decision {
            now: Ns(40),
            page: VirtPage(7),
            proc: ProcId(0),
            node: NodeId(0),
            is_write: false,
            mapped_node: NodeId(1),
            pressure: false,
            action: AuditAction::Migrate { to: NodeId(0) },
            counter: 0,
            writes: 0,
            migrates: 1,
        });
        let op = PageOp::migrate(VirtPage(7), NodeId(0));
        r.on_page_op(0, Ns(50), &op, &OpOutcome::Done { latency: Ns(300) });
        r.on_shootdown(
            Ns(60),
            &BatchStats {
                total_latency: Ns(300),
                tlbs_flushed: 8,
                flush_ops: 1,
            },
        );
        r.on_epoch(Ns(100), &SampleView::default());
        r.on_run_end(Ns(1000), &SampleView::default());
        r
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let mut buf = Vec::new();
        write_events_jsonl(&mut buf, &sample_recorder().audit).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"event\":\"decision\""));
            assert!(line.contains("\"action\":\"migrate\""));
        }
    }

    #[test]
    fn jsonl_serializes_fault_events() {
        use ccnuma_faults::{FaultEvent, FaultKind};
        let mut r = sample_recorder();
        r.on_fault(&FaultEvent {
            now: Ns(70),
            kind: FaultKind::StormSeize {
                node: NodeId(2),
                frames: 6,
            },
        });
        r.on_fault(&FaultEvent {
            now: Ns(80),
            kind: FaultKind::AckDelay { delay: Ns(5_000) },
        });
        let mut buf = Vec::new();
        write_events_jsonl(&mut buf, &r.audit).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("\"event\":\"fault\""));
        assert!(lines[1].contains("\"kind\":\"storm_seize\""));
        assert!(lines[1].contains("\"node\":2"));
        assert!(lines[1].contains("\"frames\":6"));
        assert!(lines[2].contains("\"kind\":\"ack_delay\""));
        assert!(lines[2].contains("\"delay_ns\":5000"));
    }

    #[test]
    fn csv_has_header_and_delta_rows() {
        let mut buf = Vec::new();
        write_timeseries_csv(&mut buf, &sample_recorder().series).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("epoch,t_ns,local_misses"));
        assert_eq!(lines.len(), 3, "header + epoch sample + final sample");
        assert!(lines[1].starts_with("0,100,"));
        assert!(lines[2].starts_with("1,1000,"));
    }

    #[test]
    fn chrome_trace_structure() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &sample_recorder(), 2).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(text.ends_with("]}"));
        assert!(text.contains("\"name\":\"cpu0\""));
        assert!(text.contains("\"name\":\"shootdowns\""));
        assert!(text.contains("\"cat\":\"sched\""));
        assert!(text.contains("\"cat\":\"pager\""));
        assert!(text.contains("\"tlbs_flushed\":8"));
        // cpu0's quantum span: 0 → 500 ns = 0.500 µs.
        assert!(text.contains("\"dur\":\"0.500\"") || text.contains("\"dur\":0.500"));
        // Balanced brackets (cheap well-formedness check; CI parses it
        // with a real JSON parser).
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn ts_us_is_fixed_precision() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(1234), "1.234");
        assert_eq!(ts_us(1_000_005), "1000.005");
    }

    #[test]
    fn slug_and_artifacts_round_trip() {
        let dir = std::env::temp_dir().join(format!("ccnuma-obs-export-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = sample_recorder();
        let slug = artifact_slug("raytrace [FT]", "key");
        let run_dir = write_run_artifacts(&dir, &slug, &rec, 2).unwrap();
        for f in [
            "events.jsonl",
            "timeseries.csv",
            "trace.json",
            "metrics.json",
        ] {
            assert!(run_dir.join(f).is_file(), "missing {f}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
