//! The `ccnuma-checkpoint/1` journal: crash-tolerant completion records.
//!
//! A checkpoint directory makes long invocations resumable. It holds:
//!
//! * `checkpoint.json` — the manifest, written atomically (tmp +
//!   rename) when the directory is initialised; names the schema so a
//!   future format can refuse gracefully.
//! * `journal.jsonl` — one record per completed unit of work (a bench
//!   run or a sweep cell), appended as a single `write(2)` and fsync'd
//!   before the append returns, so a record that made it into the file
//!   survives a SIGKILL or power cut.
//!
//! Each record is one JSON line:
//!
//! ```json
//! {"schema":"ccnuma-checkpoint/1","kind":"run","key":"<slug>","cache_key":"<identity>","payload":{...}}
//! ```
//!
//! `kind` scopes the namespace (`"run"` for executor runs, `"cell"` for
//! sweep cells), `key` is the unit's stable slug, `cache_key` its full
//! identity string, and `payload` the consumer-defined serialization of
//! the completed result. The reader is deliberately lenient: a torn
//! final line (the crash interrupted the append itself) or an
//! otherwise unparseable line is skipped and counted, never fatal —
//! losing one record costs one recomputation, not the resume.
//!
//! The journal performs all I/O through a
//! [`Storage`](ccnuma_faults::Storage) implementation, so the
//! host-I/O fault scenarios in `ccnuma-faults` exercise it directly;
//! appends retry transient failures with bounded backoff.

use ccnuma_faults::io::{is_transient, RetryPolicy, Storage, StorageFile};
use ccnuma_faults::DiskStorage;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::{push_json_str, JsonValue};

/// The checkpoint directory schema identifier.
pub const CHECKPOINT_SCHEMA: &str = "ccnuma-checkpoint/1";

/// The journal file name inside a checkpoint directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// The manifest file name inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "checkpoint.json";

/// One completion record read back from a journal.
#[derive(Debug, Clone)]
pub struct CheckpointRecord {
    /// Namespace of the unit ("run" or "cell").
    pub kind: String,
    /// The unit's stable slug.
    pub key: String,
    /// The unit's full identity string (the memo/cache key).
    pub cache_key: String,
    /// The consumer-defined result serialization.
    pub payload: JsonValue,
}

/// What [`CheckpointJournal::load`] found.
#[derive(Debug, Default)]
pub struct JournalContents {
    /// Every valid record, one per `(kind, cache_key)` pair, in
    /// first-appearance file order. A later duplicate of a pair
    /// *replaces* the earlier record's payload in place — last write
    /// wins. The append path retries a failed append of the same unit,
    /// and a writer that re-journals a key is asserting the newest
    /// payload is the authoritative one; a resume must see that, not a
    /// possibly-stale first attempt. Keeping the first occurrence's
    /// position makes the restored order independent of how many
    /// rewrites happened.
    pub records: Vec<CheckpointRecord>,
    /// Lines that failed to parse or carried the wrong schema —
    /// normally 0 or 1 (a torn final append).
    pub skipped: usize,
}

/// An append-only, fsync-per-record completion journal.
///
/// Cheap to share behind a reference; appends serialize on an internal
/// mutex (the underlying descriptor is `O_APPEND`, so each record is a
/// single atomic `write(2)` regardless).
pub struct CheckpointJournal<S: Storage = DiskStorage> {
    dir: PathBuf,
    storage: S,
    retry: RetryPolicy,
    file: Mutex<AppendState<S>>,
}

impl<S: Storage> std::fmt::Debug for CheckpointJournal<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointJournal")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

struct AppendState<S: Storage> {
    handle: Option<S::File>,
    /// Set after a failed append: the file may end mid-line, so the
    /// next record starts with a newline to seal off the torn tail.
    reseal: bool,
}

impl CheckpointJournal<DiskStorage> {
    /// Opens (creating if needed) a checkpoint directory on the null
    /// storage layer.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or when `dir` holds a manifest with a
    /// different schema.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<CheckpointJournal<DiskStorage>> {
        CheckpointJournal::open_with(dir, DiskStorage)
    }
}

impl<S: Storage> CheckpointJournal<S> {
    /// Opens (creating if needed) a checkpoint directory on `storage`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or when `dir` holds a manifest with a
    /// different schema.
    pub fn open_with(dir: impl Into<PathBuf>, storage: S) -> io::Result<CheckpointJournal<S>> {
        let dir = dir.into();
        let retry = RetryPolicy::default();
        ccnuma_faults::io::retry_io(retry, || storage.create_dir_all(&dir))?;
        let manifest = dir.join(MANIFEST_FILE);
        match storage.read(&manifest) {
            Ok(bytes) => {
                let text = String::from_utf8_lossy(&bytes);
                let schema = JsonValue::parse(&text)
                    .ok()
                    .and_then(|v| v.get("schema").and_then(|s| s.as_str().map(String::from)));
                if schema.as_deref() != Some(CHECKPOINT_SCHEMA) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "{} is not a {CHECKPOINT_SCHEMA} directory (manifest schema {:?})",
                            dir.display(),
                            schema
                        ),
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                let mut doc = String::from("{\"schema\":");
                push_json_str(&mut doc, CHECKPOINT_SCHEMA);
                doc.push_str("}\n");
                ccnuma_faults::io::retry_io(retry, || {
                    storage.write_atomic(&manifest, doc.as_bytes())
                })?;
            }
            Err(e) => return Err(e),
        }
        // A SIGKILL mid-append can leave the journal ending mid-line;
        // start resealed so the first append lands on its own line.
        let reseal = match storage.read(&dir.join(JOURNAL_FILE)) {
            Ok(bytes) => !bytes.is_empty() && bytes.last() != Some(&b'\n'),
            Err(_) => false,
        };
        Ok(CheckpointJournal {
            dir,
            storage,
            retry,
            file: Mutex::new(AppendState {
                handle: None,
                reseal,
            }),
        })
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Overrides the bounded retry policy for appends (default:
    /// [`RetryPolicy::default`]).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> CheckpointJournal<S> {
        self.retry = retry;
        self
    }

    /// The storage layer the journal performs I/O through.
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Appends one completion record and fsyncs it. Returns only after
    /// the record is durable.
    ///
    /// `payload` must be a complete JSON value (object, array, or
    /// scalar) rendered by the caller.
    ///
    /// # Errors
    ///
    /// Returns the last error after bounded retries of transient
    /// failures; the journal stays usable (a torn partial line is
    /// sealed off by the next successful append and skipped on load).
    pub fn append(&self, kind: &str, key: &str, cache_key: &str, payload: &str) -> io::Result<()> {
        let mut line = String::with_capacity(payload.len() + 96);
        line.push_str("{\"schema\":");
        push_json_str(&mut line, CHECKPOINT_SCHEMA);
        line.push_str(",\"kind\":");
        push_json_str(&mut line, kind);
        line.push_str(",\"key\":");
        push_json_str(&mut line, key);
        line.push_str(",\"cache_key\":");
        push_json_str(&mut line, cache_key);
        line.push_str(",\"payload\":");
        line.push_str(payload);
        line.push('}');

        let path = self.dir.join(JOURNAL_FILE);
        let mut state = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let attempts = self.retry.attempts.max(1);
        let mut backoff = self.retry.base_backoff;
        let mut tried = 0;
        loop {
            let res = (|| -> io::Result<()> {
                if state.handle.is_none() {
                    state.handle = Some(self.storage.open_append(&path)?);
                }
                let mut buf = Vec::with_capacity(line.len() + 2);
                if state.reseal {
                    buf.push(b'\n');
                }
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
                let f = state.handle.as_mut().expect("opened above");
                f.write_all(&buf)?;
                f.sync()
            })();
            match res {
                Ok(()) => {
                    state.reseal = false;
                    return Ok(());
                }
                Err(e) => {
                    // The append may have landed partially; drop the
                    // handle and start the next attempt on a new line.
                    state.handle = None;
                    state.reseal = true;
                    tried += 1;
                    if tried >= attempts || !is_transient(&e) {
                        return Err(e);
                    }
                    if backoff > std::time::Duration::ZERO {
                        std::thread::sleep(backoff);
                        backoff = backoff.saturating_mul(2);
                    }
                }
            }
        }
    }

    /// Reads every valid record in the journal. A missing journal file
    /// is an empty journal; torn or malformed lines are counted in
    /// [`JournalContents::skipped`], never fatal.
    ///
    /// # Errors
    ///
    /// Only on I/O errors other than the journal not existing yet.
    pub fn load(&self) -> io::Result<JournalContents> {
        let path = self.dir.join(JOURNAL_FILE);
        let bytes = match self.storage.read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(JournalContents::default()),
            Err(e) => return Err(e),
        };
        let text = String::from_utf8_lossy(&bytes);
        let mut out = JournalContents::default();
        // Last write wins per (kind, cache_key), at the position of the
        // pair's first appearance — see [`JournalContents::records`].
        let mut index: std::collections::HashMap<(String, String), usize> =
            std::collections::HashMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some(rec) = parse_record(line) else {
                out.skipped += 1;
                continue;
            };
            match index.entry((rec.kind.clone(), rec.cache_key.clone())) {
                std::collections::hash_map::Entry::Occupied(e) => out.records[*e.get()] = rec,
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(out.records.len());
                    out.records.push(rec);
                }
            }
        }
        Ok(out)
    }
}

fn parse_record(line: &str) -> Option<CheckpointRecord> {
    let v = JsonValue::parse(line).ok()?;
    if v.get("schema")?.as_str()? != CHECKPOINT_SCHEMA {
        return None;
    }
    Some(CheckpointRecord {
        kind: v.get("kind")?.as_str()?.to_string(),
        key: v.get("key")?.as_str()?.to_string(),
        cache_key: v.get("cache_key")?.as_str()?.to_string(),
        payload: v.get("payload")?.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ccnuma-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn records_round_trip_and_dedup() {
        let d = tmpdir("rt");
        let j = CheckpointJournal::open(&d).unwrap();
        j.append("run", "slug-a", "key-a", "{\"x\":1}").unwrap();
        j.append("cell", "slug-b", "key-b", "[1,2,3]").unwrap();
        j.append("run", "slug-a", "key-a", "{\"x\":999}").unwrap();
        let contents = j.load().unwrap();
        assert_eq!(contents.skipped, 0);
        assert_eq!(contents.records.len(), 2, "duplicate key deduplicated");
        let run = &contents.records[0];
        assert_eq!(run.kind, "run");
        assert_eq!(run.key, "slug-a");
        assert_eq!(
            run.payload.get("x").and_then(JsonValue::as_u64),
            Some(999),
            "last write wins, at the first occurrence's position"
        );
        assert_eq!(contents.records[1].payload.as_array().unwrap().len(), 3);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_record_then_rewrite_of_same_key_resumes_byte_identically() {
        // A crash can tear an append mid-line; the writer then retries
        // the same unit on the next run. The resume must be
        // indistinguishable from a journal where the tear never
        // happened: same records, same payloads, same order.
        let damaged = tmpdir("torn-rewrite");
        {
            let j = CheckpointJournal::open(&damaged).unwrap();
            j.append("run", "s1", "k1", "{\"x\":1}").unwrap();
        }
        // The torn first attempt at k2 (SIGKILL mid-append)...
        let journal = damaged.join(JOURNAL_FILE);
        let mut bytes = fs::read(&journal).unwrap();
        bytes.extend_from_slice(
            b"{\"schema\":\"ccnuma-checkpoint/1\",\"kind\":\"run\",\"key\":\"s2\",\"cache_key\":\"k2\",\"payload\":{\"x\":2",
        );
        fs::write(&journal, &bytes).unwrap();
        // ...followed by the rewrite of the same key on resume.
        let j = CheckpointJournal::open(&damaged).unwrap();
        j.append("run", "s2", "k2", "{\"x\":2}").unwrap();

        // The clean journal: the same two units, no crash.
        let clean = tmpdir("torn-rewrite-clean");
        let c = CheckpointJournal::open(&clean).unwrap();
        c.append("run", "s1", "k1", "{\"x\":1}").unwrap();
        c.append("run", "s2", "k2", "{\"x\":2}").unwrap();

        let a = j.load().unwrap();
        let b = c.load().unwrap();
        assert_eq!(a.skipped, 1, "the torn line is counted, not fatal");
        assert_eq!(
            format!("{:?}", a.records),
            format!("{:?}", b.records),
            "resume state is identical to the crash-free journal"
        );
        let _ = fs::remove_dir_all(&damaged);
        let _ = fs::remove_dir_all(&clean);
    }

    #[test]
    fn reopen_resumes_and_torn_tail_is_skipped() {
        let d = tmpdir("torn");
        {
            let j = CheckpointJournal::open(&d).unwrap();
            j.append("run", "s1", "k1", "1").unwrap();
        }
        // Simulate a crash mid-append: a torn, newline-less tail.
        let journal = d.join(JOURNAL_FILE);
        let mut bytes = fs::read(&journal).unwrap();
        bytes.extend_from_slice(
            b"{\"schema\":\"ccnuma-checkpoint/1\",\"kind\":\"run\",\"key\":\"s2",
        );
        fs::write(&journal, &bytes).unwrap();
        let j = CheckpointJournal::open(&d).unwrap();
        let contents = j.load().unwrap();
        assert_eq!(contents.records.len(), 1);
        assert_eq!(contents.skipped, 1, "torn tail skipped, not fatal");
        // Reopening detected the newline-less tail, so the next append
        // seals it off and lands on its own line.
        j.append("run", "s3", "k3", "3").unwrap();
        let contents = j.load().unwrap();
        assert_eq!(contents.records.len(), 2, "append after torn tail survives");
        assert_eq!(contents.skipped, 1);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn wrong_schema_is_refused() {
        let d = tmpdir("schema");
        fs::create_dir_all(&d).unwrap();
        fs::write(
            d.join(MANIFEST_FILE),
            b"{\"schema\":\"ccnuma-checkpoint/9\"}",
        )
        .unwrap();
        let err = CheckpointJournal::open(&d).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn faulty_appends_survive_retries() {
        use ccnuma_faults::io::{FaultyStorage, IoFaultConfig, IoFaults};
        let d = tmpdir("faulty");
        let faults = IoFaults::new(
            IoFaultConfig {
                write_fail_p: 0.1,
                ..IoFaultConfig::default()
            },
            5,
        );
        // Every append rolls the engine up to three times (open, write,
        // sync), so give the retry loop plenty of headroom.
        let j = CheckpointJournal::open_with(&d, FaultyStorage::new(faults.clone()))
            .unwrap()
            .with_retry(RetryPolicy {
                attempts: 12,
                base_backoff: std::time::Duration::ZERO,
            });
        for i in 0..50 {
            j.append("run", &format!("s{i}"), &format!("k{i}"), &i.to_string())
                .unwrap();
        }
        let contents = j.load().unwrap();
        assert_eq!(contents.records.len(), 50, "every record made it");
        assert!(faults.stats().write_fails > 0, "faults actually fired");
        let _ = fs::remove_dir_all(&d);
    }
}
