//! Log2-bucketed histograms.
//!
//! A [`Histogram`] counts `u64` samples in 65 power-of-two buckets:
//! bucket 0 holds zeros, bucket *i* (1 ≤ *i* ≤ 64) holds values in
//! `[2^(i-1), 2^i)`. Recording is O(1), merging is element-wise addition,
//! and percentiles resolve to a bucket's inclusive upper bound, so every
//! quantile a histogram reports is a value the bucket could actually
//! contain. Exact min, max, count and sum are kept alongside the buckets.
//!
//! # Examples
//!
//! ```
//! use ccnuma_obs::Histogram;
//!
//! let mut h = Histogram::new();
//! for v in [1, 2, 3, 100, 1000] {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 5);
//! assert_eq!(h.min(), 1);
//! assert_eq!(h.max(), 1000);
//! assert!(h.percentile(50.0) >= 3);
//! assert!(h.percentile(99.0) >= 1000);
//! ```

/// Number of buckets: one for zero plus one per bit position of `u64`.
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// The bucket index a value falls into.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive `[lo, hi]` value range of bucket `i`.
///
/// # Panics
///
/// Panics if `i >= BUCKETS`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (i - 1);
        let hi = if i == 64 { u64::MAX } else { (1u64 << i) - 1 };
        (lo, hi)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample recorded (0 for an empty histogram).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample recorded (0 for an empty histogram).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0.0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts (index 0 = zeros, index *i* = `[2^(i-1), 2^i)`).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// The value at percentile `p` (clamped to `0..=100`), resolved to the
    /// inclusive upper bound of the bucket holding that rank — an
    /// overestimate by at most 2×, never an underestimate of the bucket.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Rank of the sample we want, 1-based: ceil(p/100 * count),
        // clamped to at least 1 so p=0 returns the smallest bucket.
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp to the observed max so p100 is exact.
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Median (p50) upper bound.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Rebuilds a histogram from exported parts: per-bucket counts plus
    /// the exact `sum`/`min`/`max` kept alongside them. This is the
    /// inverse of an artifact rendering (sparse `buckets` plus summary
    /// fields), so fleet-level aggregation can re-merge histograms from
    /// `metrics.json`/`profile.json` files exactly. The sample count is
    /// derived from the buckets; `min`/`max` are ignored when the
    /// buckets are empty.
    pub fn from_parts(counts: [u64; BUCKETS], sum: u128, min: u64, max: u64) -> Histogram {
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return Histogram::new();
        }
        Histogram {
            counts,
            count,
            sum,
            min,
            max,
        }
    }

    /// Adds every sample of `other` into `self`. Merging is associative
    /// and commutative: any merge order yields the same histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(64).1, u64::MAX);
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8, 15]
        }
        h.record(1000); // bucket [512, 1023]
        assert_eq!(h.p50(), 15);
        assert_eq!(h.p90(), 15);
        assert_eq!(h.percentile(100.0), 1000, "p100 clamps to observed max");
    }

    #[test]
    fn empty_histogram_percentiles_at_every_point() {
        let h = Histogram::new();
        for p in [0.0, 0.1, 25.0, 50.0, 90.0, 99.0, 99.99, 100.0, 250.0, -3.0] {
            assert_eq!(h.percentile(p), 0, "p{p} of empty");
        }
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p90(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn top_bucket_saturates_without_overflow() {
        let mut h = Histogram::new();
        for _ in 0..3 {
            h.record(u64::MAX);
        }
        h.record(1u64 << 63); // same top bucket, smaller value
        assert_eq!(h.buckets()[64], 4, "all land in the top bucket");
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 1u64 << 63);
        // Bucket 64's upper bound is u64::MAX; the clamp to observed max
        // keeps every percentile exact-at-the-top rather than wrapping.
        assert_eq!(h.percentile(100.0), u64::MAX);
        assert_eq!(h.p50(), u64::MAX);
        // Sum is tracked in u128, so near-u64::MAX samples cannot
        // overflow it.
        assert_eq!(h.sum(), 3 * (u64::MAX as u128) + (1u128 << 63));
    }

    #[test]
    fn merging_disjoint_ranges_keeps_both_tails() {
        let mut low = Histogram::new();
        for v in [0, 1, 2, 3] {
            low.record(v);
        }
        let mut high = Histogram::new();
        for v in [1u64 << 40, (1u64 << 40) + 17, u64::MAX] {
            high.record(v);
        }
        // Merge in both orders: commutative even with no overlap.
        let mut a = low.clone();
        a.merge(&high);
        let mut b = high.clone();
        b.merge(&low);
        assert_eq!(a, b);
        assert_eq!(a.count(), 7);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), u64::MAX);
        // The low tail still answers low percentiles, the high tail high
        // ones, with nothing smeared into the empty middle buckets.
        assert_eq!(a.percentile(0.0), 0);
        assert_eq!(a.p50(), 3);
        assert_eq!(a.percentile(100.0), u64::MAX);
        let occupied: Vec<usize> = (0..BUCKETS).filter(|&i| a.buckets()[i] > 0).collect();
        assert_eq!(occupied, vec![0, 1, 2, 41, 64]);
    }

    #[test]
    fn from_parts_roundtrips_an_exported_histogram() {
        let mut h = Histogram::new();
        for v in [0, 5, 5, 900, 1 << 30] {
            h.record(v);
        }
        let rebuilt = Histogram::from_parts(*h.buckets(), h.sum(), h.min(), h.max());
        assert_eq!(rebuilt, h);
        let empty = Histogram::from_parts([0; BUCKETS], 0, 123, 456);
        assert_eq!(empty, Histogram::new(), "empty parts ignore min/max");
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [0, 1, 7, 300] {
            a.record(v);
            both.record(v);
        }
        for v in [2, 9, 100_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }
}
