//! The [`Recorder`] trait — the simulator's instrumentation surface —
//! and its two implementations: the zero-cost [`NullRecorder`] and the
//! full [`RunRecorder`].
//!
//! The simulator is generic over `R: Recorder` and monomorphized, so a
//! run with [`NullRecorder`] compiles every hook to nothing: the
//! associated constant [`Recorder::ENABLED`] is `false`, guarding
//! call sites whose *arguments* would cost something to build, and the
//! empty default methods inline away. The off path is byte-identical to
//! a simulator with no observability at all — the determinism tests
//! assert it.

use crate::audit::{AuditAction, AuditEvent, AuditLog, Decision};
use crate::metrics::Metrics;
use crate::sample::{EpochSeries, SampleView};
use ccnuma_core::PolicyAction;
use ccnuma_faults::{FaultEvent, FaultKind};
use ccnuma_kernel::{BatchStats, OpOutcome, PageOp};
use ccnuma_trace::MissRecord;
use ccnuma_types::{Ns, VirtPage};

/// Instrumentation hooks the simulator drives.
///
/// Every method has an empty default body; implementations override the
/// ones they care about. All hooks are keyed by sim time — a recorder
/// must never consult wall-clock time, so recorded artifacts for equal
/// run specs are byte-identical regardless of scheduling.
pub trait Recorder: Send {
    /// `false` only for [`NullRecorder`]: lets the simulator skip
    /// *building hook arguments* (sample views, counter snapshots) when
    /// observability is off. Hook calls themselves need no guard — they
    /// monomorphize to nothing.
    const ENABLED: bool = true;

    /// A CPU switched context at `now` (`pid` of the incoming process,
    /// `None` for idle).
    fn on_context_switch(&mut self, _cpu: usize, _now: Ns, _pid: Option<u64>) {}

    /// An L2 miss went to memory: `latency` end-to-end, `remote` if the
    /// mapping was on another node.
    fn on_miss(&mut self, _rec: &MissRecord, _latency: Ns, _remote: bool) {}

    /// A TLB refill cost `cost` of kernel time.
    fn on_tlb_fill(&mut self, _rec: &MissRecord, _cost: Ns) {}

    /// The policy engine decided a non-trivial action.
    fn on_decision(&mut self, _d: &Decision) {}

    /// A decided page move found no free frame and was reclassified.
    fn on_no_page(&mut self, _now: Ns, _page: VirtPage, _action: &PolicyAction) {}

    /// The policy counter reset interval rolled over to `epoch`.
    fn on_interval_reset(&mut self, _now: Ns, _epoch: u64) {}

    /// The pager finished one operation of a batch on `cpu`, starting at
    /// sim time `start`.
    fn on_page_op(&mut self, _cpu: usize, _start: Ns, _op: &PageOp, _outcome: &OpOutcome) {}

    /// A pager batch performed its TLB shootdown.
    fn on_shootdown(&mut self, _now: Ns, _stats: &BatchStats) {}

    /// A fault was injected (chaos runs only; never fires with fault
    /// injection off).
    fn on_fault(&mut self, _event: &FaultEvent) {}

    /// True when the epoch sampler wants a snapshot at sim time `now`.
    /// The simulator checks this before building the (non-free)
    /// [`SampleView`].
    fn epoch_due(&self, _now: Ns) -> bool {
        false
    }

    /// Receives the snapshot requested via [`Recorder::epoch_due`].
    fn on_epoch(&mut self, _now: Ns, _view: &SampleView) {}

    /// The run finished at `sim_time`; `view` is the final cumulative
    /// state.
    fn on_run_end(&mut self, _sim_time: Ns, _view: &SampleView) {}
}

/// The no-op recorder: observability off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;
}

/// Configuration for a [`RunRecorder`].
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Epoch length of the time-series sampler.
    pub epoch: Ns,
}

impl Default for ObsConfig {
    /// 100 µs epochs: fine enough that even `--scale quick` runs (a few
    /// simulated milliseconds) produce tens of epochs, coarse enough
    /// that standard runs stay small.
    fn default() -> ObsConfig {
        ObsConfig {
            epoch: Ns::from_us(100),
        }
    }
}

/// A context-switch record for the scheduler timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedEvent {
    /// The CPU that switched.
    pub cpu: usize,
    /// When it switched.
    pub now: Ns,
    /// The incoming process (`None` = idle).
    pub pid: Option<u64>,
}

/// A completed (or skipped/failed) pager operation for the page-op
/// timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpEvent {
    /// CPU the operation was charged to.
    pub cpu: usize,
    /// Sim time the operation started.
    pub start: Ns,
    /// Operation name ("migrate", "replicate", "collapse", "remap").
    pub name: &'static str,
    /// The page operated on.
    pub page: VirtPage,
    /// End-to-end latency (zero for skipped / no-page).
    pub dur: Ns,
    /// Outcome name ("done", "skipped", "no_page", "failed").
    pub outcome: &'static str,
}

/// One TLB shootdown for the shootdown timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShootdownEvent {
    /// When the batch flushed.
    pub now: Ns,
    /// TLBs flushed by the rendezvous.
    pub tlbs: u32,
    /// Operations in the batch that needed the flush.
    pub flush_ops: u32,
}

/// The full observability recorder: metrics registry, epoch time series,
/// pager audit log, and the raw event streams behind the Chrome trace.
#[derive(Debug, Clone)]
pub struct RunRecorder {
    /// Named counters and latency histograms.
    pub metrics: Metrics,
    /// The epoch-sampled time series.
    pub series: EpochSeries,
    /// The pager decision audit log.
    pub audit: AuditLog,
    sched: Vec<SchedEvent>,
    ops: Vec<OpEvent>,
    shootdowns: Vec<ShootdownEvent>,
    sim_time: Ns,
}

impl Default for RunRecorder {
    fn default() -> RunRecorder {
        RunRecorder::new(ObsConfig::default())
    }
}

impl RunRecorder {
    /// A recorder with the given configuration.
    pub fn new(cfg: ObsConfig) -> RunRecorder {
        RunRecorder {
            metrics: Metrics::new(),
            series: EpochSeries::new(cfg.epoch),
            audit: AuditLog::new(),
            sched: Vec::new(),
            ops: Vec::new(),
            shootdowns: Vec::new(),
            sim_time: Ns::ZERO,
        }
    }

    /// Scheduler timeline events, in record order.
    pub fn sched_events(&self) -> &[SchedEvent] {
        &self.sched
    }

    /// Pager operation events, in record order.
    pub fn op_events(&self) -> &[OpEvent] {
        &self.ops
    }

    /// Shootdown events, in record order.
    pub fn shootdown_events(&self) -> &[ShootdownEvent] {
        &self.shootdowns
    }

    /// Final sim time (set by [`Recorder::on_run_end`]).
    pub fn sim_time(&self) -> Ns {
        self.sim_time
    }

    fn op_hist_name(op: &PageOp) -> &'static str {
        match op {
            PageOp::Migrate { .. } => "pager_migrate_ns",
            PageOp::Replicate { .. } => "pager_replicate_ns",
            PageOp::Collapse { .. } => "pager_collapse_ns",
            PageOp::Remap { .. } => "pager_remap_ns",
        }
    }

    fn op_name(op: &PageOp) -> &'static str {
        match op {
            PageOp::Migrate { .. } => "migrate",
            PageOp::Replicate { .. } => "replicate",
            PageOp::Collapse { .. } => "collapse",
            PageOp::Remap { .. } => "remap",
        }
    }
}

impl Recorder for RunRecorder {
    fn on_context_switch(&mut self, cpu: usize, now: Ns, pid: Option<u64>) {
        self.metrics.inc("context_switches");
        self.sched.push(SchedEvent { cpu, now, pid });
    }

    fn on_miss(&mut self, _rec: &MissRecord, latency: Ns, remote: bool) {
        self.metrics.observe("miss_latency_ns", latency.0);
        if remote {
            self.metrics.inc("misses_remote");
            self.metrics.observe("miss_latency_remote_ns", latency.0);
        } else {
            self.metrics.inc("misses_local");
            self.metrics.observe("miss_latency_local_ns", latency.0);
        }
    }

    fn on_tlb_fill(&mut self, _rec: &MissRecord, cost: Ns) {
        self.metrics.inc("tlb_refills");
        self.metrics.observe("tlb_refill_ns", cost.0);
    }

    fn on_decision(&mut self, d: &Decision) {
        self.metrics.inc(match d.action {
            AuditAction::Migrate { .. } => "decisions_migrate",
            AuditAction::Replicate { .. } => "decisions_replicate",
            AuditAction::Collapse => "decisions_collapse",
            AuditAction::Remap { .. } => "decisions_remap",
        });
        self.audit.push(AuditEvent::Decision(*d));
    }

    fn on_no_page(&mut self, now: Ns, page: VirtPage, action: &PolicyAction) {
        if let Some(action) = AuditAction::of(action) {
            self.metrics.inc("decisions_no_page");
            self.audit.push(AuditEvent::NoPage { now, page, action });
        }
    }

    fn on_interval_reset(&mut self, now: Ns, epoch: u64) {
        self.metrics.inc("interval_resets");
        self.audit.push(AuditEvent::Reset { now, epoch });
    }

    fn on_page_op(&mut self, cpu: usize, start: Ns, op: &PageOp, outcome: &OpOutcome) {
        let (dur, outcome_name) = match outcome {
            OpOutcome::Done { latency } => {
                self.metrics.observe("pager_op_ns", latency.0);
                self.metrics.observe(Self::op_hist_name(op), latency.0);
                self.metrics.inc("pager_ops_done");
                (*latency, "done")
            }
            OpOutcome::NoPage => {
                self.metrics.inc("pager_ops_no_page");
                (Ns::ZERO, "no_page")
            }
            OpOutcome::Skipped => {
                self.metrics.inc("pager_ops_skipped");
                (Ns::ZERO, "skipped")
            }
            OpOutcome::Failed { .. } => {
                self.metrics.inc("pager_ops_failed");
                (Ns::ZERO, "failed")
            }
        };
        self.ops.push(OpEvent {
            cpu,
            start,
            name: Self::op_name(op),
            page: op.page(),
            dur,
            outcome: outcome_name,
        });
    }

    fn on_shootdown(&mut self, now: Ns, stats: &BatchStats) {
        self.metrics.inc("shootdowns");
        self.metrics
            .observe("shootdown_tlbs", stats.tlbs_flushed as u64);
        self.metrics
            .observe("shootdown_flush_ops", stats.flush_ops as u64);
        self.shootdowns.push(ShootdownEvent {
            now,
            tlbs: stats.tlbs_flushed,
            flush_ops: stats.flush_ops,
        });
    }

    fn on_fault(&mut self, event: &FaultEvent) {
        self.metrics.inc("faults_injected");
        self.metrics.inc(match event.kind {
            FaultKind::StormSeize { .. } => "fault_storm_seize",
            FaultKind::StormRelease { .. } => "fault_storm_release",
            FaultKind::CopyAbort { .. } => "fault_copy_abort",
            FaultKind::AllocBlocked { .. } => "fault_alloc_blocked",
            FaultKind::AckDelay { .. } => "fault_ack_delay",
            FaultKind::InterruptLost => "fault_interrupt_lost",
            FaultKind::CounterCapped { .. } => "fault_counter_capped",
        });
        self.audit.push(AuditEvent::Fault(*event));
    }

    fn epoch_due(&self, now: Ns) -> bool {
        self.series.due(now)
    }

    fn on_epoch(&mut self, now: Ns, view: &SampleView) {
        self.series.push(now, *view);
    }

    fn on_run_end(&mut self, sim_time: Ns, view: &SampleView) {
        self.sim_time = sim_time;
        // Always close the series with the final state, so even a run
        // shorter than one epoch has a last row.
        self.series.push(sim_time, *view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_types::NodeId;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn null_recorder_is_disabled() {
        assert!(!NullRecorder::ENABLED);
        assert!(RunRecorder::ENABLED);
        let null = NullRecorder;
        assert!(!null.epoch_due(Ns(1_000_000_000)));
    }

    #[test]
    fn run_recorder_accumulates_streams() {
        let mut r = RunRecorder::default();
        r.on_context_switch(0, Ns(0), Some(1));
        r.on_shootdown(
            Ns(5),
            &BatchStats {
                total_latency: Ns(100),
                tlbs_flushed: 8,
                flush_ops: 2,
            },
        );
        let op = PageOp::migrate(VirtPage(3), NodeId(1));
        r.on_page_op(0, Ns(10), &op, &OpOutcome::Done { latency: Ns(400) });
        r.on_page_op(0, Ns(20), &op, &OpOutcome::Skipped);
        r.on_page_op(
            0,
            Ns(30),
            &op,
            &OpOutcome::Failed {
                reason: ccnuma_kernel::OpFailReason::CopyAborted,
            },
        );
        r.on_fault(&FaultEvent {
            now: Ns(30),
            kind: FaultKind::CopyAbort { page: VirtPage(3) },
        });
        r.on_run_end(Ns(1000), &SampleView::default());
        assert_eq!(r.metrics.counter("context_switches"), 1);
        assert_eq!(r.metrics.counter("pager_ops_done"), 1);
        assert_eq!(r.metrics.counter("pager_ops_skipped"), 1);
        assert_eq!(r.metrics.counter("pager_ops_failed"), 1);
        assert_eq!(r.metrics.counter("faults_injected"), 1);
        assert_eq!(r.metrics.counter("fault_copy_abort"), 1);
        assert_eq!(r.audit.len(), 1, "fault lands in the audit log");
        assert_eq!(r.op_events()[2].outcome, "failed");
        assert_eq!(r.metrics.histogram("pager_migrate_ns").unwrap().count(), 1);
        assert_eq!(r.op_events().len(), 3);
        assert_eq!(r.shootdown_events().len(), 1);
        assert_eq!(r.sim_time(), Ns(1000));
        assert_eq!(r.series.len(), 1, "run end closes the series");
    }
}
