//! A registry of named counters and histograms.
//!
//! Names are `&'static str` so recording never allocates; storage is
//! `BTreeMap` so every iteration (and therefore every export) is in
//! deterministic name order.

use crate::hist::Histogram;
use crate::json::{push_json_str, JsonWriter};
use std::collections::BTreeMap;

/// Named counters plus named log2 histograms.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `v` to counter `name`, creating it at zero first.
    #[inline]
    pub fn add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Increments counter `name` by one.
    #[inline]
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Records `v` into histogram `name`, creating it first if needed.
    #[inline]
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().record(v);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.hists.iter().map(|(&k, v)| (k, v))
    }

    /// Folds `other`'s counters and histograms into `self`.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, v) in other.counters() {
            self.add(name, v);
        }
        for (name, h) in other.histograms() {
            self.hists.entry(name).or_default().merge(h);
        }
    }

    /// Renders the registry as one JSON object with `counters` and
    /// `histograms` members; histogram entries carry count/min/max/mean
    /// and the p50/p90/p99 accessors. Deterministic: name order, integer
    /// fields, and mean printed via Rust's shortest-roundtrip float
    /// formatting.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("counters");
        w.begin_obj();
        for (name, v) in self.counters() {
            w.key(name);
            w.raw(&v.to_string());
        }
        w.end_obj();
        w.key("histograms");
        w.begin_obj();
        for (name, h) in self.histograms() {
            w.key(name);
            w.begin_obj();
            for (k, v) in [
                ("count", h.count()),
                ("min", h.min()),
                ("max", h.max()),
                ("p50", h.p50()),
                ("p90", h.p90()),
                ("p99", h.p99()),
            ] {
                w.key(k);
                w.raw(&v.to_string());
            }
            w.key("sum");
            w.raw(&h.sum().to_string());
            w.key("mean");
            w.raw(&format!("{}", h.mean()));
            w.key("buckets");
            // Sparse rendering: only non-empty buckets, as "lo": count.
            w.begin_obj();
            for (i, &c) in h.buckets().iter().enumerate() {
                if c > 0 {
                    let mut key = String::new();
                    push_json_str(&mut key, &crate::hist::bucket_bounds(i).0.to_string());
                    w.raw_key(&key);
                    w.raw(&c.to_string());
                }
            }
            w.end_obj();
            w.end_obj();
        }
        w.end_obj();
        w.end_obj();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_round_trip() {
        let mut m = Metrics::new();
        m.inc("a");
        m.add("a", 4);
        m.observe("lat", 100);
        m.observe("lat", 200);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.histogram("lat").unwrap().count(), 2);
        assert!(m.histogram("missing").is_none());
    }

    #[test]
    fn merge_sums_both_kinds() {
        let mut a = Metrics::new();
        a.inc("x");
        a.observe("h", 1);
        let mut b = Metrics::new();
        b.add("x", 2);
        b.observe("h", 3);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let mut m = Metrics::new();
        m.inc("zeta");
        m.inc("alpha");
        m.observe("lat", 7);
        let j1 = m.to_json();
        let j2 = m.to_json();
        assert_eq!(j1, j2);
        assert!(j1.find("\"alpha\"").unwrap() < j1.find("\"zeta\"").unwrap());
        assert!(j1.contains("\"histograms\""));
        assert!(j1.contains("\"p99\""));
    }
}
