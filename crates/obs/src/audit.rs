//! The pager decision audit log.
//!
//! Every migrate / replicate / collapse / remap the policy engine decides
//! is recorded with the miss that triggered it and the page's counter
//! state at decision time, so policy behaviour is explainable
//! reference-by-reference. "No page" reclassifications (the kernel found
//! no free frame, Table 4) and counter reset-interval boundaries are
//! logged too, which is what lets [`AuditLog::totals`] reproduce the
//! run's `PolicyStats` action counts exactly.

use ccnuma_core::PolicyAction;
use ccnuma_faults::FaultEvent;
use ccnuma_types::{NodeId, Ns, ProcId, VirtPage};

/// The action half of a decision entry: the non-trivial
/// [`PolicyAction`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditAction {
    /// Move the master to `to`.
    Migrate {
        /// Destination node.
        to: NodeId,
    },
    /// Create a replica at `at`.
    Replicate {
        /// Node receiving the replica.
        at: NodeId,
    },
    /// Repoint a stale mapping at the copy on `to`.
    Remap {
        /// Node holding the copy.
        to: NodeId,
    },
    /// Collapse all replicas to the master.
    Collapse,
}

impl AuditAction {
    /// Maps a [`PolicyAction`] to its audit form; `None` for
    /// `PolicyAction::Nothing`.
    pub fn of(action: &PolicyAction) -> Option<AuditAction> {
        match *action {
            PolicyAction::Migrate { to } => Some(AuditAction::Migrate { to }),
            PolicyAction::Replicate { at } => Some(AuditAction::Replicate { at }),
            PolicyAction::Remap { to } => Some(AuditAction::Remap { to }),
            PolicyAction::Collapse => Some(AuditAction::Collapse),
            PolicyAction::Nothing(_) => None,
        }
    }

    /// Short lowercase name for exports.
    pub fn name(&self) -> &'static str {
        match self {
            AuditAction::Migrate { .. } => "migrate",
            AuditAction::Replicate { .. } => "replicate",
            AuditAction::Remap { .. } => "remap",
            AuditAction::Collapse => "collapse",
        }
    }

    /// The target node, if the action has one.
    pub fn target(&self) -> Option<NodeId> {
        match *self {
            AuditAction::Migrate { to } | AuditAction::Remap { to } => Some(to),
            AuditAction::Replicate { at } => Some(at),
            AuditAction::Collapse => None,
        }
    }
}

/// One policy decision with its triggering context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Sim time of the counted miss.
    pub now: Ns,
    /// The page decided on.
    pub page: VirtPage,
    /// The processor whose miss triggered the decision.
    pub proc: ProcId,
    /// That processor's node.
    pub node: NodeId,
    /// Whether the triggering miss was a store.
    pub is_write: bool,
    /// Node the accessor's mapping pointed at.
    pub mapped_node: NodeId,
    /// Memory pressure on the accessor's node at decision time.
    pub pressure: bool,
    /// The chosen action.
    pub action: AuditAction,
    /// The triggering processor's per-page miss counter at decision time
    /// (post-decision: cleared counters read 0).
    pub counter: u32,
    /// The page's write counter at decision time.
    pub writes: u32,
    /// Migrations charged against the page this interval.
    pub migrates: u32,
}

/// One audit event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AuditEvent {
    /// The engine chose an action.
    Decision(Decision),
    /// A previously decided page move found no free frame and was
    /// reclassified (Table 4 "No Page").
    NoPage {
        /// Sim time of the failed kernel operation.
        now: Ns,
        /// The page whose move failed.
        page: VirtPage,
        /// The move that failed (`Migrate` or `Replicate`).
        action: AuditAction,
    },
    /// A counter reset-interval boundary passed.
    Reset {
        /// Sim time of the first counted miss in the new interval.
        now: Ns,
        /// The new interval's index.
        epoch: u64,
    },
    /// A fault was injected (chaos runs only). Fault events interleave
    /// with decisions in time order but are excluded from
    /// [`AuditLog::totals`], which mirrors `PolicyStats` arithmetic.
    Fault(FaultEvent),
}

impl AuditEvent {
    /// Sim time of the event.
    pub fn time(&self) -> Ns {
        match *self {
            AuditEvent::Decision(d) => d.now,
            AuditEvent::NoPage { now, .. } | AuditEvent::Reset { now, .. } => now,
            AuditEvent::Fault(e) => e.now,
        }
    }
}

/// Net action counts derived from an audit log: decisions minus their
/// "no page" reclassifications — the same arithmetic `PolicyStats` does.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditTotals {
    /// Net migrations (decided minus no-page).
    pub migrations: u64,
    /// Net replications (decided minus no-page).
    pub replications: u64,
    /// Collapses decided.
    pub collapses: u64,
    /// Remaps decided.
    pub remaps: u64,
    /// Page moves reclassified as "no page".
    pub no_page: u64,
    /// Reset-interval boundaries observed.
    pub resets: u64,
}

/// An append-only, time-ordered audit log.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    events: Vec<AuditEvent>,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> AuditLog {
        AuditLog::default()
    }

    /// Appends one event.
    pub fn push(&mut self, event: AuditEvent) {
        self.events.push(event);
    }

    /// The events, in the order they were recorded.
    pub fn events(&self) -> &[AuditEvent] {
        &self.events
    }

    /// Number of events logged.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Net totals over the whole log. For a full-system run these equal
    /// the run's `PolicyStats` action counts exactly.
    pub fn totals(&self) -> AuditTotals {
        let mut t = AuditTotals::default();
        for e in &self.events {
            match e {
                AuditEvent::Decision(d) => match d.action {
                    AuditAction::Migrate { .. } => t.migrations += 1,
                    AuditAction::Replicate { .. } => t.replications += 1,
                    AuditAction::Collapse => t.collapses += 1,
                    AuditAction::Remap { .. } => t.remaps += 1,
                },
                AuditEvent::NoPage { action, .. } => {
                    match action {
                        AuditAction::Migrate { .. } => t.migrations -= 1,
                        AuditAction::Replicate { .. } => t.replications -= 1,
                        _ => {}
                    }
                    t.no_page += 1;
                }
                AuditEvent::Reset { .. } => t.resets += 1,
                // Injected faults are not policy actions; the audit ==
                // PolicyStats equality must hold under chaos too.
                AuditEvent::Fault(_) => {}
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(action: AuditAction) -> AuditEvent {
        AuditEvent::Decision(Decision {
            now: Ns(1),
            page: VirtPage(7),
            proc: ProcId(0),
            node: NodeId(0),
            is_write: false,
            mapped_node: NodeId(1),
            pressure: false,
            action,
            counter: 32,
            writes: 0,
            migrates: 0,
        })
    }

    #[test]
    fn totals_net_out_no_page() {
        let mut log = AuditLog::new();
        log.push(decision(AuditAction::Migrate { to: NodeId(2) }));
        log.push(decision(AuditAction::Migrate { to: NodeId(3) }));
        log.push(decision(AuditAction::Replicate { at: NodeId(1) }));
        log.push(AuditEvent::NoPage {
            now: Ns(2),
            page: VirtPage(7),
            action: AuditAction::Migrate { to: NodeId(3) },
        });
        log.push(decision(AuditAction::Collapse));
        log.push(AuditEvent::Reset {
            now: Ns(3),
            epoch: 1,
        });
        let t = log.totals();
        assert_eq!(t.migrations, 1);
        assert_eq!(t.replications, 1);
        assert_eq!(t.collapses, 1);
        assert_eq!(t.remaps, 0);
        assert_eq!(t.no_page, 1);
        assert_eq!(t.resets, 1);
    }

    #[test]
    fn fault_events_carry_time_but_not_totals() {
        use ccnuma_faults::FaultKind;
        let mut log = AuditLog::new();
        log.push(decision(AuditAction::Migrate { to: NodeId(2) }));
        let before = log.totals();
        log.push(AuditEvent::Fault(FaultEvent {
            now: Ns(42),
            kind: FaultKind::CopyAbort { page: VirtPage(7) },
        }));
        assert_eq!(log.events()[1].time(), Ns(42));
        assert_eq!(
            log.totals(),
            before,
            "fault entries must not perturb totals"
        );
        assert_eq!(before.migrations, 1);
    }

    #[test]
    fn audit_action_of_policy_action() {
        use ccnuma_core::NoActionReason;
        assert_eq!(
            AuditAction::of(&PolicyAction::Migrate { to: NodeId(1) }),
            Some(AuditAction::Migrate { to: NodeId(1) })
        );
        assert_eq!(
            AuditAction::of(&PolicyAction::Nothing(NoActionReason::NotHot)),
            None
        );
        assert_eq!(AuditAction::Collapse.name(), "collapse");
        assert_eq!(AuditAction::Collapse.target(), None);
        assert_eq!(
            AuditAction::Replicate { at: NodeId(4) }.target(),
            Some(NodeId(4))
        );
    }
}
