//! Observability for the CC-NUMA simulator.
//!
//! The paper's analysis lives in *time-resolved* behaviour — how pages
//! heat up, when the pager migrates vs. replicates vs. collapses, how
//! kernel overhead and directory occupancy evolve (§7) — but a
//! `RunReport` only carries end-of-run aggregates. This crate adds the
//! missing instrumentation layer:
//!
//! * [`Recorder`] — the hook trait the simulator drives. The simulator
//!   is generic over it and monomorphized, so the no-op
//!   [`NullRecorder`] compiles every hook to nothing: with
//!   observability off, the run path is byte-identical to an
//!   uninstrumented simulator (the determinism tests prove it).
//! * [`Metrics`] — named counters and log2-bucketed latency
//!   [`Histogram`]s (miss latency, pager step costs, TLB-shootdown
//!   batch sizes) with p50/p90/p99 accessors.
//! * [`EpochSeries`] — a sim-time epoch sampler snapshotting local-miss
//!   percentage, page-operation counts, replica footprint and directory
//!   occupancy, reproducing the paper's over-time behaviour per run.
//! * [`AuditLog`] — every migrate/replicate/collapse/remap decision with
//!   its triggering counters, plus "no page" reclassifications and
//!   reset-interval boundaries; [`AuditLog::totals`] reproduces the
//!   run's `PolicyStats` action counts exactly.
//! * [`export`] — deterministic artifact writers: JSONL event log, CSV
//!   time series, and Chrome trace-event JSON with per-CPU tracks for
//!   scheduler quanta, page operations and TLB shootdowns (loadable in
//!   Perfetto).
//! * [`profile`] — the *host-time* counterpart: a [`Profiler`] hook
//!   trait with a provably-free [`NullProfiler`] off-path and a
//!   stride-sampling [`SpanProfiler`] measuring where the wall clock
//!   goes per runner phase, codec chunk and sweep replay.
//!
//! All recorded data except the [`profile`] module's is keyed by sim
//! time and spec identity, never wall-clock, so artifacts for the same
//! run spec are byte-identical across thread counts and machines.
//! Profile artifacts are the documented exception: their *structure*
//! (phases, entry and span counts, strides) is deterministic, their
//! durations are honest host measurements.
//!
//! # Examples
//!
//! Record by hand and export:
//!
//! ```
//! use ccnuma_obs::{ObsConfig, Recorder, RunRecorder, SampleView};
//! use ccnuma_types::Ns;
//!
//! let mut rec = RunRecorder::new(ObsConfig { epoch: Ns(1000) });
//! assert!(rec.epoch_due(Ns(1000)));
//! rec.on_epoch(Ns(1000), &SampleView::default());
//! rec.on_run_end(Ns(2500), &SampleView::default());
//! assert_eq!(rec.series.len(), 2);
//!
//! let mut csv = Vec::new();
//! ccnuma_obs::export::write_timeseries_csv(&mut csv, &rec.series).unwrap();
//! assert!(String::from_utf8(csv).unwrap().lines().count() == 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
pub mod checkpoint;
pub mod export;
mod hist;
pub mod json;
mod metrics;
pub mod profile;
mod recorder;
mod sample;
mod verbosity;

pub use audit::{AuditAction, AuditEvent, AuditLog, AuditTotals, Decision};
pub use checkpoint::{CheckpointJournal, CheckpointRecord, JournalContents, CHECKPOINT_SCHEMA};
pub use export::{artifact_slug, fnv1a64, write_run_artifacts};
pub use hist::{bucket_bounds, bucket_of, Histogram, BUCKETS};
pub use json::JsonValue;
pub use metrics::Metrics;
pub use profile::{
    write_profile_artifacts, NullProfiler, Phase, Profiler, SpanEvent, SpanProfiler, PHASES,
    PROFILE_SCHEMA,
};
pub use recorder::{
    NullRecorder, ObsConfig, OpEvent, Recorder, RunRecorder, SchedEvent, ShootdownEvent,
};
pub use sample::{EpochSeries, SampleView, Snapshot};
pub use verbosity::Verbosity;
