//! Minimal deterministic JSON emission and parsing.
//!
//! The build environment is fully offline, so there is no serde; all
//! observability artifacts are rendered through this small writer
//! instead. Output is deterministic by construction: callers control key
//! order, integers render via `u64`/`i64` formatting, and floats via
//! Rust's shortest-roundtrip formatting.
//!
//! [`JsonValue`] is the matching reader: a small recursive-descent
//! parser for the artifacts this workspace writes (`metrics.json`,
//! `run-metadata.json`, `BENCH_hotpath.json`, `profile.json`), used by
//! the fleet-aggregation (`repro obs report`) and bench-regression
//! (`repro bench --check`) surfaces. Numbers keep their raw text so
//! `u64` counters survive without a float round-trip.

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A `String`-backed JSON writer that tracks comma placement.
///
/// # Examples
///
/// ```
/// use ccnuma_obs::json::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_obj();
/// w.key("name");
/// w.str("raytrace");
/// w.key("runs");
/// w.begin_arr();
/// w.raw("1");
/// w.raw("2");
/// w.end_arr();
/// w.end_obj();
/// assert_eq!(w.finish(), r#"{"name":"raytrace","runs":[1,2]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn pre_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_obj(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.need_comma.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_obj(&mut self) {
        self.need_comma.pop();
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_arr(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.need_comma.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_arr(&mut self) {
        self.need_comma.pop();
        self.out.push(']');
    }

    /// Writes an object key (escaped) and its `:`.
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        push_json_str(&mut self.out, k);
        self.out.push(':');
        // The upcoming value must not emit its own comma.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
    }

    /// Writes a pre-escaped key (already quoted) and its `:`.
    pub fn raw_key(&mut self, quoted: &str) {
        self.pre_value();
        self.out.push_str(quoted);
        self.out.push(':');
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
    }

    /// Writes a string value (escaped).
    pub fn str(&mut self, s: &str) {
        self.pre_value();
        push_json_str(&mut self.out, s);
    }

    /// Writes a raw token — a number, `true`, `null`, or pre-rendered
    /// JSON.
    pub fn raw(&mut self, token: &str) {
        self.pre_value();
        self.out.push_str(token);
    }

    /// Finishes and returns the accumulated JSON text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// A parsed JSON document.
///
/// Object members keep their textual order (the writers in this
/// workspace emit deterministic key order, and round-tripping should
/// not scramble it); numbers keep their raw rendering and convert on
/// demand via [`JsonValue::as_u64`] / [`JsonValue::as_f64`].
///
/// # Examples
///
/// ```
/// use ccnuma_obs::JsonValue;
///
/// let v = JsonValue::parse(r#"{"runs":[{"refs":12}],"ok":true}"#).unwrap();
/// assert_eq!(v.get("runs").unwrap().as_array().unwrap().len(), 1);
/// assert_eq!(v.get("runs").unwrap().as_array().unwrap()[0]
///     .get("refs").and_then(JsonValue::as_u64), Some(12));
/// assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, members in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a byte-offset-tagged message on malformed input.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` on missing key or non-object).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's members in source order, if this is an object.
    pub fn members(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as an exact `u64` (integers only — no float text).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an exact `u128` (integers only).
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {}", *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| JsonValue::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        *pos += 4;
                        // Our writers only \u-escape control characters;
                        // map anything unpaired to the replacement char
                        // rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{}`", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so the
                // byte slice is valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if raw.is_empty() || raw.parse::<f64>().is_err() {
        return Err(format!("bad number at byte {start}"));
    }
    Ok(JsonValue::Num(raw.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\x01");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX),
            "u64::MAX survives without a float round-trip"
        );
        assert_eq!(JsonValue::parse("-2.5e3").unwrap().as_f64(), Some(-2500.0));
        let v = JsonValue::parse(r#"{"a":[1,{"b":"x"},[]],"c":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1]
                .get("b")
                .and_then(JsonValue::as_str),
            Some("x")
        );
        assert_eq!(v.get("c").unwrap().members(), Some(&[][..]));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_escaped_strings() {
        let v = JsonValue::parse(r#""a\"b\\c\ndA\u0001\t\/""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{1}\t/"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "nul", "1 2", "{\"a\":}", "\"open", "--1",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn roundtrips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("name");
        w.str("ray\"trace\n");
        w.key("vals");
        w.begin_arr();
        w.raw("0");
        w.raw("3.25");
        w.raw("null");
        w.end_arr();
        w.end_obj();
        let text = w.finish();
        let v = JsonValue::parse(&text).unwrap();
        assert_eq!(
            v.get("name").and_then(JsonValue::as_str),
            Some("ray\"trace\n")
        );
        let vals = v.get("vals").unwrap().as_array().unwrap();
        assert_eq!(vals[0].as_u64(), Some(0));
        assert_eq!(vals[1].as_f64(), Some(3.25));
        assert_eq!(vals[2], JsonValue::Null);
    }

    #[test]
    fn nested_structures_place_commas() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("a");
        w.begin_arr();
        w.begin_obj();
        w.key("x");
        w.raw("1");
        w.end_obj();
        w.raw("2");
        w.end_arr();
        w.key("b");
        w.raw("true");
        w.end_obj();
        assert_eq!(w.finish(), r#"{"a":[{"x":1},2],"b":true}"#);
    }
}
