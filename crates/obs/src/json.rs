//! Minimal deterministic JSON emission.
//!
//! The build environment is fully offline, so there is no serde; all
//! observability artifacts are rendered through this small writer
//! instead. Output is deterministic by construction: callers control key
//! order, integers render via `u64`/`i64` formatting, and floats via
//! Rust's shortest-roundtrip formatting.

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A `String`-backed JSON writer that tracks comma placement.
///
/// # Examples
///
/// ```
/// use ccnuma_obs::json::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_obj();
/// w.key("name");
/// w.str("raytrace");
/// w.key("runs");
/// w.begin_arr();
/// w.raw("1");
/// w.raw("2");
/// w.end_arr();
/// w.end_obj();
/// assert_eq!(w.finish(), r#"{"name":"raytrace","runs":[1,2]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn pre_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_obj(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.need_comma.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_obj(&mut self) {
        self.need_comma.pop();
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_arr(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.need_comma.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_arr(&mut self) {
        self.need_comma.pop();
        self.out.push(']');
    }

    /// Writes an object key (escaped) and its `:`.
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        push_json_str(&mut self.out, k);
        self.out.push(':');
        // The upcoming value must not emit its own comma.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
    }

    /// Writes a pre-escaped key (already quoted) and its `:`.
    pub fn raw_key(&mut self, quoted: &str) {
        self.pre_value();
        self.out.push_str(quoted);
        self.out.push(':');
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
    }

    /// Writes a string value (escaped).
    pub fn str(&mut self, s: &str) {
        self.pre_value();
        push_json_str(&mut self.out, s);
    }

    /// Writes a raw token — a number, `true`, `null`, or pre-rendered
    /// JSON.
    pub fn raw(&mut self, token: &str) {
        self.pre_value();
        self.out.push_str(token);
    }

    /// Finishes and returns the accumulated JSON text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\x01");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn nested_structures_place_commas() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("a");
        w.begin_arr();
        w.begin_obj();
        w.key("x");
        w.raw("1");
        w.end_obj();
        w.raw("2");
        w.end_arr();
        w.key("b");
        w.raw("true");
        w.end_obj();
        assert_eq!(w.finish(), r#"{"a":[{"x":1},2],"b":true}"#);
    }
}
