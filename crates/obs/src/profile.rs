//! Host-time span profiler: scoped phase timers for the simulator's
//! wall-clock behaviour.
//!
//! Everything else in this crate records *sim time* and is held
//! byte-identical across machines and thread counts. This module is the
//! deliberate exception: it measures where the *host* spends its wall
//! clock — per phase of the runner (sched / memory / pager / coherence),
//! the trace codec, and sweep replays — so optimisation work (sharding
//! the simulator, the intra-run-parallelism plan) can be judged by
//! measurement instead of folklore.
//!
//! The design mirrors [`Recorder`](crate::Recorder):
//!
//! * [`Profiler`] is the hook trait the instrumented code drives. Hosts
//!   are generic over it and monomorphized, so the no-op
//!   [`NullProfiler`] (`ENABLED == false`) compiles every `enter`/`exit`
//!   pair to nothing — the off path is provably free and the simulator's
//!   output stays byte-identical to an unprofiled build.
//! * [`SpanProfiler`] is the live implementation: per-phase entry
//!   counts, a log2 [`Histogram`] of span durations, and a bounded ring
//!   buffer of raw spans for the host-time Chrome trace. Hot phases are
//!   *stride-sampled*: every entry is counted (cheap — one increment and
//!   a mask test), but only every [`Phase::stride`]-th entry pays for a
//!   pair of `Instant::now()` calls, which is what keeps whole-run
//!   overhead under the 2% budget on per-reference phases.
//!
//! Determinism contract: `entries` and `spans` derive purely from
//! deterministic simulation event counts and fixed strides, so the
//! *structure* of a profile artifact (phases, entries, spans, strides)
//! is identical across job counts and repeat runs. The *durations* are
//! host measurements and naturally vary; consumers comparing artifacts
//! must exclude them (the repo's determinism tests do).
//!
//! # Examples
//!
//! ```
//! use ccnuma_obs::{Phase, Profiler, SpanProfiler};
//!
//! let mut prof = SpanProfiler::new();
//! for _ in 0..10 {
//!     let span = prof.enter(Phase::Pager);
//!     // ... do the phase's work ...
//!     prof.exit(Phase::Pager, span);
//! }
//! assert_eq!(prof.entries(Phase::Pager), 10);
//! // Pager is a coarse phase (stride 1): every entry was timed.
//! assert_eq!(prof.spans(Phase::Pager), 10);
//! let json = prof.to_json();
//! assert!(json.starts_with("{\"schema\":\"ccnuma-profile/1\""));
//! ```
//!
//! The null path is statically off:
//!
//! ```
//! use ccnuma_obs::{NullProfiler, Phase, Profiler};
//!
//! assert!(!NullProfiler::ENABLED);
//! let mut off = NullProfiler;
//! assert!(off.enter(Phase::Memory).is_none());
//! ```

use crate::hist::Histogram;
use crate::json::JsonWriter;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Schema tag of the per-run `profile.json` artifact.
pub const PROFILE_SCHEMA: &str = "ccnuma-profile/1";

/// Instrumented host phases.
///
/// One enum (rather than free-form string labels) keeps `enter`/`exit`
/// allocation-free and lets per-phase state live in a flat array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// One whole simulator run, entry to report.
    Run,
    /// Scheduler quantum-boundary work (re-query, context switch,
    /// adaptive tick, storm driving).
    Sched,
    /// One memory reference through TLB / L2 / coherence / NUMA memory
    /// (stride-sampled: this is the per-reference hot path).
    Memory,
    /// One coherence write (victim invalidation) inside the memory
    /// phase (stride-sampled).
    Coherence,
    /// One pager batch service (page ops, shootdown, outcome handling).
    Pager,
    /// One observability epoch sample (building the sample view).
    Epoch,
    /// One trace-store chunk encode (delta encoding + checksum + write).
    TraceEncode,
    /// One trace-store chunk decode (read + checksum + delta decoding).
    TraceDecode,
    /// One policy-simulator replay of a sweep cell.
    Replay,
    /// One window merge in sharded execution: applying lane events
    /// (first touches, coherence writes, policy driving) in canonical
    /// order on the coordinating thread.
    Merge,
}

/// Number of phases (length of [`Phase::ALL`]).
pub const PHASES: usize = 10;

impl Phase {
    /// Every phase, in the canonical artifact order.
    pub const ALL: [Phase; PHASES] = [
        Phase::Run,
        Phase::Sched,
        Phase::Memory,
        Phase::Coherence,
        Phase::Pager,
        Phase::Epoch,
        Phase::TraceEncode,
        Phase::TraceDecode,
        Phase::Replay,
        Phase::Merge,
    ];

    /// Stable artifact name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Run => "run",
            Phase::Sched => "sched",
            Phase::Memory => "memory",
            Phase::Coherence => "coherence",
            Phase::Pager => "pager",
            Phase::Epoch => "epoch",
            Phase::TraceEncode => "trace_encode",
            Phase::TraceDecode => "trace_decode",
            Phase::Replay => "replay",
            Phase::Merge => "merge",
        }
    }

    /// Sampling stride: a power of two; every entry increments the
    /// counter, but only every stride-th entry is actually timed. The
    /// per-reference phases use a wide stride so two `Instant::now()`
    /// calls amortize over ~1k references; coarse phases time every
    /// entry.
    pub const fn stride(self) -> u64 {
        match self {
            Phase::Memory | Phase::Coherence => 1024,
            _ => 1,
        }
    }

    const fn index(self) -> usize {
        self as usize
    }
}

/// The profiling hooks instrumented code drives.
///
/// Hosts are generic over the profiler and monomorphized, exactly like
/// the simulator over [`Recorder`](crate::Recorder): with
/// [`NullProfiler`] both methods compile to nothing and
/// [`Profiler::ENABLED`] lets callers skip building anything costly.
pub trait Profiler: Send {
    /// `false` only for [`NullProfiler`].
    const ENABLED: bool = true;

    /// Begins one entry of `phase`. Returns the start token to hand back
    /// to [`Profiler::exit`]; `None` when this entry is not sampled (or
    /// profiling is off) — the matching `exit` is then free.
    fn enter(&mut self, phase: Phase) -> Option<Instant>;

    /// Ends the entry begun by the matching [`Profiler::enter`].
    fn exit(&mut self, phase: Phase, span: Option<Instant>);
}

/// The no-op profiler: profiling off, provably free.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProfiler;

impl Profiler for NullProfiler {
    const ENABLED: bool = false;

    #[inline(always)]
    fn enter(&mut self, _phase: Phase) -> Option<Instant> {
        None
    }

    #[inline(always)]
    fn exit(&mut self, _phase: Phase, _span: Option<Instant>) {}
}

/// Raw spans kept for the host-time Chrome trace before the ring wraps.
const DEFAULT_RING_SPANS: usize = 4096;

/// One timed span, relative to the profiler's creation instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Which phase the span timed.
    pub phase: Phase,
    /// Start offset from profiler creation, nanoseconds.
    pub start_ns: u64,
    /// Measured duration, nanoseconds.
    pub dur_ns: u64,
}

#[derive(Debug, Clone, Default)]
struct PhaseAgg {
    /// Every `enter`, sampled or not.
    entries: u64,
    /// Timed entries (`entries.div_ceil(stride)` by construction).
    spans: u64,
    /// Log2 histogram of timed span durations, nanoseconds.
    hist: Histogram,
}

/// The live profiler: per-phase aggregates plus a bounded ring of raw
/// spans for the host-time Chrome trace.
///
/// One `SpanProfiler` belongs to one thread of work (a simulator run, a
/// sweep worker); cross-thread aggregation goes through
/// [`SpanProfiler::merge`], which is commutative over the aggregates so
/// fleet totals never depend on completion order. Rings are *not*
/// merged — a ring is a per-thread debugging artifact, not a statistic.
#[derive(Debug, Clone)]
pub struct SpanProfiler {
    phases: [PhaseAgg; PHASES],
    ring: Vec<SpanEvent>,
    ring_cap: usize,
    ring_next: usize,
    /// Timed spans that overwrote an older ring slot.
    wrapped: u64,
    t0: Instant,
}

impl Default for SpanProfiler {
    fn default() -> SpanProfiler {
        SpanProfiler::new()
    }
}

impl SpanProfiler {
    /// A fresh profiler with the default ring capacity.
    pub fn new() -> SpanProfiler {
        SpanProfiler::with_ring_capacity(DEFAULT_RING_SPANS)
    }

    /// A fresh profiler keeping at most `cap` raw spans (older spans are
    /// overwritten once the ring is full; aggregates always see every
    /// timed span).
    pub fn with_ring_capacity(cap: usize) -> SpanProfiler {
        SpanProfiler {
            phases: std::array::from_fn(|_| PhaseAgg::default()),
            ring: Vec::new(),
            ring_cap: cap.max(1),
            ring_next: 0,
            wrapped: 0,
            t0: Instant::now(),
        }
    }

    /// Total entries recorded for `phase` (sampled or not).
    pub fn entries(&self, phase: Phase) -> u64 {
        self.phases[phase.index()].entries
    }

    /// Timed spans recorded for `phase`.
    pub fn spans(&self, phase: Phase) -> u64 {
        self.phases[phase.index()].spans
    }

    /// Duration histogram of `phase`'s timed spans (nanoseconds).
    pub fn histogram(&self, phase: Phase) -> &Histogram {
        &self.phases[phase.index()].hist
    }

    /// Summed timed nanoseconds in `phase`.
    pub fn total_ns(&self, phase: Phase) -> u128 {
        self.phases[phase.index()].hist.sum()
    }

    /// The raw spans currently held, oldest first.
    pub fn ring(&self) -> Vec<SpanEvent> {
        if self.ring.len() < self.ring_cap || self.ring_next == 0 {
            self.ring.clone()
        } else {
            let mut out = Vec::with_capacity(self.ring.len());
            out.extend_from_slice(&self.ring[self.ring_next..]);
            out.extend_from_slice(&self.ring[..self.ring_next]);
            out
        }
    }

    /// Timed spans whose raw record was overwritten by ring wraparound.
    pub fn wrapped_spans(&self) -> u64 {
        self.wrapped
    }

    /// Folds `other`'s per-phase aggregates into `self` (commutative and
    /// associative). `other`'s ring is intentionally dropped: raw spans
    /// are per-thread timelines and merging them would make the result
    /// depend on merge order.
    pub fn merge(&mut self, other: &SpanProfiler) {
        for (a, b) in self.phases.iter_mut().zip(other.phases.iter()) {
            a.entries += b.entries;
            a.spans += b.spans;
            a.hist.merge(&b.hist);
        }
    }

    /// Renders the `ccnuma-profile/1` artifact.
    ///
    /// Every phase appears, in [`Phase::ALL`] order, with its stride and
    /// its deterministic `entries`/`spans` counts; the `*_ns` fields and
    /// `buckets` are host measurements (excluded from determinism
    /// comparisons). Buckets are the sparse log2 rendering the metrics
    /// artifact uses, so fleet aggregation can rebuild and merge the
    /// histograms exactly.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("schema");
        w.str(PROFILE_SCHEMA);
        w.key("phases");
        w.begin_arr();
        for phase in Phase::ALL {
            let agg = &self.phases[phase.index()];
            w.begin_obj();
            w.key("phase");
            w.str(phase.name());
            w.key("stride");
            w.raw(&phase.stride().to_string());
            w.key("entries");
            w.raw(&agg.entries.to_string());
            w.key("spans");
            w.raw(&agg.spans.to_string());
            w.key("total_ns");
            w.raw(&agg.hist.sum().to_string());
            for (k, v) in [
                ("min_ns", agg.hist.min()),
                ("max_ns", agg.hist.max()),
                ("p50_ns", agg.hist.p50()),
                ("p90_ns", agg.hist.p90()),
                ("p99_ns", agg.hist.p99()),
            ] {
                w.key(k);
                w.raw(&v.to_string());
            }
            w.key("buckets");
            w.begin_obj();
            for (i, &c) in agg.hist.buckets().iter().enumerate() {
                if c > 0 {
                    w.key(&crate::hist::bucket_bounds(i).0.to_string());
                    w.raw(&c.to_string());
                }
            }
            w.end_obj();
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        let mut s = w.finish();
        s.push('\n');
        s
    }

    /// Writes the host-time Chrome trace (loadable in Perfetto): one
    /// track per phase, spans from the ring, timestamps relative to
    /// profiler creation. Purely a host-time artifact — nothing in it is
    /// expected to be deterministic.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_host_trace<W: Write>(&self, mut w: W) -> io::Result<()> {
        fn ts_us(ns: u64) -> String {
            format!("{}.{:03}", ns / 1000, ns % 1000)
        }
        let mut j = JsonWriter::new();
        j.begin_obj();
        j.key("displayTimeUnit");
        j.str("ns");
        j.key("traceEvents");
        j.begin_arr();
        for phase in Phase::ALL {
            j.begin_obj();
            j.key("ph");
            j.str("M");
            j.key("name");
            j.str("thread_name");
            j.key("pid");
            j.raw("1");
            j.key("tid");
            j.raw(&phase.index().to_string());
            j.key("args");
            j.begin_obj();
            j.key("name");
            j.str(phase.name());
            j.end_obj();
            j.end_obj();
        }
        for span in self.ring() {
            j.begin_obj();
            j.key("ph");
            j.str("X");
            j.key("cat");
            j.str("host");
            j.key("name");
            j.str(span.phase.name());
            j.key("pid");
            j.raw("1");
            j.key("tid");
            j.raw(&span.phase.index().to_string());
            j.key("ts");
            j.raw(&ts_us(span.start_ns));
            j.key("dur");
            j.raw(&ts_us(span.dur_ns));
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        w.write_all(j.finish().as_bytes())
    }
}

impl Profiler for SpanProfiler {
    #[inline]
    fn enter(&mut self, phase: Phase) -> Option<Instant> {
        let agg = &mut self.phases[phase.index()];
        let i = agg.entries;
        agg.entries += 1;
        // Strides are powers of two: the sampling test is one mask.
        if i & (phase.stride() - 1) == 0 {
            Some(Instant::now())
        } else {
            None
        }
    }

    fn exit(&mut self, phase: Phase, span: Option<Instant>) {
        let Some(start) = span else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let start_ns = start.duration_since(self.t0).as_nanos() as u64;
        let agg = &mut self.phases[phase.index()];
        agg.spans += 1;
        agg.hist.record(dur_ns);
        let event = SpanEvent {
            phase,
            start_ns,
            dur_ns,
        };
        if self.ring.len() < self.ring_cap {
            self.ring.push(event);
        } else {
            self.ring[self.ring_next] = event;
            self.ring_next = (self.ring_next + 1) % self.ring_cap;
            self.wrapped += 1;
        }
    }
}

/// Writes the profile artifact pair for one run under
/// `<dir>/runs/<slug>/`: `profile.json` (the `ccnuma-profile/1`
/// summary) and `host-trace.json` (the host-time Chrome trace). Returns
/// the run's artifact directory.
///
/// # Errors
///
/// Propagates directory-creation and file-write errors.
pub fn write_profile_artifacts(dir: &Path, slug: &str, prof: &SpanProfiler) -> io::Result<PathBuf> {
    let run_dir = dir.join("runs").join(slug);
    std::fs::create_dir_all(&run_dir)?;
    ccnuma_faults::io::atomic_write(&run_dir.join("profile.json"), prof.to_json().as_bytes())?;
    let mut buf = Vec::new();
    prof.write_host_trace(&mut buf)?;
    ccnuma_faults::io::atomic_write(&run_dir.join("host-trace.json"), &buf)?;
    Ok(run_dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn null_profiler_is_disabled_and_free() {
        assert!(!NullProfiler::ENABLED);
        assert!(SpanProfiler::ENABLED);
        let mut p = NullProfiler;
        let span = p.enter(Phase::Memory);
        assert!(span.is_none());
        p.exit(Phase::Memory, span);
    }

    #[test]
    fn strides_are_powers_of_two() {
        for phase in Phase::ALL {
            assert!(phase.stride().is_power_of_two(), "{:?}", phase);
        }
    }

    #[test]
    fn coarse_phase_times_every_entry() {
        let mut p = SpanProfiler::new();
        for _ in 0..5 {
            let span = p.enter(Phase::Pager);
            assert!(span.is_some());
            p.exit(Phase::Pager, span);
        }
        assert_eq!(p.entries(Phase::Pager), 5);
        assert_eq!(p.spans(Phase::Pager), 5);
        assert_eq!(p.histogram(Phase::Pager).count(), 5);
        assert_eq!(p.ring().len(), 5);
    }

    #[test]
    fn hot_phase_samples_on_the_stride() {
        let stride = Phase::Memory.stride();
        let n = stride * 3 + 7;
        let mut p = SpanProfiler::new();
        for _ in 0..n {
            let span = p.enter(Phase::Memory);
            p.exit(Phase::Memory, span);
        }
        assert_eq!(p.entries(Phase::Memory), n);
        assert_eq!(p.spans(Phase::Memory), n.div_ceil(stride));
        // The first entry is always sampled, so short phases still
        // produce at least one span.
        let mut q = SpanProfiler::new();
        let span = q.enter(Phase::Memory);
        assert!(span.is_some());
        q.exit(Phase::Memory, span);
        assert_eq!(q.spans(Phase::Memory), 1);
    }

    #[test]
    fn span_structure_is_deterministic_across_runs() {
        let drive = || {
            let mut p = SpanProfiler::new();
            for _ in 0..3000 {
                let s = p.enter(Phase::Memory);
                p.exit(Phase::Memory, s);
            }
            for _ in 0..17 {
                let s = p.enter(Phase::Pager);
                p.exit(Phase::Pager, s);
            }
            Phase::ALL.map(|ph| (p.entries(ph), p.spans(ph)))
        };
        assert_eq!(drive(), drive());
    }

    #[test]
    fn ring_wraps_without_losing_aggregates() {
        let mut p = SpanProfiler::with_ring_capacity(4);
        for _ in 0..10 {
            let s = p.enter(Phase::Replay);
            p.exit(Phase::Replay, s);
        }
        assert_eq!(p.spans(Phase::Replay), 10);
        assert_eq!(p.histogram(Phase::Replay).count(), 10);
        let ring = p.ring();
        assert_eq!(ring.len(), 4);
        assert_eq!(p.wrapped_spans(), 6);
        // Oldest-first ordering survives the rotation.
        assert!(ring.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn merge_sums_aggregates_and_keeps_own_ring() {
        let mut a = SpanProfiler::new();
        let mut b = SpanProfiler::new();
        for _ in 0..3 {
            let s = a.enter(Phase::Sched);
            a.exit(Phase::Sched, s);
        }
        for _ in 0..4 {
            let s = b.enter(Phase::Sched);
            b.exit(Phase::Sched, s);
        }
        let ring_before = a.ring().len();
        a.merge(&b);
        assert_eq!(a.entries(Phase::Sched), 7);
        assert_eq!(a.spans(Phase::Sched), 7);
        assert_eq!(a.histogram(Phase::Sched).count(), 7);
        assert_eq!(a.ring().len(), ring_before, "rings are not merged");
    }

    #[test]
    fn json_lists_every_phase_in_order() {
        let mut p = SpanProfiler::new();
        let s = p.enter(Phase::Run);
        p.exit(Phase::Run, s);
        let json = p.to_json();
        assert!(json.starts_with("{\"schema\":\"ccnuma-profile/1\",\"phases\":["));
        assert!(json.ends_with("}\n"));
        let mut last = 0;
        for phase in Phase::ALL {
            let needle = format!("\"phase\":\"{}\"", phase.name());
            let at = json.find(&needle).unwrap_or_else(|| panic!("{needle}"));
            assert!(at > last || last == 0);
            last = at;
        }
        assert!(json.contains("\"stride\":1024"));
        assert!(json.contains("\"entries\":1"));
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn host_trace_has_tracks_and_spans() {
        let mut p = SpanProfiler::new();
        let s = p.enter(Phase::TraceEncode);
        p.exit(Phase::TraceEncode, s);
        let mut buf = Vec::new();
        p.write_host_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(text.contains("\"name\":\"trace_encode\""));
        assert!(text.contains("\"cat\":\"host\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }

    #[test]
    fn artifact_pair_lands_on_disk() {
        let dir = std::env::temp_dir().join(format!("ccnuma-profile-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut p = SpanProfiler::new();
        let s = p.enter(Phase::Run);
        p.exit(Phase::Run, s);
        let run_dir = write_profile_artifacts(&dir, "some-run", &p).unwrap();
        assert!(run_dir.join("profile.json").is_file());
        assert!(run_dir.join("host-trace.json").is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
