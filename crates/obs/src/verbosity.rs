//! Stderr verbosity levels shared by the harness binaries.
//!
//! One knob gates all human-facing chatter consistently: the `repro`
//! flags `-v`/`--verbose` and `-q`/`--quiet` take precedence, then the
//! `CCNUMA_LOG` environment variable, then [`Verbosity::Normal`].

/// How much stderr chatter to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Verbosity {
    /// Nothing but hard errors.
    Quiet,
    /// One-line summaries.
    #[default]
    Normal,
    /// Per-event progress lines (run start/finish, per-run timings).
    Verbose,
}

impl Verbosity {
    /// Parses a `CCNUMA_LOG` value. Accepted (case-insensitive):
    /// `quiet|off|error|0`, `info|normal|1`, `debug|verbose|trace|2`.
    /// Unknown values fall back to `Normal`.
    pub fn parse(s: &str) -> Verbosity {
        match s.to_ascii_lowercase().as_str() {
            "quiet" | "off" | "error" | "0" => Verbosity::Quiet,
            "debug" | "verbose" | "trace" | "2" => Verbosity::Verbose,
            _ => Verbosity::Normal,
        }
    }

    /// Resolves the effective verbosity: explicit flags beat the
    /// `CCNUMA_LOG` environment variable, which beats the default.
    pub fn resolve(flag: Option<Verbosity>, env: Option<&str>) -> Verbosity {
        flag.or_else(|| env.map(Verbosity::parse))
            .unwrap_or_default()
    }

    /// True when one-line summaries should print.
    pub fn normal(self) -> bool {
        self >= Verbosity::Normal
    }

    /// True when per-event progress lines should print.
    pub fn verbose(self) -> bool {
        self >= Verbosity::Verbose
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_spellings() {
        assert_eq!(Verbosity::parse("QUIET"), Verbosity::Quiet);
        assert_eq!(Verbosity::parse("0"), Verbosity::Quiet);
        assert_eq!(Verbosity::parse("info"), Verbosity::Normal);
        assert_eq!(Verbosity::parse("debug"), Verbosity::Verbose);
        assert_eq!(Verbosity::parse("2"), Verbosity::Verbose);
        assert_eq!(Verbosity::parse("nonsense"), Verbosity::Normal);
    }

    #[test]
    fn flags_beat_env_beats_default() {
        assert_eq!(
            Verbosity::resolve(Some(Verbosity::Quiet), Some("debug")),
            Verbosity::Quiet
        );
        assert_eq!(Verbosity::resolve(None, Some("debug")), Verbosity::Verbose);
        assert_eq!(Verbosity::resolve(None, None), Verbosity::Normal);
    }

    #[test]
    fn level_predicates() {
        assert!(!Verbosity::Quiet.normal());
        assert!(Verbosity::Normal.normal());
        assert!(!Verbosity::Normal.verbose());
        assert!(Verbosity::Verbose.verbose());
    }
}
