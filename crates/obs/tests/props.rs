//! Property-based tests for the log2 histograms (the style mirrors
//! `crates/stats/tests/props.rs`).

use ccnuma_obs::{bucket_bounds, bucket_of, Histogram};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// Every value falls inside the bounds of the bucket it is assigned
    /// to, and buckets tile the u64 range without overlap.
    #[test]
    fn value_falls_in_its_reported_bucket(v in 0u64..=u64::MAX) {
        let i = bucket_of(v);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
        if i > 0 {
            let (_, prev_hi) = bucket_bounds(i - 1);
            prop_assert_eq!(lo, prev_hi + 1, "buckets must tile contiguously");
        }
    }

    /// Percentiles are monotone in p, bounded by min/max, and never
    /// under-report the true percentile's bucket.
    #[test]
    fn percentile_monotonicity(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let h = hist_of(&values);
        let ps = [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0];
        let mut last = 0;
        for (k, &p) in ps.iter().enumerate() {
            let q = h.percentile(p);
            if k > 0 {
                prop_assert!(q >= last, "p{p} = {q} < previous {last}");
            }
            last = q;
        }
        // p100 is exactly the max; every percentile stays within range.
        prop_assert_eq!(h.percentile(100.0), h.max());
        prop_assert!(h.percentile(0.0) <= h.max());
        // The reported quantile never undercuts the exact one: at least
        // ceil(p/100*n) samples are <= percentile(p).
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &p in &ps {
            let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            prop_assert!(
                h.percentile(p) >= exact,
                "p{p}: reported {} < exact {exact}", h.percentile(p)
            );
        }
    }

    /// Merging equals recording the concatenated stream, and is
    /// associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_associativity(
        a in proptest::collection::vec(0u64..=u64::MAX, 0..50),
        b in proptest::collection::vec(0u64..=u64::MAX, 0..50),
        c in proptest::collection::vec(0u64..=u64::MAX, 0..50),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // Combined stream.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        let combined = hist_of(&all);

        // Left fold.
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        // Right fold.
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &combined);
    }

    /// Count, sum, min and max are exact regardless of bucketing.
    #[test]
    fn exact_summary_stats(values in proptest::collection::vec(0u64..=u64::MAX, 1..100)) {
        let h = hist_of(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().map(|&v| v as u128).sum::<u128>());
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
    }
}
