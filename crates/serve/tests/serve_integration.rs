//! End-to-end daemon tests against a real listener on an ephemeral
//! port: cold/warm eval, byte-identical answers across a daemon
//! restart (the on-disk result cache), queue-full shedding with
//! `Retry-After`, typed 4xx for malformed requests, the metrics
//! document, and the sweep POST/stream lifecycle.

use ccnuma_serve::{start, HttpClient, ServeConfig};
use ccnuma_trace::{MissRecord, Trace};
use ccnuma_tracestore::{TraceMeta, TraceStore};
use ccnuma_types::{Ns, Pid, ProcId, VirtPage};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn test_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ccnuma-serve-{name}-{}", std::process::id()))
}

fn trace(n: u64) -> Trace {
    (0..n)
        .map(|i| {
            MissRecord::user_data_read(Ns(i * 300), ProcId((i % 8) as u16), Pid(1), VirtPage(i / 4))
        })
        .collect()
}

/// Seeds `dir` with one stored trace and returns its slug.
fn seed_store(dir: &Path) -> String {
    let store = TraceStore::new(dir).unwrap();
    let label = "itest [FT]";
    let slug = TraceStore::slug(label, "itest");
    let meta = TraceMeta {
        label: label.into(),
        records: 200,
        nodes: 8,
        other_time_ns: 50_000,
    };
    store.save(&slug, &trace(200), &meta).unwrap();
    slug
}

fn cfg(dir: &Path) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        trace_dir: dir.to_path_buf(),
        results_dir: dir.join("results"),
        workers: 2,
        ..ServeConfig::default()
    }
}

fn eval_body(slug: &str) -> String {
    format!("{{\"trace\":\"{slug}\",\"policy\":\"FT\",\"trigger\":64}}")
}

#[test]
fn eval_cold_warm_and_restart_are_byte_identical() {
    let dir = test_dir("restart");
    let _ = std::fs::remove_dir_all(&dir);
    let slug = seed_store(&dir);

    let handle = start(cfg(&dir)).unwrap();
    let mut c = HttpClient::connect(handle.addr(), TIMEOUT).unwrap();
    let cold = c
        .request("POST", "/v1/eval", Some(&eval_body(&slug)))
        .unwrap();
    assert_eq!(cold.status, 200, "{}", cold.text());
    assert_eq!(cold.header("x-cache"), Some("miss"));
    assert!(cold.text().contains("\"schema\":\"ccnuma-serve-result/1\""));

    let warm = c
        .request("POST", "/v1/eval", Some(&eval_body(&slug)))
        .unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-cache"), Some("hit"));
    // The X-Cache header carries the hit/miss signal so the body can
    // stay byte-identical between a fresh replay and a cache hit.
    assert_eq!(cold.body, warm.body);
    drop(c);
    handle.shutdown();

    // A fresh daemon over the same directories serves the same bytes
    // from the on-disk result cache without replaying.
    let handle = start(cfg(&dir)).unwrap();
    let mut c = HttpClient::connect(handle.addr(), TIMEOUT).unwrap();
    let after = c
        .request("POST", "/v1/eval", Some(&eval_body(&slug)))
        .unwrap();
    assert_eq!(after.status, 200);
    assert_eq!(after.header("x-cache"), Some("hit"));
    assert_eq!(after.body, cold.body);
    drop(c);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queue_full_is_typed_503_with_retry_after() {
    let dir = test_dir("shed");
    let _ = std::fs::remove_dir_all(&dir);
    seed_store(&dir);
    let mut config = cfg(&dir);
    config.workers = 1;
    config.queue_depth = 1;
    let handle = start(config).unwrap();

    // Occupy the only worker with a connection that never sends a
    // request, then fill the one queue slot the same way.
    let busy = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let queued = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // The next connection must be shed by the accept thread itself.
    let mut shed = TcpStream::connect(handle.addr()).unwrap();
    shed.set_read_timeout(Some(TIMEOUT)).unwrap();
    let mut response = String::new();
    shed.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 503"), "{response}");
    assert!(response.contains("Retry-After: 1"), "{response}");
    assert!(response.contains("shed_queue_full"), "{response}");

    drop(busy);
    drop(queued);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_typed_4xx_not_a_crash() {
    let dir = test_dir("malformed");
    let _ = std::fs::remove_dir_all(&dir);
    seed_store(&dir);
    let handle = start(cfg(&dir)).unwrap();

    // Garbage request line → 400 with a typed error body.
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    s.set_read_timeout(Some(TIMEOUT)).unwrap();
    s.write_all(b"NOT AN HTTP LINE\r\n\r\n").unwrap();
    let mut response = String::new();
    s.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(response.contains("\"error\""), "{response}");

    // Declared body over the cap → 413 before any body byte is read.
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    s.set_read_timeout(Some(TIMEOUT)).unwrap();
    s.write_all(b"POST /v1/eval HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    s.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");

    // The daemon is still healthy afterwards.
    let mut c = HttpClient::connect(handle.addr(), TIMEOUT).unwrap();
    let health = c.request("GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);

    // Unknown routes and wrong methods are typed, too.
    let missing = c.request("GET", "/v1/nope", None).unwrap();
    assert_eq!(missing.status, 404);
    let wrong = c.request("GET", "/v1/eval", None).unwrap();
    assert_eq!(wrong.status, 405);
    let unknown_trace = c
        .request(
            "POST",
            "/v1/eval",
            Some("{\"trace\":\"no-such-trace\",\"policy\":\"FT\"}"),
        )
        .unwrap();
    assert_eq!(unknown_trace.status, 404);
    drop(c);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn traces_and_metrics_documents_parse() {
    use ccnuma_obs::json::JsonValue;
    let dir = test_dir("metrics");
    let _ = std::fs::remove_dir_all(&dir);
    let slug = seed_store(&dir);
    let handle = start(cfg(&dir)).unwrap();
    let mut c = HttpClient::connect(handle.addr(), TIMEOUT).unwrap();

    let listing = c.request("GET", "/v1/traces", None).unwrap();
    assert_eq!(listing.status, 200);
    let v = JsonValue::parse(&listing.text()).unwrap();
    assert_eq!(
        v.get("schema").and_then(JsonValue::as_str),
        Some("ccnuma-trace-ls/1")
    );
    let entries = v.get("entries").and_then(JsonValue::as_array).unwrap();
    assert!(entries
        .iter()
        .any(|e| e.get("slug").and_then(JsonValue::as_str) == Some(slug.as_str())));

    // One eval populates the latency histograms.
    let eval = c
        .request("POST", "/v1/eval", Some(&eval_body(&slug)))
        .unwrap();
    assert_eq!(eval.status, 200);

    let metrics = c.request("GET", "/v1/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    let v = JsonValue::parse(&metrics.text()).unwrap();
    assert_eq!(
        v.get("schema").and_then(JsonValue::as_str),
        Some("ccnuma-serve-metrics/1")
    );
    let hist = v
        .get("metrics")
        .and_then(|m| m.get("histograms"))
        .and_then(|h| h.get("eval_latency_us"))
        .expect("eval latency histogram present");
    assert!(hist.get("p99").is_some(), "p99 missing: {}", metrics.text());
    let counters = v.get("metrics").and_then(|m| m.get("counters")).unwrap();
    assert_eq!(
        counters.get("req_eval").and_then(JsonValue::as_u64),
        Some(1)
    );
    drop(c);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_post_streams_progress_then_final_document() {
    use ccnuma_obs::json::JsonValue;
    let dir = test_dir("sweep");
    let _ = std::fs::remove_dir_all(&dir);
    let slug = seed_store(&dir);
    let handle = start(cfg(&dir)).unwrap();
    let mut c = HttpClient::connect(handle.addr(), TIMEOUT).unwrap();

    let body = format!(
        "{{\"trace\":\"{slug}\",\"policies\":[\"FT\",\"RR\"],\"triggers\":[64],\"sample_rates\":[1]}}"
    );
    let ack = c.request("POST", "/v1/sweeps", Some(&body)).unwrap();
    assert_eq!(ack.status, 202, "{}", ack.text());
    let v = JsonValue::parse(&ack.text()).unwrap();
    let id = v.get("id").and_then(JsonValue::as_str).unwrap().to_string();
    assert_eq!(v.get("cells").and_then(JsonValue::as_u64), Some(2));

    // The progress stream is ndjson: progress lines, then the final
    // ccnuma-sweep/2 document.
    let stream = c.request("GET", &format!("/v1/sweeps/{id}"), None).unwrap();
    assert_eq!(stream.status, 200);
    let text = stream.text();
    let last = text.lines().last().unwrap();
    let doc = JsonValue::parse(last).unwrap();
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("ccnuma-sweep/2"),
        "{text}"
    );
    assert!(text.lines().any(|l| l.contains("\"done\"")), "{text}");

    // Re-POSTing the same grid is idempotent: same content-addressed
    // id, no second execution.
    let again = c.request("POST", "/v1/sweeps", Some(&body)).unwrap();
    assert_eq!(again.status, 200);
    let v = JsonValue::parse(&again.text()).unwrap();
    assert_eq!(v.get("id").and_then(JsonValue::as_str), Some(id.as_str()));
    drop(c);
    handle.shutdown();

    // A fresh daemon reruns the sweep purely from the result cache and
    // produces the identical document.
    let handle = start(cfg(&dir)).unwrap();
    let mut c = HttpClient::connect(handle.addr(), TIMEOUT).unwrap();
    let ack = c.request("POST", "/v1/sweeps", Some(&body)).unwrap();
    assert!(ack.status == 202 || ack.status == 200, "{}", ack.text());
    let stream = c.request("GET", &format!("/v1/sweeps/{id}"), None).unwrap();
    let text2 = stream.text();
    assert_eq!(text2.lines().last(), Some(last), "restarted sweep differs");
    drop(c);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_sweep_grid_is_rejected_with_cell_budget() {
    let dir = test_dir("budget");
    let _ = std::fs::remove_dir_all(&dir);
    let slug = seed_store(&dir);
    let mut config = cfg(&dir);
    config.max_cells = 3;
    let handle = start(config).unwrap();
    let mut c = HttpClient::connect(handle.addr(), TIMEOUT).unwrap();
    let body = format!(
        "{{\"trace\":\"{slug}\",\"policies\":[\"FT\",\"RR\"],\"triggers\":[64,128],\"sample_rates\":[1]}}"
    );
    let resp = c.request("POST", "/v1/sweeps", Some(&body)).unwrap();
    assert_eq!(resp.status, 413, "{}", resp.text());
    assert!(resp.text().contains("cell_budget"), "{}", resp.text());
    drop(c);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
