//! Property tests for the HTTP layer's malformed-input contract: any
//! byte stream — random garbage, oversized lines, truncated bodies,
//! hostile header blocks — yields a clean parse or a typed error that
//! maps to a 4xx status. Never a panic, never an unbounded read.

use ccnuma_serve::http::{read_request, HttpError, MAX_REQUEST_LINE};
use proptest::prelude::*;
use std::io::BufReader;

fn parse(bytes: &[u8], max_body: usize) -> Result<Option<ccnuma_serve::http::Request>, HttpError> {
    read_request(&mut BufReader::new(bytes), max_body)
}

/// Every error the parser can produce must map to a response the
/// worker can actually write: a 4xx status (408 included) or a
/// transport error with no status at all.
fn status_is_typed(e: &HttpError) {
    match e.status() {
        Some((status, _)) => assert!(
            (400..500).contains(&status),
            "parser produced non-4xx status {status}"
        ),
        None => assert!(matches!(e, HttpError::Io(_))),
    }
    assert!(!e.code().is_empty());
}

proptest! {
    /// Arbitrary bytes: parse or typed error, never a panic. In-memory
    /// readers cannot block, so this also proves no input shape makes
    /// the parser wait for bytes that already ended.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..2048)) {
        match parse(&bytes, 1024) {
            Ok(_) => {}
            Err(e) => status_is_typed(&e),
        }
    }

    /// Structured-looking requests with arbitrary method/path/header
    /// tokens: same contract, closer to the hostile-client shape.
    #[test]
    fn fuzzed_request_lines_never_panic(
        method in "[ -~]{0,12}",
        path in "[ -~]{0,64}",
        version in "[ -~]{0,12}",
        header in "[ -~]{0,80}",
    ) {
        let req = format!("{method} {path} {version}\r\n{header}\r\n\r\n");
        match parse(req.as_bytes(), 1024) {
            Ok(_) => {}
            Err(e) => status_is_typed(&e),
        }
    }

    /// A declared Content-Length larger than the arriving bytes is a
    /// 400, not a hang and not a short-read panic.
    #[test]
    fn truncated_bodies_are_400(sent in 0usize..512, shortfall in 1usize..512) {
        let declared = sent + shortfall;
        let mut req = format!("POST /v1/eval HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n")
            .into_bytes();
        req.extend(std::iter::repeat_n(b'x', sent));
        let e = parse(&req, 1024).unwrap_err();
        prop_assert_eq!(e.status().map(|(s, _)| s), Some(400));
    }

    /// A declared Content-Length over the body cap is rejected with 413
    /// before a single body byte is read.
    #[test]
    fn oversized_declared_bodies_are_413(over in 1usize..4096, max_body in 0usize..1024) {
        let declared = max_body + over;
        let req = format!("POST /v1/eval HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n");
        let e = parse(req.as_bytes(), max_body).unwrap_err();
        prop_assert_eq!(e.status().map(|(s, _)| s), Some(413));
    }

    /// Request lines beyond the cap are 431 regardless of content.
    #[test]
    fn oversized_request_lines_are_431(extra in 1usize..4096) {
        let mut req = b"GET /".to_vec();
        req.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + extra));
        req.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let e = parse(&req, 1024).unwrap_err();
        prop_assert_eq!(e.status().map(|(s, _)| s), Some(431));
    }

    /// Well-formed requests with arbitrary bodies under the cap parse
    /// back exactly — the positive half of the contract.
    #[test]
    fn wellformed_requests_roundtrip(body in proptest::collection::vec(0u8..=255, 0..512)) {
        let mut req = format!(
            "POST /v1/eval HTTP/1.1\r\nHost: h\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        req.extend_from_slice(&body);
        let parsed = parse(&req, 512).unwrap().unwrap();
        prop_assert_eq!(parsed.method.as_str(), "POST");
        prop_assert_eq!(parsed.path.as_str(), "/v1/eval");
        prop_assert_eq!(parsed.body, body);
    }
}
