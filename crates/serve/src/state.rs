//! Shared daemon state: configuration, the trace store and result
//! cache, the resident-trace byte budget, server metrics, and the
//! sweep-job registry.

use ccnuma_obs::Metrics;
use ccnuma_polsim::TraceFilter;
use ccnuma_trace::{MissRecord, Trace};
use ccnuma_tracestore::{ResultCache, StoreError, TraceMeta, TraceStore};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Daemon configuration (the `repro serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (port 0 = ephemeral).
    pub addr: String,
    /// Trace-store directory.
    pub trace_dir: PathBuf,
    /// Result-cache directory (default: `<trace_dir>/results`).
    pub results_dir: PathBuf,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded pending-connection queue depth; beyond it, 503.
    pub queue_depth: usize,
    /// Trace slugs (or labels) loaded resident at startup.
    pub prewarm: Vec<String>,
    /// Byte budget for resident traces; a load that cannot fit even
    /// after evicting idle traces is shed with 503.
    pub trace_budget_bytes: u64,
    /// Per-sweep cell budget; larger grids are rejected with 413.
    pub max_cells: usize,
    /// Request body cap in bytes.
    pub max_body_bytes: usize,
    /// Concurrently running sweeps; beyond it, 429.
    pub max_sweeps: usize,
    /// Soft per-request deadline: exceeding it is counted and warned,
    /// never fails the request (PR 8 watchdog semantics).
    pub soft_deadline: Option<Duration>,
    /// Hard per-request deadline: the result is discarded, not
    /// cached, and the client gets a typed 503.
    pub hard_deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7070".into(),
            trace_dir: PathBuf::from("artifacts/traces"),
            results_dir: PathBuf::from("artifacts/traces/results"),
            workers: 4,
            queue_depth: 64,
            prewarm: Vec::new(),
            trace_budget_bytes: 256 << 20,
            max_cells: 4096,
            max_body_bytes: 1 << 20,
            max_sweeps: 4,
            soft_deadline: None,
            hard_deadline: None,
        }
    }
}

/// A trace held resident in memory, shared across requests.
pub struct ResidentTrace {
    /// Store slug.
    pub slug: String,
    /// Decoded records.
    pub trace: Trace,
    /// Sidecar metadata.
    pub meta: TraceMeta,
    /// In-memory footprint charged against the byte budget.
    pub bytes: u64,
}

impl ResidentTrace {
    /// The records as a slice (the `eval_cell` input).
    pub fn records(&self) -> &[MissRecord] {
        self.trace.as_slice()
    }
}

/// The resident-trace cache: slug → trace, LRU-evicted to stay under
/// the byte budget.
struct TraceCache {
    map: HashMap<String, (Arc<ResidentTrace>, u64)>,
    bytes: u64,
    tick: u64,
}

/// Why a trace could not be made resident.
#[derive(Debug)]
pub enum LoadError {
    /// Unknown slug/label.
    NotFound,
    /// Loading it would exceed the byte budget even after evicting
    /// every idle trace — the in-flight byte-budget shed (503).
    OverBudget,
    /// The store failed to read it.
    Store(StoreError),
}

/// One sweep job's lifecycle.
pub enum JobState {
    /// Cells are still replaying.
    Running,
    /// Final `ccnuma-sweep/2` document.
    Done(String),
    /// Typed failure message (store error, watchdog, shutdown).
    Failed(String),
}

/// A registered sweep: progress counters plus the final document.
pub struct SweepJob {
    /// Content-addressed job id.
    pub id: String,
    /// Trace label (for the final document).
    pub trace_label: String,
    /// Grid cells in total.
    pub total: usize,
    /// Grid cells completed so far.
    pub done: AtomicUsize,
    /// Lifecycle, guarded for the progress-stream condvar.
    pub state: Mutex<JobState>,
    /// Signalled on every progress step and at completion.
    pub cv: Condvar,
}

impl SweepJob {
    /// Marks `n` more grid cells complete and wakes streamers.
    pub fn advance(&self, n: usize) {
        self.done.fetch_add(n, Ordering::SeqCst);
        let _guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.cv.notify_all();
    }

    /// Transitions to a terminal state and wakes streamers.
    pub fn finish(&self, state: JobState) {
        let mut guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *guard = state;
        self.cv.notify_all();
    }
}

/// Everything the worker threads share.
pub struct ServeState {
    /// Configuration snapshot.
    pub cfg: ServeConfig,
    /// The trace store.
    pub store: TraceStore,
    /// The on-disk result cache.
    pub results: ResultCache,
    /// In-memory memo in front of the result cache (warm hits never
    /// touch the filesystem).
    pub memo: Mutex<HashMap<String, Arc<String>>>,
    /// Server metrics, rendered by `/v1/metrics`.
    pub metrics: Mutex<Metrics>,
    /// Graceful-shutdown flag; workers and sweep threads poll it.
    pub shutdown: AtomicBool,
    /// Running + finished sweep jobs by id.
    pub sweeps: Mutex<HashMap<String, Arc<SweepJob>>>,
    /// Sweeps currently in the `Running` state.
    pub running_sweeps: AtomicUsize,
    traces: Mutex<TraceCache>,
}

impl ServeState {
    /// Opens the store and result cache and builds empty state.
    ///
    /// # Errors
    ///
    /// Propagates store/cache directory-creation failures.
    pub fn new(cfg: ServeConfig) -> Result<ServeState, StoreError> {
        let store = TraceStore::new(&cfg.trace_dir)?;
        let results = ResultCache::new(&cfg.results_dir)?;
        Ok(ServeState {
            cfg,
            store,
            results,
            memo: Mutex::new(HashMap::new()),
            metrics: Mutex::new(Metrics::new()),
            shutdown: AtomicBool::new(false),
            sweeps: Mutex::new(HashMap::new()),
            running_sweeps: AtomicUsize::new(0),
            traces: Mutex::new(TraceCache {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
        })
    }

    /// Bumps a counter metric.
    pub fn count(&self, name: &'static str, n: u64) {
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .add(name, n);
    }

    /// Records a histogram observation.
    pub fn observe(&self, name: &'static str, value: u64) {
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .observe(name, value);
    }

    /// Resolves a slug-or-label to a store slug: an exact slug match
    /// wins; otherwise the first (slug-sorted) entry whose sidecar
    /// label matches.
    pub fn resolve_slug(&self, name: &str) -> Option<String> {
        if self.store.contains(name) {
            return Some(name.to_string());
        }
        for slug in self.store.list().ok()? {
            if let Ok(meta) = self.store.meta(&slug) {
                if meta.label == name {
                    return Some(slug);
                }
            }
        }
        None
    }

    /// Returns the resident trace for `slug`, loading it (and evicting
    /// idle colder traces) if needed.
    ///
    /// # Errors
    ///
    /// [`LoadError`] — unknown entry, over budget, or a store failure.
    pub fn resident(&self, slug: &str) -> Result<Arc<ResidentTrace>, LoadError> {
        {
            let mut cache = self.traces.lock().unwrap_or_else(|e| e.into_inner());
            cache.tick += 1;
            let tick = cache.tick;
            if let Some((t, used)) = cache.map.get_mut(slug) {
                *used = tick;
                return Ok(Arc::clone(t));
            }
        }
        if !self.store.contains(slug) {
            return Err(LoadError::NotFound);
        }
        // Load outside the lock: decoding can be slow and must not
        // stall warm requests for other traces.
        let (trace, meta) = self.store.load(slug).map_err(LoadError::Store)?;
        let bytes = (trace.len() * std::mem::size_of::<MissRecord>()) as u64;
        let resident = Arc::new(ResidentTrace {
            slug: slug.to_string(),
            trace,
            meta,
            bytes,
        });
        let mut cache = self.traces.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((t, _)) = cache.map.get(slug) {
            // Another worker raced us to it; use theirs.
            return Ok(Arc::clone(t));
        }
        while cache.bytes + bytes > self.cfg.trace_budget_bytes {
            // Evict the least-recently-used idle trace (idle = no
            // request currently holds an Arc to it).
            let victim = cache
                .map
                .iter()
                .filter(|(_, (t, _))| Arc::strong_count(t) == 1)
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    if let Some((t, _)) = cache.map.remove(&k) {
                        cache.bytes -= t.bytes;
                    }
                }
                None => return Err(LoadError::OverBudget),
            }
        }
        cache.bytes += bytes;
        cache.tick += 1;
        let tick = cache.tick;
        cache
            .map
            .insert(slug.to_string(), (Arc::clone(&resident), tick));
        Ok(resident)
    }

    /// Resident-trace footprint: `(traces, bytes)`.
    pub fn resident_footprint(&self) -> (usize, u64) {
        let cache = self.traces.lock().unwrap_or_else(|e| e.into_inner());
        (cache.map.len(), cache.bytes)
    }

    /// Whether graceful shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Parses a record filter name (`all` / `user` / `kernel`).
pub fn parse_filter(s: &str) -> Option<TraceFilter> {
    match s {
        "all" => Some(TraceFilter::All),
        "user" => Some(TraceFilter::UserOnly),
        "kernel" => Some(TraceFilter::KernelOnly),
        _ => None,
    }
}

/// Renders a filter back to its request name.
pub fn filter_name(f: TraceFilter) -> &'static str {
    match f {
        TraceFilter::All => "all",
        TraceFilter::UserOnly => "user",
        TraceFilter::KernelOnly => "kernel",
    }
}
