//! Sweep-as-a-service: a resident daemon serving policy queries.
//!
//! The trace store (PR 5) made a policy evaluation a cheap pure
//! function of (trace, policy params) — that is a servable request.
//! This crate is the server: a long-running multi-threaded daemon
//! hand-rolled on `std::net::TcpListener` (deps are vendored; no
//! tokio) with a bounded worker pool and a small HTTP/1.1 + JSON
//! layer. On startup it opens a
//! [`TraceStore`](ccnuma_tracestore::TraceStore), optionally pre-warms
//! named traces into memory, and exposes:
//!
//! * `GET /healthz` — liveness.
//! * `GET /v1/traces` — the store listing (`ccnuma-trace-ls/1`,
//!   shared with `repro trace ls --json`).
//! * `POST /v1/eval` — one sweep cell → `ccnuma-serve-result/1`.
//! * `POST /v1/sweeps` — a full grid → content-addressed sweep id.
//! * `GET /v1/sweeps/{id}` — chunked progress stream, then the final
//!   `ccnuma-sweep/2` document.
//! * `GET /v1/metrics` — request counters, cache hit ratios, and log2
//!   latency histograms with p50/p90/p99 via the obs Histogram stack.
//!
//! *Results* — not just traces — are content-addressed: each cell's
//! memo key, extended with a format-version salt, maps to an on-disk
//! [`ResultCache`](ccnuma_tracestore::ResultCache) entry written with
//! `atomic_write`, so a repeated query is O(lookup) even across daemon
//! restarts and a warm daemon answers without touching the simulator.
//! Under load it degrades instead of falling over: a bounded
//! accept/work queue (full → 503 + `Retry-After`, written on the
//! accept thread), per-request budgets (body size, sweep cell count,
//! concurrent sweeps, the resident-trace byte budget), and the PR 8
//! watchdog deadlines (soft = warn + count, hard = typed 503 with the
//! result discarded).
//!
//! [`loadgen`] is the matching load generator (`repro loadgen`),
//! emitting a `ccnuma-loadgen/1` report with achieved RPS, shed and
//! error counts, and client-side latency percentiles.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod loadgen;
pub mod server;
pub mod signal;
pub mod state;

pub use client::{HttpClient, HttpResponse};
pub use loadgen::{run_loadgen, LoadgenOptions, LOADGEN_SCHEMA};
pub use server::{
    run, start, ServerHandle, SERVE_METRICS_SCHEMA, SERVE_RESULT_SCHEMA, SERVE_SWEEP_SCHEMA,
};
pub use state::{ServeConfig, ServeState};
