//! A small blocking HTTP/1.1 client over `std::net`, shared by the
//! load generator, the CI smoke script, and the integration tests.
//! Keep-alive by default; understands fixed-length and chunked
//! responses.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Decoded body (chunked bodies are reassembled).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One keep-alive connection to the daemon.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
}

impl HttpClient {
    /// Connects with the given timeout, also used as the read timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<HttpClient> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(HttpClient {
            reader,
            writer: stream,
            addr,
        })
    }

    /// The peer address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Issues one request and reads the full response.
    ///
    /// # Errors
    ///
    /// Transport errors or a malformed response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        let mut req = format!("{method} {path} HTTP/1.1\r\nHost: serve\r\n");
        if let Some(b) = body {
            req.push_str("Content-Type: application/json\r\n");
            req.push_str(&format!("Content-Length: {}\r\n", b.len()));
        }
        req.push_str("\r\n");
        if let Some(b) = body {
            req.push_str(b);
        }
        self.writer.write_all(req.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    fn read_response(&mut self) -> io::Result<HttpResponse> {
        let status_line = self.read_line()?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| io::Error::other(format!("bad status line {status_line:?}")))?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                headers.push((k.to_ascii_lowercase(), v.trim().to_string()));
            }
        }
        let chunked = headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
        let mut body = Vec::new();
        if chunked {
            loop {
                let size_line = self.read_line()?;
                let size = usize::from_str_radix(size_line.trim(), 16)
                    .map_err(|_| io::Error::other(format!("bad chunk size {size_line:?}")))?;
                if size == 0 {
                    // Trailing CRLF after the last chunk.
                    let _ = self.read_line()?;
                    break;
                }
                let mut chunk = vec![0u8; size];
                self.reader.read_exact(&mut chunk)?;
                body.extend_from_slice(&chunk);
                let _ = self.read_line()?;
            }
        } else {
            let len = headers
                .iter()
                .find(|(k, _)| k == "content-length")
                .and_then(|(_, v)| v.parse::<usize>().ok())
                .unwrap_or(0);
            body.resize(len, 0);
            self.reader.read_exact(&mut body)?;
        }
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}
