//! The daemon: accept loop, bounded work queue, worker pool, request
//! routing, and graceful shutdown.
//!
//! Shedding happens at two gates. The *accept gate* is the bounded
//! connection queue: when it is full the accept thread itself writes a
//! typed 503 with `Retry-After` and closes — workers never see the
//! connection, so a flood cannot wedge the pool. The *work gates* are
//! per-request budgets: body size (413), sweep cell budget (413),
//! concurrent-sweep cap (429), the resident-trace byte budget (503),
//! and the PR 8 watchdog deadlines (soft = warn + count, hard = typed
//! 503 with the result discarded, never cached).

use crate::http::{
    finish_chunks, read_request, start_chunked, write_chunk, write_response, HttpError, Request,
};
use crate::signal;
use crate::state::{
    filter_name, parse_filter, JobState, LoadError, ServeConfig, ServeState, SweepJob,
};
use ccnuma_obs::artifact_slug;
use ccnuma_obs::json::{JsonValue, JsonWriter};
use ccnuma_tracestore::{
    cell_from_payload, cell_payload, eval_cell, CellParams, ResultCache, StoreListing, SweepCell,
    SweepPolicy, SweepReport, SweepSpec, TraceMeta,
};
use ccnuma_types::TopologyPreset;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Schema tag of a single-cell evaluation response.
pub const SERVE_RESULT_SCHEMA: &str = "ccnuma-serve-result/1";
/// Schema tag of the sweep-registration response.
pub const SERVE_SWEEP_SCHEMA: &str = "ccnuma-serve-sweep/1";
/// Schema tag of the metrics document.
pub const SERVE_METRICS_SCHEMA: &str = "ccnuma-serve-metrics/1";

/// Idle keep-alive read timeout; also bounds how long a worker can be
/// stuck mid-request on a stalled peer.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// The bounded pending-connection queue.
struct WorkQueue {
    inner: Mutex<(VecDeque<TcpStream>, bool)>,
    cv: Condvar,
    depth: usize,
}

impl WorkQueue {
    fn new(depth: usize) -> WorkQueue {
        WorkQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Enqueues, or hands the stream back when full (the shed path).
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.0.len() >= self.depth || inner.1 {
            return Err(stream);
        }
        inner.0.push_back(stream);
        self.cv.notify_one();
        Ok(())
    }

    /// Dequeues; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(s) = inner.0.pop_front() {
                return Some(s);
            }
            if inner.1 {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(inner, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.1 = true;
        self.cv.notify_all();
    }
}

/// A started daemon: its bound address plus the handles needed to
/// stop it. Tests bind port 0 and read the ephemeral address here.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (tests inspect metrics and footprints).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Requests graceful shutdown and joins every thread: stop
    /// accepting, drain the queue, finish in-flight requests, and wait
    /// for sweep threads to journal their last cell.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        // Sweep threads are detached but check the shutdown flag
        // between cells and advertise themselves in `running_sweeps`;
        // give them a bounded grace period to finish the current cell.
        let deadline = Instant::now() + Duration::from_secs(30);
        while self.state.running_sweeps.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

/// Binds, pre-warms, and spawns the accept thread and worker pool.
///
/// # Errors
///
/// Bind/listen failures, or a store/result-cache directory that
/// cannot be created.
pub fn start(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let workers = cfg.workers.max(1);
    let queue_depth = cfg.queue_depth;
    let state =
        Arc::new(ServeState::new(cfg).map_err(|e| io::Error::other(format!("store: {e}")))?);
    for name in state.cfg.prewarm.clone() {
        match state.resolve_slug(&name) {
            Some(slug) => match state.resident(&slug) {
                Ok(t) => eprintln!(
                    "serve: pre-warmed {slug} ({} records, {} bytes resident)",
                    t.meta.records, t.bytes
                ),
                Err(e) => eprintln!("serve: pre-warm {slug} failed: {e:?}"),
            },
            None => eprintln!("serve: pre-warm: no trace named {name:?} in the store"),
        }
    }

    let listener = TcpListener::bind(&state.cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let queue = Arc::new(WorkQueue::new(queue_depth));

    let mut worker_handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let queue = Arc::clone(&queue);
        let state = Arc::clone(&state);
        worker_handles.push(std::thread::spawn(move || {
            while let Some(stream) = queue.pop() {
                handle_conn(&state, stream);
            }
        }));
    }

    let accept_state = Arc::clone(&state);
    let accept_queue = Arc::clone(&queue);
    let accept = std::thread::spawn(move || {
        loop {
            if accept_state.shutting_down() || signal::shutdown_requested() {
                accept_state.shutdown.store(true, Ordering::SeqCst);
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    if let Err(stream) = accept_queue.push(stream) {
                        accept_state.count("shed_queue_full", 1);
                        shed_connection(stream);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        accept_queue.close();
    });

    Ok(ServerHandle {
        addr,
        state,
        accept: Some(accept),
        workers: worker_handles,
    })
}

/// Runs the daemon in the foreground until SIGTERM/SIGINT, then shuts
/// down gracefully. The `repro serve` entry point.
///
/// # Errors
///
/// Propagates [`start`] failures.
pub fn run(cfg: ServeConfig) -> io::Result<()> {
    signal::install();
    let handle = start(cfg)?;
    eprintln!("serve: listening on {}", handle.addr());
    while !signal::shutdown_requested() && !handle.state().shutting_down() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("serve: shutting down (in-flight sweep cells are journaled in the result cache)");
    handle.shutdown();
    Ok(())
}

/// Writes the queue-full 503 on the accept thread and closes.
fn shed_connection(stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut w = BufWriter::new(stream);
    let body = error_body(503, "shed_queue_full", "work queue is full; retry shortly");
    let _ = write_response(
        &mut w,
        503,
        "Service Unavailable",
        "application/json",
        &[
            ("Retry-After", "1".to_string()),
            ("Connection", "close".to_string()),
        ],
        body.as_bytes(),
    );
}

/// Renders the typed error body every non-2xx response carries.
fn error_body(status: u16, code: &str, message: &str) -> String {
    let mut j = JsonWriter::new();
    j.begin_obj();
    j.key("error");
    j.begin_obj();
    j.key("status");
    j.raw(&status.to_string());
    j.key("code");
    j.str(code);
    j.key("message");
    j.str(message);
    j.end_obj();
    j.end_obj();
    j.finish()
}

/// One connection: keep-alive request loop with typed error mapping.
fn handle_conn(state: &Arc<ServeState>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut r = BufReader::new(read_half);
    let mut w = BufWriter::new(stream);
    loop {
        match read_request(&mut r, state.cfg.max_body_bytes) {
            Ok(None) => break,
            Ok(Some(req)) => {
                let close = req.wants_close();
                if dispatch(state, &req, &mut w).is_err() || close || state.shutting_down() {
                    break;
                }
            }
            Err(e) => {
                if let Some((status, reason)) = e.status() {
                    if !matches!(e, HttpError::Timeout) {
                        state.count("errors_4xx", 1);
                        let body = error_body(status, e.code(), "malformed request");
                        let _ = write_response(
                            &mut w,
                            status,
                            reason,
                            "application/json",
                            &[("Connection", "close".to_string())],
                            body.as_bytes(),
                        );
                    }
                }
                break;
            }
        }
    }
}

/// Sends a JSON response and counts its status class.
fn respond(
    state: &ServeState,
    w: &mut impl Write,
    status: u16,
    reason: &str,
    extra: &[(&str, String)],
    body: &str,
) -> io::Result<()> {
    let class = match status {
        200..=299 => "resp_2xx",
        400..=499 => "resp_4xx",
        _ => "resp_5xx",
    };
    state.count(class, 1);
    write_response(
        w,
        status,
        reason,
        "application/json",
        extra,
        body.as_bytes(),
    )
}

fn respond_error(
    state: &ServeState,
    w: &mut impl Write,
    status: u16,
    reason: &str,
    code: &str,
    message: &str,
    extra: &[(&str, String)],
) -> io::Result<()> {
    respond(
        state,
        w,
        status,
        reason,
        extra,
        &error_body(status, code, message),
    )
}

/// Routes one request. An `Err` means the connection is unusable.
fn dispatch(state: &Arc<ServeState>, req: &Request, w: &mut impl Write) -> io::Result<()> {
    let t0 = Instant::now();
    let result = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            state.count("req_healthz", 1);
            respond(state, w, 200, "OK", &[], "{\"ok\":true}")
        }
        ("GET", "/v1/traces") => {
            state.count("req_traces", 1);
            match StoreListing::scan(&state.store) {
                Ok(listing) => respond(state, w, 200, "OK", &[], &listing.to_json()),
                Err(e) => respond_error(
                    state,
                    w,
                    500,
                    "Internal Server Error",
                    "store_error",
                    &format!("listing failed: {e}"),
                    &[],
                ),
            }
        }
        ("POST", "/v1/eval") => {
            state.count("req_eval", 1);
            let out = handle_eval(state, req, w, t0);
            state.observe("eval_latency_us", t0.elapsed().as_micros() as u64);
            out
        }
        ("POST", "/v1/sweeps") => {
            state.count("req_sweeps_post", 1);
            handle_sweep_post(state, req, w)
        }
        ("GET", path) if path.starts_with("/v1/sweeps/") => {
            state.count("req_sweeps_get", 1);
            handle_sweep_stream(state, &path["/v1/sweeps/".len()..], w)
        }
        ("GET", "/v1/metrics") => {
            state.count("req_metrics", 1);
            handle_metrics(state, w)
        }
        (_, "/healthz" | "/v1/traces" | "/v1/eval" | "/v1/sweeps" | "/v1/metrics") => {
            state.count("errors_4xx", 1);
            respond_error(
                state,
                w,
                405,
                "Method Not Allowed",
                "method_not_allowed",
                "see README: Sweep service",
                &[],
            )
        }
        _ => {
            state.count("errors_4xx", 1);
            respond_error(
                state,
                w,
                404,
                "Not Found",
                "unknown_route",
                "no such endpoint",
                &[],
            )
        }
    };
    state.observe("request_latency_us", t0.elapsed().as_micros() as u64);
    result
}

/// The parsed coordinates of one eval request.
struct EvalParams {
    slug: String,
    cell: CellParams,
    filter: ccnuma_polsim::TraceFilter,
}

/// Parses the eval body; `Err` carries `(code, message)` for a 400/404.
fn parse_eval(state: &ServeState, body: &[u8]) -> Result<EvalParams, (u16, &'static str, String)> {
    let bad = |code: &'static str, msg: String| (400u16, code, msg);
    let text =
        std::str::from_utf8(body).map_err(|_| bad("bad_json", "body is not UTF-8".into()))?;
    let v =
        JsonValue::parse(text).map_err(|e| bad("bad_json", format!("unparseable body: {e}")))?;
    let trace = v
        .get("trace")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad("missing_trace", "field \"trace\" is required".into()))?;
    let policy_name = v
        .get("policy")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad("missing_policy", "field \"policy\" is required".into()))?;
    let policy = SweepPolicy::parse(policy_name)
        .ok_or_else(|| bad("unknown_policy", format!("unknown policy {policy_name:?}")))?;
    let u = |key: &str, default: u64| -> Result<u64, (u16, &'static str, String)> {
        match v.get(key) {
            None => Ok(default),
            Some(x) => x
                .as_u64()
                .ok_or_else(|| bad("bad_field", format!("field {key:?} must be a u64"))),
        }
    };
    let trigger = u32::try_from(u("trigger", 128)?)
        .map_err(|_| bad("bad_field", "trigger out of range".into()))?;
    let sample = u32::try_from(u("sample_rate", 1)?)
        .map_err(|_| bad("bad_field", "sample_rate out of range".into()))?;
    let sample = sample.max(1);
    let remote_ns = u("remote_latency_ns", 1200)?;
    let move_us = u("move_cost_us", 350)?;
    let topology = match v.get("topology") {
        None => TopologyPreset::Flat,
        Some(x) => {
            let name = x
                .as_str()
                .ok_or_else(|| bad("bad_field", "topology must be a string".into()))?;
            TopologyPreset::parse(name)
                .ok_or_else(|| bad("unknown_topology", format!("unknown topology {name:?}")))?
        }
    };
    let filter = match v.get("filter") {
        None => ccnuma_polsim::TraceFilter::UserOnly,
        Some(x) => {
            let name = x
                .as_str()
                .ok_or_else(|| bad("bad_field", "filter must be a string".into()))?;
            parse_filter(name)
                .ok_or_else(|| bad("unknown_filter", format!("unknown filter {name:?}")))?
        }
    };
    let slug = state.resolve_slug(trace).ok_or((
        404u16,
        "unknown_trace",
        format!("no trace named {trace:?} in the store"),
    ))?;
    Ok(EvalParams {
        slug,
        cell: CellParams {
            policy,
            trigger,
            sample,
            remote_ns,
            move_us,
            topology,
        },
        filter,
    })
}

/// Looks a cell up in the memo/result cache, replaying on a miss; the
/// shared eval path for `/v1/eval` and sweep cells. Returns the
/// payload and whether it was a cache hit.
fn cell_result(
    state: &ServeState,
    slug: &str,
    meta: &TraceMeta,
    cell: &CellParams,
    filter: ccnuma_polsim::TraceFilter,
) -> Result<(Arc<String>, bool), LoadError> {
    let key = ResultCache::key(
        slug,
        meta.nodes,
        meta.other_time_ns,
        filter,
        &cell.memo_key(),
    );
    {
        let memo = state.memo.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = memo.get(&key) {
            return Ok((Arc::clone(p), true));
        }
    }
    if let Some(text) = state.results.load(&key) {
        // Only trust payloads that round-trip: a damaged cache entry
        // degrades to a replay, never to a bad response.
        let valid = JsonValue::parse(&text)
            .ok()
            .as_ref()
            .and_then(cell_from_payload)
            .is_some();
        if valid {
            let payload = Arc::new(text);
            state
                .memo
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(key, Arc::clone(&payload));
            return Ok((payload, true));
        }
    }
    let resident = state.resident(slug)?;
    let (report, records) = eval_cell(
        cell,
        meta.nodes,
        ccnuma_types::Ns(meta.other_time_ns),
        filter,
        resident.records(),
    );
    let payload = Arc::new(cell_payload(&report, records));
    if let Err(e) = state.results.store(&key, &payload) {
        eprintln!("serve: result-cache write failed for {key}: {e}");
    }
    state
        .memo
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key, Arc::clone(&payload));
    Ok((payload, false))
}

fn load_error_response(state: &ServeState, w: &mut impl Write, e: &LoadError) -> io::Result<()> {
    match e {
        LoadError::NotFound => {
            state.count("errors_4xx", 1);
            respond_error(
                state,
                w,
                404,
                "Not Found",
                "unknown_trace",
                "trace vanished from the store",
                &[],
            )
        }
        LoadError::OverBudget => {
            state.count("shed_over_capacity", 1);
            respond_error(
                state,
                w,
                503,
                "Service Unavailable",
                "shed_over_capacity",
                "resident-trace byte budget exceeded; retry shortly",
                &[("Retry-After", "1".to_string())],
            )
        }
        LoadError::Store(err) => respond_error(
            state,
            w,
            500,
            "Internal Server Error",
            "store_error",
            &format!("trace load failed: {err}"),
            &[],
        ),
    }
}

fn handle_eval(
    state: &ServeState,
    req: &Request,
    w: &mut impl Write,
    t0: Instant,
) -> io::Result<()> {
    let params = match parse_eval(state, &req.body) {
        Ok(p) => p,
        Err((status, code, msg)) => {
            state.count("errors_4xx", 1);
            let reason = if status == 404 {
                "Not Found"
            } else {
                "Bad Request"
            };
            return respond_error(state, w, status, reason, code, &msg, &[]);
        }
    };
    let meta = match state.store.meta(&params.slug) {
        Ok(m) => m,
        Err(e) => {
            return respond_error(
                state,
                w,
                500,
                "Internal Server Error",
                "store_error",
                &format!("sidecar read failed: {e}"),
                &[],
            )
        }
    };
    let (payload, hit) = match cell_result(state, &params.slug, &meta, &params.cell, params.filter)
    {
        Ok(r) => r,
        Err(e) => return load_error_response(state, w, &e),
    };
    state.count(
        if hit {
            "eval_cache_hits"
        } else {
            "eval_cache_misses"
        },
        1,
    );

    if let Some(soft) = state.cfg.soft_deadline {
        if t0.elapsed() > soft {
            state.count("watchdog_soft", 1);
            eprintln!(
                "serve: watchdog: eval of {} exceeded soft deadline ({:.2}s > {:.2}s)",
                params.cell.memo_key(),
                t0.elapsed().as_secs_f64(),
                soft.as_secs_f64()
            );
        }
    }
    if let Some(hard) = state.cfg.hard_deadline {
        if t0.elapsed() > hard {
            state.count("watchdog_hard", 1);
            return respond_error(
                state,
                w,
                503,
                "Service Unavailable",
                "watchdog_deadline",
                &format!(
                    "eval exceeded hard deadline ({:.2}s > {:.2}s); result discarded",
                    t0.elapsed().as_secs_f64(),
                    hard.as_secs_f64()
                ),
                &[("Retry-After", "1".to_string())],
            );
        }
    }

    let mut j = JsonWriter::new();
    j.begin_obj();
    j.key("schema");
    j.str(SERVE_RESULT_SCHEMA);
    j.key("trace");
    j.str(&params.slug);
    j.key("trace_label");
    j.str(&meta.label);
    j.key("policy");
    j.str(&params.cell.policy.to_string());
    j.key("trigger");
    j.raw(&params.cell.trigger.to_string());
    j.key("sample_rate");
    j.raw(&params.cell.sample.to_string());
    j.key("remote_latency_ns");
    j.raw(&params.cell.remote_ns.to_string());
    j.key("move_cost_us");
    j.raw(&params.cell.move_us.to_string());
    j.key("topology");
    j.str(params.cell.topology.label());
    j.key("filter");
    j.str(filter_name(params.filter));
    j.key("memo_key");
    j.str(&params.cell.memo_key());
    j.key("result");
    j.raw(&payload);
    j.end_obj();
    let cache = if hit { "hit" } else { "miss" };
    respond(
        state,
        w,
        200,
        "OK",
        &[("X-Cache", cache.to_string())],
        &j.finish(),
    )
}

/// Parses one sweep axis: an array of JSON values mapped through `f`,
/// or `default` when the key is absent.
fn axis<T, F>(
    v: &JsonValue,
    key: &str,
    default: Vec<T>,
    f: F,
) -> Result<Vec<T>, (u16, &'static str, String)>
where
    F: Fn(&JsonValue) -> Option<T>,
{
    match v.get(key) {
        None => Ok(default),
        Some(x) => {
            let items = x.as_array().ok_or((
                400u16,
                "bad_field",
                format!("field {key:?} must be an array"),
            ))?;
            items
                .iter()
                .map(|i| f(i).ok_or((400u16, "bad_field", format!("bad value in {key:?}"))))
                .collect()
        }
    }
}

fn parse_sweep(
    state: &ServeState,
    body: &[u8],
) -> Result<(String, SweepSpec), (u16, &'static str, String)> {
    let bad = |code: &'static str, msg: String| (400u16, code, msg);
    let text =
        std::str::from_utf8(body).map_err(|_| bad("bad_json", "body is not UTF-8".into()))?;
    let v =
        JsonValue::parse(text).map_err(|e| bad("bad_json", format!("unparseable body: {e}")))?;
    let trace = v
        .get("trace")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad("missing_trace", "field \"trace\" is required".into()))?;
    let slug = state.resolve_slug(trace).ok_or((
        404u16,
        "unknown_trace",
        format!("no trace named {trace:?} in the store"),
    ))?;
    let grid = SweepSpec::default_grid();
    let policies = axis(&v, "policies", grid.policies, |x| {
        x.as_str().and_then(SweepPolicy::parse)
    })?;
    let triggers = axis(&v, "triggers", grid.triggers, |x| {
        x.as_u64().and_then(|n| u32::try_from(n).ok())
    })?;
    let sample_rates = axis(&v, "sample_rates", grid.sample_rates, |x| {
        x.as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .filter(|&n| n > 0)
    })?;
    let remote_latencies_ns = axis(
        &v,
        "remote_latencies_ns",
        grid.remote_latencies_ns,
        JsonValue::as_u64,
    )?;
    let move_costs_us = axis(&v, "move_costs_us", grid.move_costs_us, JsonValue::as_u64)?;
    let topologies = axis(&v, "topologies", grid.topologies, |x| {
        x.as_str().and_then(TopologyPreset::parse)
    })?;
    let filter = match v.get("filter") {
        None => grid.filter,
        Some(x) => x
            .as_str()
            .and_then(parse_filter)
            .ok_or_else(|| bad("unknown_filter", "bad filter".into()))?,
    };
    let spec = SweepSpec {
        policies,
        triggers,
        sample_rates,
        remote_latencies_ns,
        move_costs_us,
        topologies,
        filter,
    };
    if spec.is_empty() {
        return Err(bad("empty_grid", "every axis must be non-empty".into()));
    }
    Ok((slug, spec))
}

/// Renders the sweep-registration body.
fn sweep_ack(id: &str, cells: usize, status: &str) -> String {
    let mut j = JsonWriter::new();
    j.begin_obj();
    j.key("schema");
    j.str(SERVE_SWEEP_SCHEMA);
    j.key("id");
    j.str(id);
    j.key("cells");
    j.raw(&cells.to_string());
    j.key("status");
    j.str(status);
    j.end_obj();
    j.finish()
}

fn handle_sweep_post(state: &Arc<ServeState>, req: &Request, w: &mut impl Write) -> io::Result<()> {
    let (slug, spec) = match parse_sweep(state, &req.body) {
        Ok(x) => x,
        Err((status, code, msg)) => {
            state.count("errors_4xx", 1);
            let reason = if status == 404 {
                "Not Found"
            } else {
                "Bad Request"
            };
            return respond_error(state, w, status, reason, code, &msg, &[]);
        }
    };
    let cells = spec.len();
    if cells > state.cfg.max_cells {
        state.count("errors_4xx", 1);
        return respond_error(
            state,
            w,
            413,
            "Payload Too Large",
            "cell_budget",
            &format!(
                "grid has {cells} cells; the per-sweep budget is {}",
                state.cfg.max_cells
            ),
            &[],
        );
    }
    let meta = match state.store.meta(&slug) {
        Ok(m) => m,
        Err(e) => {
            return respond_error(
                state,
                w,
                500,
                "Internal Server Error",
                "store_error",
                &format!("sidecar read failed: {e}"),
                &[],
            )
        }
    };
    // Content-addressed id: the same grid on the same trace is the
    // same sweep, so POST is idempotent within a daemon's lifetime and
    // cache-warm across restarts.
    let id = artifact_slug("sweep", &format!("{slug}|{spec:?}"));

    let mut sweeps = state.sweeps.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(job) = sweeps.get(&id) {
        let status = match &*job.state.lock().unwrap_or_else(|e| e.into_inner()) {
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        };
        return respond(state, w, 200, "OK", &[], &sweep_ack(&id, job.total, status));
    }
    if state.running_sweeps.load(Ordering::SeqCst) >= state.cfg.max_sweeps {
        drop(sweeps);
        state.count("shed_sweeps_busy", 1);
        return respond_error(
            state,
            w,
            429,
            "Too Many Requests",
            "shed_sweeps_busy",
            &format!(
                "{} sweeps already running; retry shortly",
                state.cfg.max_sweeps
            ),
            &[("Retry-After", "2".to_string())],
        );
    }
    let job = Arc::new(SweepJob {
        id: id.clone(),
        trace_label: meta.label.clone(),
        total: cells,
        done: AtomicUsize::new(0),
        state: Mutex::new(JobState::Running),
        cv: Condvar::new(),
    });
    sweeps.insert(id.clone(), Arc::clone(&job));
    state.running_sweeps.fetch_add(1, Ordering::SeqCst);
    drop(sweeps);

    let thread_state = Arc::clone(state);
    let thread_job = Arc::clone(&job);
    std::thread::spawn(move || run_sweep_job(&thread_state, &thread_job, &slug, &meta, &spec));
    respond(
        state,
        w,
        202,
        "Accepted",
        &[],
        &sweep_ack(&id, cells, "running"),
    )
}

/// Executes one sweep: every distinct cell through the shared
/// memo/result-cache path (so completed cells are journaled on disk as
/// they finish), then the final `ccnuma-sweep/2` document.
fn run_sweep_job(
    state: &Arc<ServeState>,
    job: &Arc<SweepJob>,
    slug: &str,
    meta: &TraceMeta,
    spec: &SweepSpec,
) {
    let cells = spec.cells();
    // Distinct memo keys in first-appearance order, with multiplicity
    // for progress accounting.
    let mut order: Vec<(String, CellParams, usize)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    for cell in &cells {
        let key = cell.memo_key();
        match index.get(&key) {
            Some(&i) => order[i].2 += 1,
            None => {
                index.insert(key.clone(), order.len());
                order.push((key, *cell, 1));
            }
        }
    }
    let unique_replays = order.len();

    let mut results: HashMap<String, (ccnuma_polsim::PolsimReport, u64)> = HashMap::new();
    for (key, cell, multiplicity) in order {
        if state.shutting_down() {
            job.finish(JobState::Failed(
                "shutdown: sweep interrupted; completed cells are journaled in the result cache"
                    .to_string(),
            ));
            state.running_sweeps.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let t0 = Instant::now();
        let payload = match cell_result(state, slug, meta, &cell, spec.filter) {
            Ok((payload, _)) => payload,
            Err(e) => {
                job.finish(JobState::Failed(format!("cell {key} failed: {e:?}")));
                state.running_sweeps.fetch_sub(1, Ordering::SeqCst);
                return;
            }
        };
        if let Some(soft) = state.cfg.soft_deadline {
            if t0.elapsed() > soft {
                state.count("watchdog_soft", 1);
                eprintln!(
                    "serve: watchdog: sweep cell {key} exceeded soft deadline ({:.2}s > {:.2}s)",
                    t0.elapsed().as_secs_f64(),
                    soft.as_secs_f64()
                );
            }
        }
        let parsed = JsonValue::parse(&payload)
            .ok()
            .as_ref()
            .and_then(cell_from_payload);
        match parsed {
            Some(r) => {
                results.insert(key, r);
            }
            None => {
                job.finish(JobState::Failed(format!("cell {key}: malformed payload")));
                state.running_sweeps.fetch_sub(1, Ordering::SeqCst);
                return;
            }
        }
        job.advance(multiplicity);
    }

    let report = SweepReport {
        nodes: meta.nodes,
        records: meta.records,
        cells: cells
            .iter()
            .map(|c| SweepCell {
                params: *c,
                report: results[&c.memo_key()].0.clone(),
            })
            .collect(),
        unique_replays,
    };
    job.finish(JobState::Done(report.to_json(&meta.label)));
    state.running_sweeps.fetch_sub(1, Ordering::SeqCst);
}

/// Streams sweep progress as newline-delimited JSON chunks, ending
/// with the full grid document (or a typed error line).
fn handle_sweep_stream(state: &ServeState, id: &str, w: &mut impl Write) -> io::Result<()> {
    let job = {
        let sweeps = state.sweeps.lock().unwrap_or_else(|e| e.into_inner());
        sweeps.get(id).cloned()
    };
    let Some(job) = job else {
        state.count("errors_4xx", 1);
        return respond_error(
            state,
            w,
            404,
            "Not Found",
            "unknown_sweep",
            "no such sweep id",
            &[],
        );
    };
    state.count("resp_2xx", 1);
    start_chunked(w, 200, "OK", "application/x-ndjson")?;
    loop {
        let done = job.done.load(Ordering::SeqCst);
        write_chunk(
            w,
            format!("{{\"done\":{done},\"total\":{}}}\n", job.total).as_bytes(),
        )?;
        let guard = job.state.lock().unwrap_or_else(|e| e.into_inner());
        match &*guard {
            JobState::Done(doc) => {
                let line = format!("{doc}\n");
                drop(guard);
                write_chunk(w, line.as_bytes())?;
                break;
            }
            JobState::Failed(msg) => {
                let line = format!("{}\n", error_body(500, "sweep_failed", msg));
                drop(guard);
                write_chunk(w, line.as_bytes())?;
                break;
            }
            JobState::Running => {
                let (_guard, _) = job
                    .cv
                    .wait_timeout(guard, Duration::from_millis(250))
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }
    finish_chunks(w)
}

/// Renders the metrics document: request/shed counters, cache hit
/// ratios, and the log2 latency histograms with percentiles.
fn handle_metrics(state: &ServeState, w: &mut impl Write) -> io::Result<()> {
    let (resident_traces, resident_bytes) = state.resident_footprint();
    let (cache_entries, cache_bytes) = state.results.footprint();
    let metrics_json = state
        .metrics
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .to_json();
    let mut j = JsonWriter::new();
    j.begin_obj();
    j.key("schema");
    j.str(SERVE_METRICS_SCHEMA);
    j.key("resident_traces");
    j.raw(&resident_traces.to_string());
    j.key("resident_bytes");
    j.raw(&resident_bytes.to_string());
    j.key("result_cache_entries");
    j.raw(&cache_entries.to_string());
    j.key("result_cache_bytes");
    j.raw(&cache_bytes.to_string());
    j.key("metrics");
    j.raw(&metrics_json);
    j.end_obj();
    respond(state, w, 200, "OK", &[], &j.finish())
}
