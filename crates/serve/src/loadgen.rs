//! The load generator: hammers a running daemon with mixed
//! eval/healthz/metrics/sweep traffic from keep-alive connections and
//! emits a `ccnuma-loadgen/1` JSON report with achieved RPS, shed and
//! error counts, and client-side latency percentiles through the obs
//! histogram stack.

use crate::client::HttpClient;
use ccnuma_obs::json::{JsonValue, JsonWriter};
use ccnuma_obs::Histogram;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Schema tag of the loadgen report.
pub const LOADGEN_SCHEMA: &str = "ccnuma-loadgen/1";

/// Load-generator options (the `repro loadgen` flags).
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Daemon address.
    pub addr: SocketAddr,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Trace to evaluate (slug or label); default: the store's first
    /// listing entry.
    pub trace: Option<String>,
}

/// Per-thread tallies, merged after the run.
#[derive(Default)]
struct Tally {
    requests: u64,
    ok: u64,
    shed: u64,
    errors_4xx: u64,
    errors_5xx: u64,
    transport_errors: u64,
    eval_requests: u64,
    eval_cache_hits: u64,
    latency: Histogram,
}

impl Tally {
    fn merge(&mut self, other: &Tally) {
        self.requests += other.requests;
        self.ok += other.ok;
        self.shed += other.shed;
        self.errors_4xx += other.errors_4xx;
        self.errors_5xx += other.errors_5xx;
        self.transport_errors += other.transport_errors;
        self.eval_requests += other.eval_requests;
        self.eval_cache_hits += other.eval_cache_hits;
        self.latency.merge(&other.latency);
    }
}

/// The policies the eval mix cycles through (all warmed first, so
/// steady-state traffic measures the pure cache path).
const MIX_POLICIES: [&str; 3] = ["FT", "RR", "Mig/Rep"];

fn eval_body(trace: &str, policy: &str) -> String {
    let mut j = JsonWriter::new();
    j.begin_obj();
    j.key("trace");
    j.str(trace);
    j.key("policy");
    j.str(policy);
    j.end_obj();
    j.finish()
}

fn sweep_body(trace: &str) -> String {
    let mut j = JsonWriter::new();
    j.begin_obj();
    j.key("trace");
    j.str(trace);
    j.key("policies");
    j.begin_arr();
    j.str("FT");
    j.end_arr();
    j.end_obj();
    j.finish()
}

/// Runs the load and renders the `ccnuma-loadgen/1` report.
///
/// # Errors
///
/// Connect failures, an empty store, or a failed warm-up request.
pub fn run_loadgen(opts: &LoadgenOptions) -> io::Result<String> {
    let timeout = Duration::from_secs(10);
    // Probe: pick the trace and warm every cell the mix will touch.
    let mut probe = HttpClient::connect(opts.addr, timeout)?;
    let trace = match &opts.trace {
        Some(t) => t.clone(),
        None => {
            let listing = probe.request("GET", "/v1/traces", None)?;
            let v = JsonValue::parse(&listing.text())
                .map_err(|e| io::Error::other(format!("bad /v1/traces body: {e}")))?;
            v.get("entries")
                .and_then(JsonValue::as_array)
                .and_then(|a| a.first())
                .and_then(|e| e.get("slug"))
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| io::Error::other("store has no traces; capture one first"))?
        }
    };
    for policy in MIX_POLICIES {
        let resp = probe.request("POST", "/v1/eval", Some(&eval_body(&trace, policy)))?;
        if resp.status != 200 {
            return Err(io::Error::other(format!(
                "warm-up eval of {policy} failed with {}: {}",
                resp.status,
                resp.text()
            )));
        }
    }

    let deadline = Instant::now() + opts.duration;
    let t0 = Instant::now();
    let concurrency = opts.concurrency.max(1);
    let tallies: Vec<Tally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..concurrency)
            .map(|worker| {
                let trace = trace.clone();
                s.spawn(move || drive(opts.addr, timeout, &trace, worker, deadline))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let elapsed = t0.elapsed();

    let mut total = Tally::default();
    for t in &tallies {
        total.merge(t);
    }
    let secs = elapsed.as_secs_f64().max(1e-9);
    let mut j = JsonWriter::new();
    j.begin_obj();
    j.key("schema");
    j.str(LOADGEN_SCHEMA);
    j.key("target");
    j.str(&opts.addr.to_string());
    j.key("trace");
    j.str(&trace);
    j.key("concurrency");
    j.raw(&concurrency.to_string());
    j.key("duration_s");
    j.raw(&format!("{secs:.3}"));
    j.key("requests");
    j.raw(&total.requests.to_string());
    j.key("rps");
    j.raw(&format!("{:.1}", total.requests as f64 / secs));
    j.key("ok");
    j.raw(&total.ok.to_string());
    j.key("shed");
    j.raw(&total.shed.to_string());
    j.key("errors_4xx");
    j.raw(&total.errors_4xx.to_string());
    j.key("errors_5xx");
    j.raw(&total.errors_5xx.to_string());
    j.key("transport_errors");
    j.raw(&total.transport_errors.to_string());
    j.key("eval_requests");
    j.raw(&total.eval_requests.to_string());
    j.key("eval_cache_hits");
    j.raw(&total.eval_cache_hits.to_string());
    j.key("latency_us");
    j.begin_obj();
    j.key("count");
    j.raw(&total.latency.count().to_string());
    j.key("min");
    j.raw(&total.latency.min().to_string());
    j.key("max");
    j.raw(&total.latency.max().to_string());
    j.key("mean");
    j.raw(&format!("{:.1}", total.latency.mean()));
    j.key("p50");
    j.raw(&total.latency.p50().to_string());
    j.key("p90");
    j.raw(&total.latency.p90().to_string());
    j.key("p99");
    j.raw(&total.latency.p99().to_string());
    j.end_obj();
    j.end_obj();
    Ok(j.finish())
}

/// One worker: a keep-alive connection cycling through the mix until
/// the deadline, reconnecting after transport errors.
fn drive(
    addr: SocketAddr,
    timeout: Duration,
    trace: &str,
    worker: usize,
    deadline: Instant,
) -> Tally {
    let mut tally = Tally::default();
    let mut client = HttpClient::connect(addr, timeout).ok();
    let mut i = worker as u64; // de-phase the workers' mixes
    let mut sweep_id: Option<String> = None;
    while Instant::now() < deadline {
        let Some(c) = client.as_mut() else {
            tally.transport_errors += 1;
            std::thread::sleep(Duration::from_millis(20));
            client = HttpClient::connect(addr, timeout).ok();
            continue;
        };
        // Mix: 16/20 warm evals, 1 healthz, 1 metrics, 1 sweep POST
        // (idempotent), 1 sweep progress GET.
        let slot = i % 20;
        i += 1;
        let is_eval = slot < 16;
        let t0 = Instant::now();
        let result = if is_eval {
            let policy = MIX_POLICIES[(i % MIX_POLICIES.len() as u64) as usize];
            c.request("POST", "/v1/eval", Some(&eval_body(trace, policy)))
        } else if slot == 16 {
            c.request("GET", "/healthz", None)
        } else if slot == 17 {
            c.request("GET", "/v1/metrics", None)
        } else if slot == 18 {
            c.request("POST", "/v1/sweeps", Some(&sweep_body(trace)))
        } else if let Some(id) = &sweep_id {
            c.request("GET", &format!("/v1/sweeps/{id}"), None)
        } else {
            c.request("GET", "/healthz", None)
        };
        match result {
            Ok(resp) => {
                tally.requests += 1;
                tally.latency.record(t0.elapsed().as_micros() as u64);
                match resp.status {
                    200..=299 => tally.ok += 1,
                    429 | 503 => tally.shed += 1,
                    400..=499 => tally.errors_4xx += 1,
                    _ => tally.errors_5xx += 1,
                }
                if is_eval {
                    tally.eval_requests += 1;
                    if resp.header("x-cache") == Some("hit") {
                        tally.eval_cache_hits += 1;
                    }
                }
                if slot == 18 && resp.status < 300 {
                    if let Ok(v) = JsonValue::parse(&resp.text()) {
                        sweep_id = v.get("id").and_then(JsonValue::as_str).map(str::to_string);
                    }
                }
            }
            Err(_) => {
                tally.transport_errors += 1;
                client = HttpClient::connect(addr, timeout).ok();
            }
        }
    }
    tally
}
