//! A deliberately small HTTP/1.1 layer over `std::net`.
//!
//! Only what the daemon needs: request parsing with hard size limits
//! at every stage (request line, header block, body), keep-alive,
//! fixed-length and chunked responses, and a typed error enum that
//! maps every malformed input to a 4xx — never a panic, never an
//! unbounded read, never a hung worker (socket read timeouts are the
//! caller's job and surface here as [`HttpError::Timeout`]).

use std::io::{self, BufRead, Write};

/// Hard cap on the request line (method + path + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Hard cap on the total header block.
pub const MAX_HEADER_BYTES: usize = 32 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/v1/eval`.
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Everything that can go wrong reading a request, each mapped to a
/// response status.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or body framing → 400.
    BadRequest(&'static str),
    /// Request line or header block over the cap → 431.
    HeadersTooLarge,
    /// Declared body over the configured cap → 413.
    PayloadTooLarge,
    /// The socket read timed out mid-request → 408 (then close).
    Timeout,
    /// Transport error; no response possible.
    Io(io::Error),
}

impl HttpError {
    /// The status line this error maps to (`None` for transport
    /// errors, where writing is pointless).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::BadRequest(_) => Some((400, "Bad Request")),
            HttpError::HeadersTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::PayloadTooLarge => Some((413, "Payload Too Large")),
            HttpError::Timeout => Some((408, "Request Timeout")),
            HttpError::Io(_) => None,
        }
    }

    /// Short machine-readable code for the error body.
    pub fn code(&self) -> &'static str {
        match self {
            HttpError::BadRequest(what) => what,
            HttpError::HeadersTooLarge => "headers_too_large",
            HttpError::PayloadTooLarge => "payload_too_large",
            HttpError::Timeout => "timeout",
            HttpError::Io(_) => "io",
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e),
        }
    }
}

/// Reads one CRLF- (or LF-) terminated line, capped at `max` bytes.
/// Returns `None` on clean EOF before any byte.
fn read_line<R: BufRead>(r: &mut R, max: usize) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::BadRequest("truncated_line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let s = String::from_utf8(line)
                        .map_err(|_| HttpError::BadRequest("non_utf8_line"))?;
                    return Ok(Some(s));
                }
                if line.len() >= max {
                    return Err(HttpError::HeadersTooLarge);
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Reads and parses one request. `Ok(None)` means the peer closed the
/// connection cleanly between requests (the keep-alive exit path).
///
/// # Errors
///
/// Any [`HttpError`]; the caller should write the mapped status (if
/// any) and close the connection.
pub fn read_request<R: BufRead>(r: &mut R, max_body: usize) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line(r, MAX_REQUEST_LINE)? else {
        return Ok(None);
    };
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty()
        || path.is_empty()
        || parts.next().is_some()
        || !matches!(version, "HTTP/1.1" | "HTTP/1.0")
    {
        return Err(HttpError::BadRequest("bad_request_line"));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest("bad_method"));
    }
    if !path.starts_with('/') {
        return Err(HttpError::BadRequest("bad_path"));
    }

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let line =
            read_line(r, MAX_HEADER_BYTES)?.ok_or(HttpError::BadRequest("eof_in_headers"))?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("bad_header"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest("bad_header"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>());
    match content_length {
        None => {}
        Some(Err(_)) => return Err(HttpError::BadRequest("bad_content_length")),
        Some(Ok(n)) if n > max_body => return Err(HttpError::PayloadTooLarge),
        Some(Ok(n)) => {
            body.resize(n, 0);
            r.read_exact(&mut body).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    HttpError::BadRequest("truncated_body")
                } else {
                    HttpError::from(e)
                }
            })?;
        }
    }
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        // We never need chunked *requests*; reject rather than
        // misinterpret the framing.
        return Err(HttpError::BadRequest("chunked_request"));
    }
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Writes a fixed-length response.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    write!(w, "HTTP/1.1 {status} {reason}\r\n")?;
    write!(w, "Content-Type: {content_type}\r\n")?;
    write!(w, "Content-Length: {}\r\n", body.len())?;
    for (k, v) in extra_headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Starts a chunked response; follow with [`write_chunk`] and
/// [`finish_chunks`].
///
/// # Errors
///
/// Propagates transport errors.
pub fn start_chunked<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
) -> io::Result<()> {
    write!(w, "HTTP/1.1 {status} {reason}\r\n")?;
    write!(w, "Content-Type: {content_type}\r\n")?;
    w.write_all(b"Transfer-Encoding: chunked\r\n\r\n")?;
    w.flush()
}

/// Writes one chunk (no-op for empty data — an empty chunk would
/// terminate the stream).
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_chunk<W: Write>(w: &mut W, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminates a chunked response.
///
/// # Errors
///
/// Propagates transport errors.
pub fn finish_chunks<W: Write>(w: &mut W) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes), 1024)
    }

    #[test]
    fn parses_a_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /v1/eval HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn oversized_body_is_413() {
        let e = parse(b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), Some((413, "Payload Too Large")));
    }

    #[test]
    fn truncated_body_is_400_not_a_hang() {
        let e = parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(e.status().map(|(s, _)| s), Some(400));
    }

    #[test]
    fn bad_version_is_400() {
        let e = parse(b"GET / HTTP/2\r\n\r\n").unwrap_err();
        assert_eq!(e.status().map(|(s, _)| s), Some(400));
    }

    #[test]
    fn oversized_request_line_is_431() {
        let mut req = b"GET /".to_vec();
        req.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + 10));
        req.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let e = parse(&req).unwrap_err();
        assert_eq!(e.status().map(|(s, _)| s), Some(431));
    }
}
