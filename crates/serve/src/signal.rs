//! Minimal SIGTERM/SIGINT handling without a libc crate: the raw
//! `signal(2)` entry point from the C runtime, a handler that does
//! nothing but flip an `AtomicBool` (the only async-signal-safe thing
//! worth doing), and a poll-side accessor for the accept loop.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the handler for SIGTERM and SIGINT. Idempotent.
pub fn install() {
    // SAFETY: `signal` is the C runtime's own registration entry
    // point; the handler only performs an atomic store, which is
    // async-signal-safe.
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Whether a shutdown signal has arrived.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests shutdown from inside the process (tests, `ServerHandle`).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}
