//! Stacked horizontal bar rendering for the figure reproductions.

use core::fmt;

/// A stacked horizontal bar chart rendered in ASCII, used by the `repro`
/// harness to echo the paper's normalized execution-time figures
/// (Figures 3, 5, 6, 7, 8, 9).
///
/// Each bar is a labelled stack of named segments; bars are scaled so the
/// largest total fills [`width`](BarChart::with_width) characters. An
/// optional annotation (the paper prints "% misses local") is appended
/// after each bar.
///
/// # Examples
///
/// ```
/// use ccnuma_stats::BarChart;
///
/// let mut c = BarChart::new(vec!["stall", "other"]);
/// c.bar("FT", vec![60.0, 40.0], Some("36".into()));
/// c.bar("Mig/Rep", vec![20.0, 40.0], Some("87".into()));
/// let s = c.to_string();
/// assert!(s.contains("FT"));
/// assert!(s.contains("Mig/Rep"));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    segment_names: Vec<String>,
    bars: Vec<(String, Vec<f64>, Option<String>)>,
    width: usize,
}

/// Glyphs used to draw segments, cycled in order.
const GLYPHS: [char; 6] = ['#', '=', ':', '.', '%', '~'];

impl BarChart {
    /// Creates a chart whose bars stack the given segments in order.
    ///
    /// # Panics
    ///
    /// Panics if `segment_names` is empty.
    pub fn new<S: Into<String>>(segment_names: Vec<S>) -> BarChart {
        let segment_names: Vec<String> = segment_names.into_iter().map(Into::into).collect();
        assert!(!segment_names.is_empty(), "need at least one segment");
        BarChart {
            segment_names,
            bars: Vec::new(),
            width: 60,
        }
    }

    /// Sets the character width of the longest bar (default 60).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn with_width(mut self, width: usize) -> BarChart {
        assert!(width > 0, "width must be non-zero");
        self.width = width;
        self
    }

    /// Appends a bar with one value per segment and an optional
    /// annotation.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the segment count or contains a
    /// negative or non-finite value.
    pub fn bar<S: Into<String>>(
        &mut self,
        label: S,
        values: Vec<f64>,
        annotation: Option<String>,
    ) -> &mut BarChart {
        assert_eq!(
            values.len(),
            self.segment_names.len(),
            "bar has {} values for {} segments",
            values.len(),
            self.segment_names.len()
        );
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "bar values must be finite and non-negative"
        );
        self.bars.push((label.into(), values, annotation));
        self
    }

    /// Number of bars so far.
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// True when the chart has no bars.
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }
}

impl fmt::Display for BarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // legend
        write!(f, "legend:")?;
        for (i, name) in self.segment_names.iter().enumerate() {
            write!(f, " {}={}", GLYPHS[i % GLYPHS.len()], name)?;
        }
        writeln!(f)?;
        let max_total = self
            .bars
            .iter()
            .map(|(_, v, _)| v.iter().sum::<f64>())
            .fold(0.0f64, f64::max);
        let label_w = self.bars.iter().map(|(l, _, _)| l.len()).max().unwrap_or(0);
        for (label, values, annotation) in &self.bars {
            write!(f, "{label:<label_w$} |")?;
            let total: f64 = values.iter().sum();
            if max_total > 0.0 {
                for (i, v) in values.iter().enumerate() {
                    let chars = (v / max_total * self.width as f64).round() as usize;
                    let g = GLYPHS[i % GLYPHS.len()];
                    for _ in 0..chars {
                        write!(f, "{g}")?;
                    }
                }
            }
            write!(f, " {total:.1}")?;
            if let Some(a) = annotation {
                write!(f, "  [{a}]")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scaled_bars() {
        let mut c = BarChart::new(vec!["a", "b"]).with_width(10);
        c.bar("x", vec![5.0, 5.0], None);
        c.bar("y", vec![2.5, 2.5], Some("note".into()));
        let s = c.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("legend:"));
        // x is the longest bar: 5 '#' + 5 '='
        assert!(lines[1].contains("#####====="), "{s}");
        // y is half: 2-3 of each glyph
        assert!(lines[2].contains("[note]"));
        assert!(lines[2].contains("5.0"));
    }

    #[test]
    fn empty_chart_renders_legend_only() {
        let c = BarChart::new(vec!["only"]);
        assert!(c.is_empty());
        let s = c.to_string();
        assert_eq!(s.lines().count(), 1);
    }

    #[test]
    fn zero_bars_are_fine() {
        let mut c = BarChart::new(vec!["a"]);
        c.bar("z", vec![0.0], None);
        let s = c.to_string();
        assert!(s.contains("z |"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "segments")]
    fn wrong_arity_panics() {
        let mut c = BarChart::new(vec!["a", "b"]);
        c.bar("x", vec![1.0], None);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_values_panic() {
        let mut c = BarChart::new(vec!["a"]);
        c.bar("x", vec![f64::NAN], None);
    }
}
