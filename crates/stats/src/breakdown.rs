//! The execution-time breakdown used by every experiment.

use ccnuma_types::{Mode, Ns, RefClass, StallTier};

fn midx(mode: Mode) -> usize {
    match mode {
        Mode::User => 0,
        Mode::Kernel => 1,
    }
}

fn cidx(class: RefClass) -> usize {
    match class {
        RefClass::Instr => 0,
        RefClass::Data => 1,
    }
}

/// Cumulative execution-time slices for one simulated run.
///
/// Stall time is kept in a (mode × class × tier) cube so Table 3's
/// four stall columns, Figure 3's local/remote split, and Figure 6's
/// user-stall bars all come from the same accumulator. The tier axis is
/// [`StallTier`]: local, remote DRAM, or far (CXL-like) memory — on the
/// paper's flat machine the far slice stays zero and every output
/// reduces to the original local/remote split. Busy (non-stall)
/// time is kept per mode; the pager's kernel overhead is kept separately
/// per action so the Mig and Rep overhead segments of Figures 6, 8 and 9
/// can be told apart. Miss *counts* (local vs. remote) feed the
/// "% misses local" annotations at the bottom of each figure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunBreakdown {
    // [mode][class][StallTier::index()]
    stall: [[[Ns; 3]; 2]; 2],
    // L2-hit stall: time waiting on the secondary cache that did not go
    // to memory ([mode][class]). Part of Table 3's stall columns, part of
    // "other time" in the figures' local/remote split.
    hit_stall: [[Ns; 2]; 2],
    busy: [Ns; 2],
    idle: Ns,
    mig_overhead: Ns,
    rep_overhead: Ns,
    local_misses: u64,
    remote_misses: u64,
    far_misses: u64,
}

impl RunBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> RunBreakdown {
        RunBreakdown::default()
    }

    /// Adds non-stall CPU time in `mode`.
    pub fn add_busy(&mut self, mode: Mode, t: Ns) {
        self.busy[midx(mode)] += t;
    }

    /// Adds memory-stall time and counts the miss, using the legacy
    /// local/remote dichotomy (the flat machine's two tiers).
    pub fn add_stall(&mut self, mode: Mode, class: RefClass, remote: bool, t: Ns) {
        let tier = if remote {
            StallTier::Remote
        } else {
            StallTier::Local
        };
        self.add_stall_tier(mode, class, tier, t);
    }

    /// Adds memory-stall time in a specific [`StallTier`] and counts the
    /// miss there.
    pub fn add_stall_tier(&mut self, mode: Mode, class: RefClass, tier: StallTier, t: Ns) {
        self.stall[midx(mode)][cidx(class)][tier.index()] += t;
        match tier {
            StallTier::Local => self.local_misses += 1,
            StallTier::Remote => self.remote_misses += 1,
            StallTier::Far => self.far_misses += 1,
        }
    }

    /// Adds directory-queueing delay to a tier's stall time *without*
    /// counting a new miss. The windowed engine charges a miss's
    /// uncontended latency (and counts the miss) inside its lane, then
    /// discovers the contention wait at the canonical merge; this adds
    /// that wait so total stall matches one [`add_stall_tier`] call with
    /// the combined latency.
    pub fn add_contention_stall(&mut self, mode: Mode, class: RefClass, tier: StallTier, t: Ns) {
        self.stall[midx(mode)][cidx(class)][tier.index()] += t;
    }

    /// Adds secondary-cache *hit* stall: time spent waiting on the L2
    /// that did not go to memory. Included in Table 3's stall columns but
    /// not in the figures' local/remote miss-stall segments.
    pub fn add_hit_stall(&mut self, mode: Mode, class: RefClass, t: Ns) {
        self.hit_stall[midx(mode)][cidx(class)] += t;
    }

    /// Adds idle time.
    pub fn add_idle(&mut self, t: Ns) {
        self.idle += t;
    }

    /// Adds pager (kernel) overhead for a migration.
    pub fn add_mig_overhead(&mut self, t: Ns) {
        self.mig_overhead += t;
    }

    /// Adds pager (kernel) overhead for a replication (or collapse).
    pub fn add_rep_overhead(&mut self, t: Ns) {
        self.rep_overhead += t;
    }

    /// Busy time in `mode`.
    pub fn busy(&self, mode: Mode) -> Ns {
        self.busy[midx(mode)]
    }

    /// Idle time.
    pub fn idle(&self) -> Ns {
        self.idle
    }

    /// Stall time for a (mode, class) pair: L2-hit stall plus local and
    /// remote miss stall (Table 3's definition: time stalled on the
    /// secondary cache).
    pub fn stall(&self, mode: Mode, class: RefClass) -> Ns {
        let s = &self.stall[midx(mode)][cidx(class)];
        s[0] + s[1] + self.hit_stall[midx(mode)][cidx(class)]
    }

    /// Total stall to local memory.
    pub fn local_stall(&self) -> Ns {
        self.sum_stall(StallTier::Local.index())
    }

    /// Total stall to off-node memory (remote DRAM plus far tier) — the
    /// figures' "remote" segment.
    pub fn remote_stall(&self) -> Ns {
        self.sum_stall(StallTier::Remote.index()) + self.sum_stall(StallTier::Far.index())
    }

    /// Total stall charged to one [`StallTier`].
    pub fn tier_stall(&self, tier: StallTier) -> Ns {
        self.sum_stall(tier.index())
    }

    /// Total stall to the far (CXL-like) memory tier.
    pub fn far_stall(&self) -> Ns {
        self.sum_stall(StallTier::Far.index())
    }

    fn sum_stall(&self, loc: usize) -> Ns {
        let mut t = Ns::ZERO;
        for m in 0..2 {
            for c in 0..2 {
                t += self.stall[m][c][loc];
            }
        }
        t
    }

    /// Total stall time.
    pub fn total_stall(&self) -> Ns {
        self.local_stall() + self.remote_stall()
    }

    /// Stall restricted to one mode (Figure 7 uses kernel-only).
    pub fn mode_stall(&self, mode: Mode) -> Ns {
        self.stall(mode, RefClass::Instr) + self.stall(mode, RefClass::Data)
    }

    /// Migration overhead charged to the kernel.
    pub fn mig_overhead(&self) -> Ns {
        self.mig_overhead
    }

    /// Replication/collapse overhead charged to the kernel.
    pub fn rep_overhead(&self) -> Ns {
        self.rep_overhead
    }

    /// Combined pager overhead.
    pub fn policy_overhead(&self) -> Ns {
        self.mig_overhead + self.rep_overhead
    }

    /// Total L2-hit stall across modes and classes.
    pub fn hit_stall_total(&self) -> Ns {
        let mut t = Ns::ZERO;
        for m in 0..2 {
            for c in 0..2 {
                t += self.hit_stall[m][c];
            }
        }
        t
    }

    /// Busy (non-stall) CPU time.
    pub fn other(&self) -> Ns {
        self.busy[0] + self.busy[1]
    }

    /// The figures' "all other time" segment: busy time plus L2-hit stall
    /// (everything that is neither a memory miss, pager overhead nor idle).
    pub fn other_incl_hits(&self) -> Ns {
        self.other() + self.hit_stall_total()
    }

    /// Total execution time.
    pub fn total(&self) -> Ns {
        self.other_incl_hits() + self.total_stall() + self.policy_overhead() + self.idle
    }

    /// Non-idle execution time.
    pub fn non_idle(&self) -> Ns {
        self.total() - self.idle
    }

    /// Misses satisfied locally.
    pub fn local_misses(&self) -> u64 {
        self.local_misses
    }

    /// Misses that left the node (remote DRAM plus far tier).
    pub fn remote_misses(&self) -> u64 {
        self.remote_misses + self.far_misses
    }

    /// Misses satisfied from the far (CXL-like) memory tier.
    pub fn far_misses(&self) -> u64 {
        self.far_misses
    }

    /// Percentage of misses satisfied from local memory — the number
    /// printed at the bottom of each bar in Figures 3, 6, 8 and 9.
    pub fn pct_local_misses(&self) -> f64 {
        let total = self.local_misses + self.remote_misses();
        if total == 0 {
            0.0
        } else {
            100.0 * self.local_misses as f64 / total as f64
        }
    }

    /// Table 3's stall columns: a (mode, class) stall as a percentage of
    /// non-idle time.
    pub fn stall_pct_of_nonidle(&self, mode: Mode, class: RefClass) -> f64 {
        let non_idle = self.non_idle();
        if non_idle == Ns::ZERO {
            return 0.0;
        }
        100.0 * self.stall(mode, class).0 as f64 / non_idle.0 as f64
    }

    /// Percentage of total time spent in `mode` (Table 3's CPU breakdown;
    /// pager overhead counts as kernel time).
    pub fn mode_pct_of_total(&self, mode: Mode) -> f64 {
        if self.total() == Ns::ZERO {
            return 0.0;
        }
        let mut t = self.busy(mode) + self.mode_stall(mode);
        if mode == Mode::Kernel {
            t += self.policy_overhead();
        }
        100.0 * t.0 as f64 / self.total().0 as f64
    }

    /// Percentage of total time spent idle.
    pub fn idle_pct_of_total(&self) -> f64 {
        if self.total() == Ns::ZERO {
            return 0.0;
        }
        100.0 * self.idle.0 as f64 / self.total().0 as f64
    }

    /// Merges another breakdown into this one (summing every slice), e.g.
    /// to aggregate per-CPU breakdowns into a machine-wide one.
    pub fn merge(&mut self, other: &RunBreakdown) {
        for m in 0..2 {
            for c in 0..2 {
                for l in 0..3 {
                    self.stall[m][c][l] += other.stall[m][c][l];
                }
                self.hit_stall[m][c] += other.hit_stall[m][c];
            }
            self.busy[m] += other.busy[m];
        }
        self.idle += other.idle;
        self.mig_overhead += other.mig_overhead;
        self.rep_overhead += other.rep_overhead;
        self.local_misses += other.local_misses;
        self.remote_misses += other.remote_misses;
        self.far_misses += other.far_misses;
    }

    /// Number of values in the [`to_raw_parts`](RunBreakdown::to_raw_parts)
    /// flattening.
    pub const RAW_LEN: usize = 24;

    /// Flattens every accumulator into a fixed-order `u64` array, the
    /// checkpoint journal's exact serialization surface. Layout: the
    /// stall cube in `[mode][class][tier]` order (12), hit stall in
    /// `[mode][class]` order (4), busy per mode (2), idle, migration
    /// overhead, replication overhead, then local/remote/far miss
    /// counts.
    pub fn to_raw_parts(&self) -> [u64; RunBreakdown::RAW_LEN] {
        let mut out = [0u64; RunBreakdown::RAW_LEN];
        let mut i = 0;
        let mut push = |v: u64| {
            out[i] = v;
            i += 1;
        };
        for m in 0..2 {
            for c in 0..2 {
                for l in 0..3 {
                    push(self.stall[m][c][l].0);
                }
            }
        }
        for m in 0..2 {
            for c in 0..2 {
                push(self.hit_stall[m][c].0);
            }
        }
        push(self.busy[0].0);
        push(self.busy[1].0);
        push(self.idle.0);
        push(self.mig_overhead.0);
        push(self.rep_overhead.0);
        push(self.local_misses);
        push(self.remote_misses);
        push(self.far_misses);
        out
    }

    /// Rebuilds a breakdown from a
    /// [`to_raw_parts`](RunBreakdown::to_raw_parts) flattening.
    pub fn from_raw_parts(raw: [u64; RunBreakdown::RAW_LEN]) -> RunBreakdown {
        let mut b = RunBreakdown::new();
        let mut i = 0;
        let mut next = || {
            let v = raw[i];
            i += 1;
            v
        };
        for m in 0..2 {
            for c in 0..2 {
                for l in 0..3 {
                    b.stall[m][c][l] = Ns(next());
                }
            }
        }
        for m in 0..2 {
            for c in 0..2 {
                b.hit_stall[m][c] = Ns(next());
            }
        }
        b.busy[0] = Ns(next());
        b.busy[1] = Ns(next());
        b.idle = Ns(next());
        b.mig_overhead = Ns(next());
        b.rep_overhead = Ns(next());
        b.local_misses = next();
        b.remote_misses = next();
        b.far_misses = next();
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_parts_round_trip_exactly() {
        let mut b = RunBreakdown::new();
        b.add_busy(Mode::User, Ns(11));
        b.add_busy(Mode::Kernel, Ns(22));
        b.add_stall(Mode::User, RefClass::Data, true, Ns(33));
        b.add_stall_tier(Mode::Kernel, RefClass::Instr, StallTier::Far, Ns(44));
        b.add_hit_stall(Mode::User, RefClass::Instr, Ns(5));
        b.add_idle(Ns(6));
        b.add_mig_overhead(Ns(7));
        b.add_rep_overhead(Ns(8));
        let rebuilt = RunBreakdown::from_raw_parts(b.to_raw_parts());
        assert_eq!(rebuilt, b);
        assert_eq!(rebuilt.local_misses(), b.local_misses());
        assert_eq!(rebuilt.remote_misses(), b.remote_misses());
        assert_eq!(rebuilt.total(), b.total());
    }

    #[test]
    fn contention_stall_adds_time_without_counting_a_miss() {
        let mut b = RunBreakdown::new();
        b.add_stall_tier(Mode::User, RefClass::Data, StallTier::Remote, Ns(200));
        b.add_contention_stall(Mode::User, RefClass::Data, StallTier::Remote, Ns(50));
        assert_eq!(b.remote_misses(), 1, "the wait is not a second miss");
        assert_eq!(b.remote_stall(), Ns(250));

        // Equivalent to one combined charge, as the serial loop makes.
        let mut serial = RunBreakdown::new();
        serial.add_stall_tier(Mode::User, RefClass::Data, StallTier::Remote, Ns(250));
        assert_eq!(b, serial);
    }

    fn sample() -> RunBreakdown {
        let mut b = RunBreakdown::new();
        b.add_busy(Mode::User, Ns(500));
        b.add_busy(Mode::Kernel, Ns(100));
        b.add_stall(Mode::User, RefClass::Data, true, Ns(200));
        b.add_stall(Mode::User, RefClass::Instr, false, Ns(50));
        b.add_stall(Mode::Kernel, RefClass::Data, true, Ns(40));
        b.add_idle(Ns(110));
        b.add_mig_overhead(Ns(70));
        b.add_rep_overhead(Ns(30));
        b
    }

    #[test]
    fn totals_add_up() {
        let b = sample();
        assert_eq!(b.other(), Ns(600));
        assert_eq!(b.total_stall(), Ns(290));
        assert_eq!(b.policy_overhead(), Ns(100));
        assert_eq!(b.total(), Ns(1100));
        assert_eq!(b.non_idle(), Ns(990));
    }

    #[test]
    fn locality_split() {
        let b = sample();
        assert_eq!(b.local_stall(), Ns(50));
        assert_eq!(b.remote_stall(), Ns(240));
        assert_eq!(b.local_misses(), 1);
        assert_eq!(b.remote_misses(), 2);
        assert!((b.pct_local_misses() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn table3_percentages() {
        let b = sample();
        // user data stall 200 of 990 non-idle
        assert!((b.stall_pct_of_nonidle(Mode::User, RefClass::Data) - 200.0 / 9.9).abs() < 1e-9);
        // kernel % of total: busy 100 + stall 40 + overhead 100 = 240 of 1100
        assert!((b.mode_pct_of_total(Mode::Kernel) - 24000.0 / 1100.0).abs() < 1e-9);
        assert!((b.idle_pct_of_total() - 10.0).abs() < 1e-9);
        // user % + kernel % + idle % = 100
        let sum = b.mode_pct_of_total(Mode::User)
            + b.mode_pct_of_total(Mode::Kernel)
            + b.idle_pct_of_total();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_safe() {
        let b = RunBreakdown::new();
        assert_eq!(b.total(), Ns::ZERO);
        assert_eq!(b.pct_local_misses(), 0.0);
        assert_eq!(b.stall_pct_of_nonidle(Mode::User, RefClass::Data), 0.0);
        assert_eq!(b.mode_pct_of_total(Mode::User), 0.0);
        assert_eq!(b.idle_pct_of_total(), 0.0);
    }

    #[test]
    fn merge_sums_slices() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total(), Ns(2200));
        assert_eq!(a.local_misses(), 2);
        assert_eq!(a.remote_misses(), 4);
        assert_eq!(a.mig_overhead(), Ns(140));
        assert_eq!(a.rep_overhead(), Ns(60));
        assert_eq!(a.mode_stall(Mode::Kernel), Ns(80));
    }

    #[test]
    fn far_tier_counts_as_off_node() {
        let mut b = RunBreakdown::new();
        b.add_stall_tier(Mode::User, RefClass::Data, StallTier::Local, Ns(100));
        b.add_stall_tier(Mode::User, RefClass::Data, StallTier::Remote, Ns(200));
        b.add_stall_tier(Mode::User, RefClass::Data, StallTier::Far, Ns(400));
        assert_eq!(b.local_stall(), Ns(100));
        assert_eq!(b.tier_stall(StallTier::Remote), Ns(200));
        assert_eq!(b.far_stall(), Ns(400));
        assert_eq!(b.remote_stall(), Ns(600), "remote includes far");
        assert_eq!(b.total_stall(), Ns(700));
        assert_eq!(b.local_misses(), 1);
        assert_eq!(b.far_misses(), 1);
        assert_eq!(b.remote_misses(), 2, "off-node misses include far");
        assert!((b.pct_local_misses() - 100.0 / 3.0).abs() < 1e-9);
        let mut merged = RunBreakdown::new();
        merged.merge(&b);
        assert_eq!(merged, b);
    }

    #[test]
    fn hit_stall_counts_in_table3_but_not_miss_split() {
        let mut b = RunBreakdown::new();
        b.add_busy(Mode::User, Ns(100));
        b.add_hit_stall(Mode::User, RefClass::Data, Ns(40));
        b.add_stall(Mode::User, RefClass::Data, true, Ns(60));
        assert_eq!(b.stall(Mode::User, RefClass::Data), Ns(100));
        assert_eq!(b.remote_stall(), Ns(60));
        assert_eq!(b.local_stall(), Ns::ZERO);
        assert_eq!(b.other(), Ns(100));
        assert_eq!(b.other_incl_hits(), Ns(140));
        assert_eq!(b.total(), Ns(200));
        assert_eq!(b.hit_stall_total(), Ns(40));
        let mut c = RunBreakdown::new();
        c.merge(&b);
        assert_eq!(c, b);
    }
}
