//! Aligned ASCII table rendering for the `repro` harness.

use core::fmt;

/// A simple right-aligned ASCII table.
///
/// The first column (row label) is left-aligned, all others right-aligned,
/// matching the look of the paper's tables.
///
/// # Examples
///
/// ```
/// use ccnuma_stats::Table;
///
/// let mut t = Table::new(vec!["Workload", "Hot", "%Migr"]);
/// t.row(vec!["Engr.".into(), "7728".into(), "55".into()]);
/// let s = t.to_string();
/// assert!(s.contains("Workload"));
/// assert!(s.contains("7728"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let line = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            for (i, width) in w.iter().enumerate() {
                if i > 0 {
                    f.write_str("-+-")?;
                }
                write!(f, "{:-<width$}", "", width = width)?;
            }
            writeln!(f)
        };
        // header
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            if i == 0 {
                write!(f, "{:<width$}", h, width = w[i])?;
            } else {
                write!(f, "{:>width$}", h, width = w[i])?;
            }
        }
        writeln!(f)?;
        line(f)?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    f.write_str(" | ")?;
                }
                if i == 0 {
                    write!(f, "{:<width$}", cell, width = w[i])?;
                } else {
                    write!(f, "{:>width$}", cell, width = w[i])?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Formats a float with one decimal place — the paper's usual precision.
///
/// # Examples
///
/// ```
/// assert_eq!(ccnuma_stats::f1(3.14), "3.1");
/// ```
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "x"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines same width
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
        assert!(lines[1].contains('+'));
        assert!(lines[3].starts_with("longer"));
        assert!(lines[2].ends_with(" 1"));
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(Vec::<String>::new());
    }

    #[test]
    fn f1_rounds() {
        assert_eq!(f1(3.04159), "3.0");
        assert_eq!(f1(29.96), "30.0");
    }
}
