//! Execution-time accounting and report rendering.
//!
//! The paper's tables and figures all slice simulated execution time the
//! same way: busy time vs. memory stall, user vs. kernel, instruction vs.
//! data, local vs. remote, plus the kernel overhead spent migrating and
//! replicating pages. [`RunBreakdown`] accumulates those slices;
//! [`Table`] and [`BarChart`] render them as aligned ASCII for the
//! `repro` harness.
//!
//! # Examples
//!
//! ```
//! use ccnuma_stats::RunBreakdown;
//! use ccnuma_types::{Mode, Ns, RefClass};
//!
//! let mut b = RunBreakdown::new();
//! b.add_busy(Mode::User, Ns(700));
//! b.add_stall(Mode::User, RefClass::Data, true, Ns(300));
//! assert_eq!(b.total(), Ns(1000));
//! assert_eq!(b.remote_stall(), Ns(300));
//! assert_eq!(b.stall_pct_of_nonidle(Mode::User, RefClass::Data), 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bars;
mod breakdown;
mod table;

pub use bars::BarChart;
pub use breakdown::RunBreakdown;
pub use table::{f1, Table};
