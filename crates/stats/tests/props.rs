//! Property-based tests for breakdowns and renderers.

use ccnuma_stats::{BarChart, RunBreakdown, Table};
use ccnuma_types::{Mode, Ns, RefClass};
use proptest::prelude::*;

fn arb_breakdown() -> impl Strategy<Value = RunBreakdown> {
    (
        proptest::collection::vec((0u8..2, 0u8..2, proptest::bool::ANY, 1u64..10_000), 0..50),
        0u64..10_000,
        0u64..10_000,
        0u64..10_000,
        0u64..10_000,
    )
        .prop_map(|(stalls, busy_u, busy_k, idle, hits)| {
            let mut b = RunBreakdown::new();
            b.add_busy(Mode::User, Ns(busy_u));
            b.add_busy(Mode::Kernel, Ns(busy_k));
            b.add_idle(Ns(idle));
            b.add_hit_stall(Mode::User, RefClass::Data, Ns(hits));
            for (m, c, remote, t) in stalls {
                let mode = if m == 0 { Mode::User } else { Mode::Kernel };
                let class = if c == 0 {
                    RefClass::Instr
                } else {
                    RefClass::Data
                };
                b.add_stall(mode, class, remote, Ns(t));
            }
            b
        })
}

proptest! {
    /// Total always decomposes exactly into its published parts.
    #[test]
    fn total_decomposes(b in arb_breakdown()) {
        prop_assert_eq!(
            b.total(),
            b.other_incl_hits() + b.local_stall() + b.remote_stall()
                + b.policy_overhead() + b.idle()
        );
        prop_assert_eq!(b.non_idle() + b.idle(), b.total());
        prop_assert_eq!(b.total_stall(), b.local_stall() + b.remote_stall());
    }

    /// Mode percentages plus idle always sum to 100 (when total > 0).
    #[test]
    fn mode_percentages_sum_to_100(b in arb_breakdown()) {
        if b.total() > Ns::ZERO {
            let sum = b.mode_pct_of_total(Mode::User)
                + b.mode_pct_of_total(Mode::Kernel)
                + b.idle_pct_of_total();
            prop_assert!((sum - 100.0).abs() < 1e-6, "sum {sum}");
        }
    }

    /// Merging is associative with respect to totals: merge(a, b) has the
    /// sum of the parts.
    #[test]
    fn merge_adds_totals(a in arb_breakdown(), b in arb_breakdown()) {
        let mut m = a;
        m.merge(&b);
        prop_assert_eq!(m.total(), a.total() + b.total());
        prop_assert_eq!(m.local_misses(), a.local_misses() + b.local_misses());
        prop_assert_eq!(m.remote_misses(), a.remote_misses() + b.remote_misses());
        prop_assert_eq!(m.hit_stall_total(), a.hit_stall_total() + b.hit_stall_total());
        // Merging an empty breakdown is the identity.
        let mut id = a;
        id.merge(&RunBreakdown::new());
        prop_assert_eq!(id, a);
    }

    /// Tables render a rectangle: every line has the same width, and the
    /// line count is rows + 2.
    #[test]
    fn table_renders_rectangular(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-z0-9]{0,12}", 3..=3), 0..20),
    ) {
        let mut t = Table::new(vec!["one", "two", "three"]);
        for r in &rows {
            t.row(r.clone());
        }
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len(), rows.len() + 2);
        let w = lines[0].len();
        prop_assert!(lines.iter().all(|l| l.len() == w));
    }

    /// Bar charts scale to the configured width: no rendered bar exceeds
    /// width + rounding slack.
    #[test]
    fn bars_respect_width(values in proptest::collection::vec((0.0f64..1e6, 0.0f64..1e6), 1..12), width in 5usize..80) {
        let mut c = BarChart::new(vec!["a", "b"]).with_width(width);
        for (i, (x, y)) in values.iter().enumerate() {
            c.bar(format!("bar{i}"), vec![*x, *y], None);
        }
        let text = c.to_string();
        for line in text.lines().skip(1) {
            let bar_part: String = line
                .chars()
                .skip_while(|ch| *ch != '|')
                .skip(1)
                .take_while(|ch| *ch == '#' || *ch == '=')
                .collect();
            prop_assert!(
                bar_part.len() <= width + 2,
                "bar too long: {} > {width}",
                bar_part.len()
            );
        }
    }
}
