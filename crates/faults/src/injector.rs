//! The [`FaultInjector`] trait and the zero-cost [`NullFaults`] no-op.
//!
//! Mirrors the `Recorder` pattern from `ccnuma-obs`: the machine runner
//! and kernel pager are generic over `F: FaultInjector`, an associated
//! `ENABLED` constant tells callers whether injection can ever fire, and
//! the `NullFaults` implementation (with `ENABLED = false`) lets the
//! compiler erase every injection site so the fault-free path is
//! instruction-for-instruction identical to a build without this crate.

use ccnuma_types::{NodeId, Ns, VirtPage};

use crate::event::{FaultEvent, FaultStats};

/// The page operation about to be attempted, as seen by an injector.
///
/// A deliberately small mirror of the kernel's `PageOpKind` so this
/// crate depends only on `ccnuma-types`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Move a page to a new home node.
    Migrate,
    /// Add a read-only copy of a page on another node.
    Replicate,
    /// Collapse a replica chain back to a single copy.
    Collapse,
    /// Re-point a mapping without copying data.
    Remap,
}

/// A memory-pressure command the runner applies to the frame allocator.
///
/// Storms model bursts of outside demand (the paper's Splash
/// memory-pressure workload): frames are seized out of a node's free
/// list for a while, then released. The runner performs the actual
/// allocation so that frame accounting stays exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StormCmd {
    /// Seize free frames on `node` until at most `keep_free` remain.
    Seize {
        /// Node to pressure.
        node: NodeId,
        /// Free frames to leave available.
        keep_free: u32,
    },
    /// Return every frame previously seized on `node`.
    Release {
        /// Node to relieve.
        node: NodeId,
    },
}

/// Deterministic fault source threaded through the simulator.
///
/// All hooks default to "no fault", so an implementation only overrides
/// the faults it injects. Hooks take `&mut self` because deciding
/// whether to fire consumes seeded randomness; with [`NullFaults`] every
/// call is a no-op the optimizer removes.
///
/// Implementations must be deterministic: the decision stream may depend
/// only on construction-time seeds and the (deterministic) sequence of
/// hook calls, never on wall-clock time or global state.
pub trait FaultInjector {
    /// Whether this injector can ever fire. `false` lets the runner and
    /// pager skip fault bookkeeping entirely (monomorphized out).
    const ENABLED: bool = true;

    /// Should the data copy for this page operation abort?
    ///
    /// Consulted before any state is mutated, so an abort needs no
    /// rollback.
    fn page_op_fails(&mut self, _now: Ns, _op: FaultOp, _page: VirtPage) -> bool {
        false
    }

    /// Should a frame allocation on `node` be forced to fail?
    fn alloc_blocked(&mut self, _now: Ns, _node: NodeId) -> bool {
        false
    }

    /// Extra rendezvous time from delayed or dropped shootdown acks for
    /// a batch flush spanning `tlbs` TLBs. [`Ns::ZERO`] means no fault.
    fn shootdown_ack_delay(&mut self, _now: Ns, _tlbs: u32) -> Ns {
        Ns::ZERO
    }

    /// Should the pager interrupt for a pending batch be lost, leaving
    /// the batch queued for the next drive?
    fn interrupt_lost(&mut self, _now: Ns) -> bool {
        false
    }

    /// Saturation cap for per-page miss counters, if this injector caps
    /// them. Misses on a page already at the cap are dropped.
    fn counter_cap(&self) -> Option<u32> {
        None
    }

    /// Memory-pressure commands to apply at time `now`. Called once per
    /// scheduler quantum boundary.
    fn storm_cmds(&mut self, _now: Ns) -> Vec<StormCmd> {
        Vec::new()
    }

    /// Record a fault that the *runner* executed on the injector's
    /// behalf (e.g. the actual number of frames a storm seized, or a
    /// counter that hit the cap).
    fn note(&mut self, _event: FaultEvent) {}

    /// Drain buffered fault events (for the audit log). Ordering is
    /// stable and deterministic.
    fn drain_events(&mut self) -> Vec<FaultEvent> {
        Vec::new()
    }

    /// Injection-side statistics accumulated so far.
    fn stats(&self) -> FaultStats {
        FaultStats::default()
    }
}

/// The no-op injector: never fires, compiles to nothing.
///
/// # Examples
///
/// ```
/// use ccnuma_faults::{FaultInjector, FaultOp, NullFaults};
/// use ccnuma_types::{Ns, VirtPage};
///
/// let mut f = NullFaults;
/// assert!(!<NullFaults as FaultInjector>::ENABLED);
/// assert!(!f.page_op_fails(Ns(0), FaultOp::Migrate, VirtPage(1)));
/// assert!(f.stats().is_zero());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullFaults;

impl FaultInjector for NullFaults {
    const ENABLED: bool = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn null_faults_is_inert() {
        let mut f = NullFaults;
        assert!(!NullFaults::ENABLED);
        assert!(!f.page_op_fails(Ns(5), FaultOp::Replicate, VirtPage(9)));
        assert!(!f.alloc_blocked(Ns(5), NodeId(0)));
        assert_eq!(f.shootdown_ack_delay(Ns(5), 8), Ns::ZERO);
        assert!(!f.interrupt_lost(Ns(5)));
        assert_eq!(f.counter_cap(), None);
        assert!(f.storm_cmds(Ns(5)).is_empty());
        assert!(f.drain_events().is_empty());
        assert!(f.stats().is_zero());
    }
}
