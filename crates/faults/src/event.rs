//! Fault events and the run-level fault/degradation statistics.

use ccnuma_types::{NodeId, Ns, VirtPage};

/// What kind of fault fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A memory-pressure storm seized frames on a node.
    StormSeize {
        /// The node whose free list shrank.
        node: NodeId,
        /// Frames taken out of the free list.
        frames: u32,
    },
    /// A storm ended and its frames returned to the free list.
    StormRelease {
        /// The node whose frames came back.
        node: NodeId,
        /// Frames returned.
        frames: u32,
    },
    /// A page-copy aborted mid-operation (transient migrate/replicate
    /// failure).
    CopyAbort {
        /// The page whose copy failed.
        page: VirtPage,
    },
    /// A frame allocation was forced to fail on a node.
    AllocBlocked {
        /// The node whose allocation failed.
        node: NodeId,
    },
    /// A TLB-shootdown acknowledgement was delayed (or dropped and
    /// re-sent), extending the rendezvous.
    AckDelay {
        /// Extra rendezvous time charged.
        delay: Ns,
    },
    /// A pager interrupt was lost; the batch stayed queued.
    InterruptLost,
    /// A per-page miss counter saturated; the miss was not counted.
    CounterCapped {
        /// The page whose counter pinned at the cap.
        page: VirtPage,
    },
}

impl FaultKind {
    /// Short lowercase name for exports and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::StormSeize { .. } => "storm_seize",
            FaultKind::StormRelease { .. } => "storm_release",
            FaultKind::CopyAbort { .. } => "copy_abort",
            FaultKind::AllocBlocked { .. } => "alloc_blocked",
            FaultKind::AckDelay { .. } => "ack_delay",
            FaultKind::InterruptLost => "interrupt_lost",
            FaultKind::CounterCapped { .. } => "counter_capped",
        }
    }
}

/// One injected fault, stamped with sim time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Sim time the fault fired.
    pub now: Ns,
    /// What happened.
    pub kind: FaultKind,
}

/// Counts of injected faults and of the simulator's degradation
/// responses, accumulated over one run.
///
/// The injection-side fields are filled by the [`FaultPlan`]
/// (`crate::FaultPlan`); the degradation-side fields are filled by the
/// machine runner as it retries, throttles and reclaims. The two halves
/// are [merged](FaultStats::merged) into the run report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Memory-pressure storms started.
    pub storms: u64,
    /// Frames temporarily seized by storms.
    pub frames_seized: u64,
    /// Transient page-copy aborts injected.
    pub copy_aborts: u64,
    /// Frame allocations forced to fail.
    pub allocs_blocked: u64,
    /// Shootdown acknowledgements delayed or dropped.
    pub acks_delayed: u64,
    /// Total extra rendezvous time injected.
    pub ack_delay_total: Ns,
    /// Pager interrupts lost.
    pub interrupts_lost: u64,
    /// Misses dropped because a page counter saturated.
    pub counters_capped: u64,
    /// Failed operations retried by the runner.
    pub op_retries: u64,
    /// Retries that then succeeded.
    pub retry_successes: u64,
    /// Operations that exhausted their retries and were dropped.
    pub failed_ops: u64,
    /// Times sustained pressure pushed the pager into remap-only mode.
    pub remap_only_activations: u64,
    /// Migrations/replications suppressed while in remap-only mode.
    pub throttled_ops: u64,
    /// Replica frames reclaimed in response to allocation failure.
    pub reclaimed_frames: u64,
}

impl FaultStats {
    /// True when nothing was injected and nothing degraded.
    pub fn is_zero(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Total faults injected (the injection-side fields only).
    pub fn injected_total(&self) -> u64 {
        self.storms
            + self.copy_aborts
            + self.allocs_blocked
            + self.acks_delayed
            + self.interrupts_lost
            + self.counters_capped
    }

    /// Field-wise sum of two stats (injector half + runner half).
    #[must_use]
    pub fn merged(&self, other: &FaultStats) -> FaultStats {
        FaultStats {
            storms: self.storms + other.storms,
            frames_seized: self.frames_seized + other.frames_seized,
            copy_aborts: self.copy_aborts + other.copy_aborts,
            allocs_blocked: self.allocs_blocked + other.allocs_blocked,
            acks_delayed: self.acks_delayed + other.acks_delayed,
            ack_delay_total: self.ack_delay_total + other.ack_delay_total,
            interrupts_lost: self.interrupts_lost + other.interrupts_lost,
            counters_capped: self.counters_capped + other.counters_capped,
            op_retries: self.op_retries + other.op_retries,
            retry_successes: self.retry_successes + other.retry_successes,
            failed_ops: self.failed_ops + other.failed_ops,
            remap_only_activations: self.remap_only_activations + other.remap_only_activations,
            throttled_ops: self.throttled_ops + other.throttled_ops,
            reclaimed_frames: self.reclaimed_frames + other.reclaimed_frames,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(
            FaultKind::StormSeize {
                node: NodeId(0),
                frames: 1
            }
            .name(),
            "storm_seize"
        );
        assert_eq!(FaultKind::InterruptLost.name(), "interrupt_lost");
    }

    #[test]
    fn merged_sums_fieldwise() {
        let a = FaultStats {
            storms: 2,
            ack_delay_total: Ns(10),
            ..FaultStats::default()
        };
        let b = FaultStats {
            storms: 3,
            op_retries: 7,
            ack_delay_total: Ns(5),
            ..FaultStats::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.storms, 5);
        assert_eq!(m.op_retries, 7);
        assert_eq!(m.ack_delay_total, Ns(15));
        assert!(!m.is_zero());
        assert!(FaultStats::default().is_zero());
        assert_eq!(m.injected_total(), 5);
    }
}
