//! Host-side I/O fault injection behind a zero-cost [`Storage`] trait.
//!
//! PR 3 made the *simulated* kernel degrade gracefully under injected
//! faults; this module does the same for the *host* pipeline. Every
//! artifact writer in the workspace — the trace store, the obs
//! exporters, the checkpoint journal, the bench baseline/history files —
//! performs its filesystem traffic through a [`Storage`]
//! implementation:
//!
//! * [`DiskStorage`] — the null layer: plain `std::fs` calls, no fault
//!   hooks. Generic consumers monomorphize to exactly the pre-fault
//!   code, the same zero-cost bar as `NullRecorder`/`NullFaults`.
//! * [`FaultyStorage`] — wraps every operation with a deterministic,
//!   seeded [`IoFaults`] decision: injected write failure, ENOSPC,
//!   torn write, silent bit flip, or a slow-I/O delay.
//!
//! The decision streams are pure functions of the scenario seed (never
//! wall-clock), one independent stream per fault class, mirroring
//! [`FaultPlan`](crate::FaultPlan). Consumers pair the trait with
//! [`retry_io`] for bounded retry-with-backoff on transient failures.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Writes `bytes` to `path` atomically (tmp + rename) on the null
/// storage layer.
///
/// This is the workspace-wide atomic-write primitive: a crash can leave
/// behind a stale `*.tmp` sibling but never a half-written artifact at
/// the final path.
///
/// # Errors
///
/// Propagates the underlying filesystem error; the temporary file is
/// removed on failure.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    DiskStorage.write_atomic(path, bytes)
}

/// A streaming file handle issued by a [`Storage`] implementation.
pub trait StorageFile: Write + Send {
    /// Flushes application and OS buffers to stable storage (fsync).
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem (or injected) error.
    fn sync(&mut self) -> io::Result<()>;
}

impl StorageFile for File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_all()
    }
}

/// The filesystem surface the host-side artifact writers go through.
///
/// Implementations must be cheap to clone; clones share fault state so
/// a single seeded [`IoFaults`] drives every consumer in a process.
pub trait Storage: Clone + Send + Sync + 'static {
    /// Streaming write handle (what chunked writers wrap in a
    /// `BufWriter`).
    type File: StorageFile;
    /// Streaming read handle.
    type ReadFile: Read + Send;

    /// True when fault hooks are live. Lets cold paths skip
    /// fault-bookkeeping entirely; `DiskStorage` reports `false`.
    const FAULTY: bool;

    /// Creates (truncating) `path` for writing.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem (or injected) error.
    fn create(&self, path: &Path) -> io::Result<Self::File>;

    /// Opens `path` for appending, creating it if absent.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem (or injected) error.
    fn open_append(&self, path: &Path) -> io::Result<Self::File>;

    /// Opens `path` for reading.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem (or injected) error.
    fn open(&self, path: &Path) -> io::Result<Self::ReadFile>;

    /// Reads the whole of `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem (or injected) error.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Writes `bytes` to `path` in one shot (non-atomic).
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem (or injected) error.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Renames `from` to `to`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem (or injected) error.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Creates `path` and all missing parents.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem (or injected) error.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem (or injected) error.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Writes `bytes` to `path` atomically: a `*.tmp` sibling is
    /// written in full, then renamed over the final path.
    ///
    /// # Errors
    ///
    /// Propagates the underlying error; the temporary file is removed
    /// on failure.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = Path::new(&tmp);
        self.write(tmp, bytes).and_then(|()| {
            self.rename(tmp, path).inspect_err(|_| {
                let _ = fs::remove_file(tmp);
            })
        })
    }

    /// Appends `line` plus a trailing newline to `path` as a single
    /// `write(2)` on an `O_APPEND` descriptor, holding an exclusive
    /// file lock so concurrent appenders cannot interleave records.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem (or injected) error.
    fn append_line(&self, path: &Path, line: &str) -> io::Result<()>;
}

/// The null storage layer: plain `std::fs`, no fault hooks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStorage;

fn locked_append(file: &File, line: &str) -> io::Result<()> {
    // One buffer, one write_all on an O_APPEND descriptor: the kernel
    // appends the record in a single atomic write(2). The exclusive
    // lock is belt-and-braces for writers on filesystems where
    // O_APPEND atomicity is weaker (e.g. some network mounts).
    file.lock()?;
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    let mut sink = file;
    let res = sink.write_all(&buf);
    let _ = file.unlock();
    res
}

impl Storage for DiskStorage {
    type File = File;
    type ReadFile = File;

    const FAULTY: bool = false;

    fn create(&self, path: &Path) -> io::Result<File> {
        File::create(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<File> {
        OpenOptions::new().create(true).append(true).open(path)
    }

    fn open(&self, path: &Path) -> io::Result<File> {
        File::open(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn append_line(&self, path: &Path, line: &str) -> io::Result<()> {
        let file = self.open_append(path)?;
        locked_append(&file, line)
    }
}

/// One class of injected host-I/O fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoFaultKind {
    /// The write fails outright with a transient error (retryable).
    WriteFail,
    /// The write fails with ENOSPC semantics (permanent; not retried).
    DiskFull,
    /// Only a prefix of the buffer reaches the file, then the write
    /// errors — what a crash mid-`write(2)` leaves behind.
    TornWrite,
    /// One bit of the buffer is flipped and the write *succeeds* —
    /// silent corruption, detectable only by checksums/fsck.
    BitFlip,
    /// The operation completes after an injected delay.
    SlowIo,
}

/// Raw per-class injection rates for a custom [`IoFaults`].
///
/// All probabilities are per storage operation, in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoFaultConfig {
    /// Probability a write fails with a transient error.
    pub write_fail_p: f64,
    /// Probability a write fails with ENOSPC semantics.
    pub disk_full_p: f64,
    /// Probability a write is torn (prefix lands, then an error).
    pub torn_write_p: f64,
    /// Probability one bit of the payload is silently flipped.
    pub bit_flip_p: f64,
    /// Probability the operation is delayed by [`slow_delay`].
    ///
    /// [`slow_delay`]: IoFaultConfig::slow_delay
    pub slow_io_p: f64,
    /// Host-time delay injected by a slow-I/O event.
    pub slow_delay: Duration,
}

impl Default for IoFaultConfig {
    fn default() -> IoFaultConfig {
        IoFaultConfig {
            write_fail_p: 0.0,
            disk_full_p: 0.0,
            torn_write_p: 0.0,
            bit_flip_p: 0.0,
            slow_io_p: 0.0,
            slow_delay: Duration::from_millis(1),
        }
    }
}

/// The shipped host-I/O stress scenarios (CLI/docs surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoScenario {
    /// Transient write failures a bounded retry should absorb.
    FlakyDisk,
    /// ENOSPC on a fraction of writes; permanent, surfaces typed errors.
    DiskFull,
    /// Torn writes: prefixes land, the atomic-write discipline must
    /// keep final paths clean.
    TornWrites,
    /// Silent single-bit corruption; only checksums/fsck catch it.
    BitRot,
    /// Every operation delayed; watchdog/deadline fodder.
    SlowDisk,
    /// A little of everything.
    IoChaos,
}

impl IoScenario {
    /// All scenarios, in CLI listing order.
    pub const ALL: [IoScenario; 6] = [
        IoScenario::FlakyDisk,
        IoScenario::DiskFull,
        IoScenario::TornWrites,
        IoScenario::BitRot,
        IoScenario::SlowDisk,
        IoScenario::IoChaos,
    ];

    /// The scenario's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            IoScenario::FlakyDisk => "flaky-disk",
            IoScenario::DiskFull => "disk-full",
            IoScenario::TornWrites => "torn-writes",
            IoScenario::BitRot => "bit-rot",
            IoScenario::SlowDisk => "slow-disk",
            IoScenario::IoChaos => "io-chaos",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<IoScenario> {
        IoScenario::ALL.into_iter().find(|s| s.name() == name)
    }

    /// The scenario's injection rates.
    pub fn config(self) -> IoFaultConfig {
        let base = IoFaultConfig::default();
        match self {
            IoScenario::FlakyDisk => IoFaultConfig {
                write_fail_p: 0.30,
                ..base
            },
            IoScenario::DiskFull => IoFaultConfig {
                disk_full_p: 0.25,
                ..base
            },
            IoScenario::TornWrites => IoFaultConfig {
                torn_write_p: 0.30,
                ..base
            },
            IoScenario::BitRot => IoFaultConfig {
                bit_flip_p: 0.30,
                ..base
            },
            IoScenario::SlowDisk => IoFaultConfig {
                slow_io_p: 1.0,
                slow_delay: Duration::from_millis(2),
                ..base
            },
            IoScenario::IoChaos => IoFaultConfig {
                write_fail_p: 0.10,
                disk_full_p: 0.02,
                torn_write_p: 0.05,
                bit_flip_p: 0.05,
                slow_io_p: 0.10,
                slow_delay: Duration::from_millis(1),
            },
        }
    }
}

/// What the injection engine decided for one write operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteDecision {
    /// No fault; optionally after a delay (handled before returning).
    Clean,
    /// Fail with a transient error.
    Fail,
    /// Fail with ENOSPC semantics.
    Full,
    /// Write only `keep` bytes, then fail.
    Torn { keep: usize },
    /// Flip bit `bit` of byte `byte`, then succeed.
    Flip { byte: usize, bit: u8 },
}

/// Counters for every fault the engine injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Storage operations that consulted the engine.
    pub ops: u64,
    /// Transient write failures injected.
    pub write_fails: u64,
    /// ENOSPC failures injected.
    pub disk_fulls: u64,
    /// Torn writes injected.
    pub torn_writes: u64,
    /// Bits silently flipped.
    pub bit_flips: u64,
    /// Slow-I/O delays injected.
    pub delays: u64,
}

impl IoStats {
    /// Total faults injected.
    pub fn injected_total(&self) -> u64 {
        self.write_fails + self.disk_fulls + self.torn_writes + self.bit_flips + self.delays
    }
}

struct IoInner {
    cfg: IoFaultConfig,
    fail_rng: SmallRng,
    full_rng: SmallRng,
    torn_rng: SmallRng,
    flip_rng: SmallRng,
    slow_rng: SmallRng,
    stats: IoStats,
}

/// The seeded host-I/O fault engine.
///
/// Decision streams are pure functions of the seed and the operation
/// sequence, one independent [`SmallRng`] per fault class (the
/// [`FaultPlan`](crate::FaultPlan) salting discipline), so a given
/// scenario + seed injects the same faults on every run. Clones share
/// state: one engine drives every [`FaultyStorage`] consumer in a
/// process and the stats accumulate centrally.
#[derive(Clone)]
pub struct IoFaults {
    inner: Arc<Mutex<IoInner>>,
}

impl std::fmt::Debug for IoFaults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoFaults").finish_non_exhaustive()
    }
}

/// Marker string carried by every injected (non-silent) I/O error.
pub const INJECTED_IO_MARKER: &str = "injected I/O fault";

fn injected_error(kind: io::ErrorKind, what: &str) -> io::Error {
    io::Error::new(kind, format!("{INJECTED_IO_MARKER}: {what}"))
}

impl IoFaults {
    /// An engine for a named scenario.
    pub fn from_scenario(scenario: IoScenario, seed: u64) -> IoFaults {
        IoFaults::new(scenario.config(), seed)
    }

    /// An engine with raw rates.
    pub fn new(cfg: IoFaultConfig, seed: u64) -> IoFaults {
        let salted =
            |salt: u64| SmallRng::seed_from_u64(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        IoFaults {
            inner: Arc::new(Mutex::new(IoInner {
                cfg,
                fail_rng: salted(1),
                full_rng: salted(2),
                torn_rng: salted(3),
                flip_rng: salted(4),
                slow_rng: salted(5),
                stats: IoStats::default(),
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, IoInner> {
        // A panic while holding the lock only loses fault counters.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> IoStats {
        self.lock().stats
    }

    /// Decides the fate of one `len`-byte write. Sleeps here if a
    /// slow-I/O delay fires (delays compose with any other outcome).
    fn on_write(&self, len: usize) -> WriteDecision {
        let mut delay = None;
        let decision = {
            let g = &mut *self.lock();
            g.stats.ops += 1;
            if g.cfg.slow_io_p > 0.0 && g.slow_rng.gen_bool(g.cfg.slow_io_p) {
                g.stats.delays += 1;
                delay = Some(g.cfg.slow_delay);
            }
            if g.cfg.disk_full_p > 0.0 && g.full_rng.gen_bool(g.cfg.disk_full_p) {
                g.stats.disk_fulls += 1;
                WriteDecision::Full
            } else if g.cfg.write_fail_p > 0.0 && g.fail_rng.gen_bool(g.cfg.write_fail_p) {
                g.stats.write_fails += 1;
                WriteDecision::Fail
            } else if len > 0 && g.cfg.torn_write_p > 0.0 && g.torn_rng.gen_bool(g.cfg.torn_write_p)
            {
                g.stats.torn_writes += 1;
                let keep = g.torn_rng.gen_range(0..len);
                WriteDecision::Torn { keep }
            } else if len > 0 && g.cfg.bit_flip_p > 0.0 && g.flip_rng.gen_bool(g.cfg.bit_flip_p) {
                g.stats.bit_flips += 1;
                let byte = g.flip_rng.gen_range(0..len);
                let bit = g.flip_rng.gen_range(0..8u8);
                WriteDecision::Flip { byte, bit }
            } else {
                WriteDecision::Clean
            }
        };
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        decision
    }

    /// Decides the fate of one metadata operation (rename, mkdir,
    /// remove, open): delay and transient/ENOSPC failure only.
    fn on_meta(&self) -> io::Result<()> {
        let decision = self.on_write(0);
        match decision {
            WriteDecision::Full => Err(injected_error(
                io::ErrorKind::StorageFull,
                "no space left on device",
            )),
            WriteDecision::Fail => Err(injected_error(io::ErrorKind::Other, "metadata op failed")),
            _ => Ok(()),
        }
    }

    /// Applies a write decision to `buf` destined for `sink`.
    fn faulty_write<W: Write>(&self, sink: &mut W, buf: &[u8]) -> io::Result<usize> {
        match self.on_write(buf.len()) {
            WriteDecision::Clean => {
                sink.write_all(buf)?;
                Ok(buf.len())
            }
            WriteDecision::Fail => Err(injected_error(io::ErrorKind::Other, "write failed")),
            WriteDecision::Full => Err(injected_error(
                io::ErrorKind::StorageFull,
                "no space left on device",
            )),
            WriteDecision::Torn { keep } => {
                sink.write_all(&buf[..keep])?;
                Err(injected_error(io::ErrorKind::Other, "torn write"))
            }
            WriteDecision::Flip { byte, bit } => {
                let mut corrupted = buf.to_vec();
                corrupted[byte] ^= 1 << bit;
                sink.write_all(&corrupted)?;
                Ok(buf.len())
            }
        }
    }
}

/// True for errors a bounded retry may absorb: injected transient
/// failures, interrupted syscalls, timeouts. ENOSPC-class errors are
/// permanent and reported immediately.
pub fn is_transient(err: &io::Error) -> bool {
    !matches!(
        err.kind(),
        io::ErrorKind::StorageFull
            | io::ErrorKind::QuotaExceeded
            | io::ErrorKind::NotFound
            | io::ErrorKind::PermissionDenied
    )
}

/// Bounded retry-with-backoff parameters for storage consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts (first try included). 0 behaves as 1.
    pub attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_micros(500),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    pub const NONE: RetryPolicy = RetryPolicy {
        attempts: 1,
        base_backoff: Duration::ZERO,
    };
}

/// Runs `op`, retrying transient failures (per [`is_transient`]) up to
/// `policy.attempts` total attempts with doubling backoff.
///
/// # Errors
///
/// Returns the last error once attempts are exhausted, or the first
/// permanent (non-transient) error immediately.
pub fn retry_io<T>(policy: RetryPolicy, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let attempts = policy.attempts.max(1);
    let mut backoff = policy.base_backoff;
    let mut tried = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                tried += 1;
                if tried >= attempts || !is_transient(&e) {
                    return Err(e);
                }
                if backoff > Duration::ZERO {
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
            }
        }
    }
}

/// A write handle whose every `write` consults the fault engine.
#[derive(Debug)]
pub struct FaultyFile {
    inner: File,
    faults: IoFaults,
}

impl Write for FaultyFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.faults.faulty_write(&mut self.inner, buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl StorageFile for FaultyFile {
    fn sync(&mut self) -> io::Result<()> {
        self.faults.on_meta()?;
        self.inner.sync_all()
    }
}

/// A read handle that injects delays and silent bit flips on reads.
#[derive(Debug)]
pub struct FaultyReadFile {
    inner: File,
    faults: IoFaults,
}

impl Read for FaultyReadFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        if n > 0 {
            // Reads only suffer silent corruption and delays; hard read
            // failures are already modelled well by the write side.
            if let WriteDecision::Flip { byte, bit } = self.faults.on_write(n) {
                buf[byte % n] ^= 1 << bit;
            }
        }
        Ok(n)
    }
}

/// The fault-injecting storage layer: [`DiskStorage`] semantics with
/// every operation routed through a shared [`IoFaults`] engine.
#[derive(Debug, Clone)]
pub struct FaultyStorage {
    faults: IoFaults,
}

impl FaultyStorage {
    /// A storage layer driven by `faults` (clone of a shared engine).
    pub fn new(faults: IoFaults) -> FaultyStorage {
        FaultyStorage { faults }
    }

    /// The engine, for reading [`IoStats`].
    pub fn faults(&self) -> &IoFaults {
        &self.faults
    }
}

impl Storage for FaultyStorage {
    type File = FaultyFile;
    type ReadFile = FaultyReadFile;

    const FAULTY: bool = true;

    fn create(&self, path: &Path) -> io::Result<FaultyFile> {
        self.faults.on_meta()?;
        Ok(FaultyFile {
            inner: File::create(path)?,
            faults: self.faults.clone(),
        })
    }

    fn open_append(&self, path: &Path) -> io::Result<FaultyFile> {
        self.faults.on_meta()?;
        let inner = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FaultyFile {
            inner,
            faults: self.faults.clone(),
        })
    }

    fn open(&self, path: &Path) -> io::Result<FaultyReadFile> {
        self.faults.on_meta()?;
        Ok(FaultyReadFile {
            inner: File::open(path)?,
            faults: self.faults.clone(),
        })
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut f = self.open(path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = File::create(path)?;
        self.faults.faulty_write(&mut f, bytes).map(|_| ())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.faults.on_meta()?;
        fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.faults.on_meta()?;
        fs::create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.faults.on_meta()?;
        fs::remove_file(path)
    }

    fn append_line(&self, path: &Path, line: &str) -> io::Result<()> {
        // Decide first so the locked fast path stays identical to the
        // null layer; a torn decision appends a prefix record, which is
        // exactly the corruption the journal reader must tolerate.
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        file.lock()?;
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        let mut sink = &file;
        let res = self.faults.faulty_write(&mut sink, &buf).map(|_| ());
        let _ = file.unlock();
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ccnuma-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn disk_storage_atomic_write_round_trips() {
        let d = tmpdir("atomic");
        let p = d.join("a.json");
        atomic_write(&p, b"{\"ok\":true}").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"{\"ok\":true}");
        assert!(!d.join("a.json.tmp").exists());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn append_line_is_single_record() {
        let d = tmpdir("append");
        let p = d.join("h.jsonl");
        DiskStorage.append_line(&p, "one").unwrap();
        DiskStorage.append_line(&p, "two").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "one\ntwo\n");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn decision_streams_are_deterministic() {
        let a = IoFaults::from_scenario(IoScenario::IoChaos, 42);
        let b = IoFaults::from_scenario(IoScenario::IoChaos, 42);
        let da: Vec<_> = (0..200).map(|i| a.on_write(64 + i)).collect();
        let db: Vec<_> = (0..200).map(|i| b.on_write(64 + i)).collect();
        assert_eq!(da, db);
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().injected_total() > 0, "chaos must inject");
    }

    #[test]
    fn every_scenario_fires_its_class() {
        let cases = [
            (IoScenario::FlakyDisk, "write_fails"),
            (IoScenario::DiskFull, "disk_fulls"),
            (IoScenario::TornWrites, "torn_writes"),
            (IoScenario::BitRot, "bit_flips"),
            (IoScenario::SlowDisk, "delays"),
        ];
        for (sc, what) in cases {
            let f = IoFaults::from_scenario(sc, 7);
            for _ in 0..100 {
                let _ = f.on_write(128);
            }
            let s = f.stats();
            let n = match sc {
                IoScenario::FlakyDisk => s.write_fails,
                IoScenario::DiskFull => s.disk_fulls,
                IoScenario::TornWrites => s.torn_writes,
                IoScenario::BitRot => s.bit_flips,
                IoScenario::SlowDisk => s.delays,
                IoScenario::IoChaos => unreachable!(),
            };
            assert!(n > 0, "{} never fired for {}", what, sc.name());
        }
    }

    #[test]
    fn retry_absorbs_transient_flaky_writes() {
        let d = tmpdir("retry");
        let p = d.join("out.bin");
        let storage = FaultyStorage::new(IoFaults::from_scenario(IoScenario::FlakyDisk, 3));
        // Each atomic write rolls twice (write + rename), so an attempt
        // fails with p ≈ 0.51; 16 attempts make failure vanishingly rare.
        let policy = RetryPolicy {
            attempts: 16,
            base_backoff: Duration::ZERO,
        };
        for i in 0..20u8 {
            retry_io(policy, || storage.write_atomic(&p, &[i; 32])).unwrap();
        }
        assert_eq!(fs::read(&p).unwrap(), vec![19u8; 32]);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn disk_full_is_permanent_and_typed() {
        let err = injected_error(io::ErrorKind::StorageFull, "no space left on device");
        assert!(!is_transient(&err));
        let mut calls = 0;
        let res: io::Result<()> = retry_io(RetryPolicy::default(), || {
            calls += 1;
            Err(injected_error(
                io::ErrorKind::StorageFull,
                "no space left on device",
            ))
        });
        assert_eq!(calls, 1, "ENOSPC must not be retried");
        assert_eq!(res.unwrap_err().kind(), io::ErrorKind::StorageFull);
    }

    #[test]
    fn torn_write_leaves_prefix_only() {
        let f = IoFaults::new(
            IoFaultConfig {
                torn_write_p: 1.0,
                ..IoFaultConfig::default()
            },
            9,
        );
        let mut sink = Vec::new();
        let err = f.faulty_write(&mut sink, &[0xAB; 100]).unwrap_err();
        assert!(err.to_string().contains(INJECTED_IO_MARKER));
        assert!(sink.len() < 100, "torn write must truncate");
        assert!(sink.iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn bit_flip_is_silent_single_bit() {
        let f = IoFaults::new(
            IoFaultConfig {
                bit_flip_p: 1.0,
                ..IoFaultConfig::default()
            },
            11,
        );
        let mut sink = Vec::new();
        let n = f.faulty_write(&mut sink, &[0u8; 64]).unwrap();
        assert_eq!(n, 64);
        assert_eq!(sink.len(), 64);
        let ones: u32 = sink.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one flipped bit");
    }

    #[test]
    fn scenario_names_round_trip() {
        for s in IoScenario::ALL {
            assert_eq!(IoScenario::from_name(s.name()), Some(s));
        }
        assert_eq!(IoScenario::from_name("nope"), None);
    }
}
