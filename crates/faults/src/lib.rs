//! Deterministic fault injection and stress for the CC-NUMA simulator.
//!
//! The paper's policy is explicitly a *degradation* policy: replication
//! throttles and replicas are reclaimed when a node runs out of free
//! frames, and the pager must stay correct while page operations fail
//! mid-flight. This crate supplies the stress that exercises those
//! paths, deterministically:
//!
//! * [`FaultInjector`] — the trait the machine runner and kernel pager
//!   are generic over, mirroring `ccnuma-obs`'s `Recorder`. Hooks decide
//!   whether a page-copy aborts, an allocation fails, a shootdown ack is
//!   delayed, a pager interrupt is lost, or a miss counter saturates,
//!   and emit memory-pressure [`StormCmd`]s.
//! * [`NullFaults`] — the `ENABLED = false` no-op; the fault-free build
//!   monomorphizes to exactly the pre-fault code.
//! * [`FaultPlan`] — a seeded implementation whose decision streams are
//!   pure functions of the workload seed and a chaos seed (never
//!   wall-clock), one independent stream per fault class.
//! * [`FaultScenario`] / [`FaultSpec`] / [`FaultConfig`] — the shipped
//!   named scenarios (`pressure-storm`, `copy-flake`, `ack-storm`,
//!   `intr-loss`, `counter-sat`, `chaos`), the per-run selection that
//!   keys the executor cache, and the raw rate knobs for custom stress
//!   tests.
//! * [`FaultEvent`] / [`FaultStats`] — what fired, for the audit log
//!   and the run report's degradation summary.
//! * [`io`] — the same discipline for the *host* pipeline: artifact
//!   writers are generic over [`Storage`], whose null layer
//!   ([`DiskStorage`]) is plain `std::fs` and whose faulty layer
//!   ([`FaultyStorage`] + [`IoFaults`]) injects seeded write failures,
//!   ENOSPC, torn writes, silent bit flips and slow-I/O delays.
//!
//! # Examples
//!
//! ```
//! use ccnuma_faults::{FaultInjector, FaultOp, FaultPlan, FaultScenario, FaultSpec};
//! use ccnuma_types::{Ns, VirtPage};
//!
//! let spec = FaultSpec { scenario: FaultScenario::CopyFlake, chaos_seed: 7 };
//! let mut a = FaultPlan::from_spec(spec, 0xBEEF, 8);
//! let mut b = FaultPlan::from_spec(spec, 0xBEEF, 8);
//! for i in 0..100 {
//!     let now = Ns(i * 500);
//!     assert_eq!(
//!         a.page_op_fails(now, FaultOp::Migrate, VirtPage(i)),
//!         b.page_op_fails(now, FaultOp::Migrate, VirtPage(i)),
//!     );
//! }
//! assert_eq!(a.stats(), b.stats());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod injector;
pub mod io;
mod plan;

pub use event::{FaultEvent, FaultKind, FaultStats};
pub use injector::{FaultInjector, FaultOp, NullFaults, StormCmd};
pub use io::{
    atomic_write, is_transient, retry_io, DiskStorage, FaultyStorage, IoFaultConfig, IoFaultKind,
    IoFaults, IoScenario, IoStats, RetryPolicy, Storage, StorageFile,
};
pub use plan::{FaultConfig, FaultPlan, FaultScenario, FaultSpec};
