//! Named fault scenarios and the seeded, deterministic [`FaultPlan`].

use core::fmt;
use core::str::FromStr;

use ccnuma_types::{NodeId, Ns, VirtPage};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::event::{FaultEvent, FaultKind, FaultStats};
use crate::injector::{FaultInjector, FaultOp, StormCmd};

/// Buffered fault events are capped so a long stressed run cannot grow
/// without bound; statistics stay exact past the cap.
const EVENT_BUFFER_CAP: usize = 8192;

/// A shipped, named fault scenario.
///
/// Scenario names are part of the CLI surface (`repro --faults <name>`)
/// and of the run cache key, so they are stable strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultScenario {
    /// Periodic per-node memory-pressure storms that shrink a node's
    /// free list to a handful of frames, then release.
    PressureStorm,
    /// Transient page-copy aborts: migrations and replications fail
    /// mid-copy with some probability.
    CopyFlake,
    /// Delayed / dropped TLB-shootdown acknowledgements stretch the
    /// flush rendezvous.
    AckStorm,
    /// Pager interrupts are lost; batches sit queued until re-driven.
    IntrLoss,
    /// Per-page miss counters saturate at a small cap.
    CounterSat,
    /// Everything at once, at milder rates.
    Chaos,
}

impl FaultScenario {
    /// Every shipped scenario, in a stable order.
    pub const ALL: [FaultScenario; 6] = [
        FaultScenario::PressureStorm,
        FaultScenario::CopyFlake,
        FaultScenario::AckStorm,
        FaultScenario::IntrLoss,
        FaultScenario::CounterSat,
        FaultScenario::Chaos,
    ];

    /// The CLI name of the scenario.
    pub fn name(&self) -> &'static str {
        match self {
            FaultScenario::PressureStorm => "pressure-storm",
            FaultScenario::CopyFlake => "copy-flake",
            FaultScenario::AckStorm => "ack-storm",
            FaultScenario::IntrLoss => "intr-loss",
            FaultScenario::CounterSat => "counter-sat",
            FaultScenario::Chaos => "chaos",
        }
    }

    /// One-line description for `--list`-style output.
    pub fn describe(&self) -> &'static str {
        match self {
            FaultScenario::PressureStorm => {
                "periodic storms seize a node's free frames, forcing reclamation"
            }
            FaultScenario::CopyFlake => "migrate/replicate data copies abort transiently",
            FaultScenario::AckStorm => "TLB-shootdown acks are delayed or dropped",
            FaultScenario::IntrLoss => "pager interrupts are lost; batches stay queued",
            FaultScenario::CounterSat => "per-page miss counters saturate at a small cap",
            FaultScenario::Chaos => "all fault classes at once, at milder rates",
        }
    }
}

impl fmt::Display for FaultScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FaultScenario {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultScenario::ALL
            .into_iter()
            .find(|sc| sc.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = FaultScenario::ALL.iter().map(|sc| sc.name()).collect();
                format!(
                    "unknown fault scenario '{s}' (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

/// What to inject in a run: a scenario plus the chaos seed.
///
/// Lives in the machine `RunOptions`, so its `Debug` rendering is part
/// of the executor's cache key: the same spec with different faults (or
/// a different chaos seed) is a different run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// The named scenario to inject.
    pub scenario: FaultScenario,
    /// Extra seed mixed with the workload seed, so one workload can be
    /// stressed with many independent fault streams.
    pub chaos_seed: u64,
}

impl FaultSpec {
    /// A spec for `scenario` with the default chaos seed (0).
    pub fn new(scenario: FaultScenario) -> FaultSpec {
        FaultSpec {
            scenario,
            chaos_seed: 0,
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.scenario, self.chaos_seed)
    }
}

/// Tunable fault rates behind a scenario.
///
/// Probabilities are per opportunity (per page op, per allocation, per
/// flush, per pager drive). Tests may build custom configs directly to
/// push the simulator harder than any shipped scenario does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Gap between memory-pressure storms; `None` disables storms.
    pub storm_period: Option<Ns>,
    /// How long each storm holds its frames.
    pub storm_duration: Ns,
    /// Free frames a storm leaves on the node it pressures.
    pub storm_keep_free: u32,
    /// Probability a migrate/replicate data copy aborts.
    pub copy_abort_p: f64,
    /// Probability a frame allocation is forced to fail.
    pub alloc_block_p: f64,
    /// Probability a batch flush suffers delayed/dropped acks.
    pub ack_delay_p: f64,
    /// Extra rendezvous time charged when acks are delayed.
    pub ack_delay: Ns,
    /// Probability a pager interrupt is lost.
    pub intr_loss_p: f64,
    /// Saturation cap for per-page miss counters; `None` disables.
    pub counter_cap: Option<u32>,
}

impl Default for FaultConfig {
    /// The all-off config: equivalent to [`crate::NullFaults`] in
    /// behaviour (though not in cost — prefer `NullFaults` for that).
    fn default() -> FaultConfig {
        FaultConfig {
            storm_period: None,
            storm_duration: Ns::ZERO,
            storm_keep_free: 0,
            copy_abort_p: 0.0,
            alloc_block_p: 0.0,
            ack_delay_p: 0.0,
            ack_delay: Ns::ZERO,
            intr_loss_p: 0.0,
            counter_cap: None,
        }
    }
}

impl FaultConfig {
    /// The preset rates for a shipped scenario.
    ///
    /// Rates are tuned so that even a `--scale quick` run (a few
    /// simulated milliseconds) sees each fault class fire many times,
    /// while every scenario still completes with a report.
    pub fn for_scenario(scenario: FaultScenario) -> FaultConfig {
        let off = FaultConfig::default();
        match scenario {
            FaultScenario::PressureStorm => FaultConfig {
                storm_period: Some(Ns(300_000)),
                storm_duration: Ns(150_000),
                storm_keep_free: 2,
                ..off
            },
            FaultScenario::CopyFlake => FaultConfig {
                copy_abort_p: 0.15,
                ..off
            },
            FaultScenario::AckStorm => FaultConfig {
                ack_delay_p: 0.30,
                ack_delay: Ns(5_000),
                ..off
            },
            FaultScenario::IntrLoss => FaultConfig {
                intr_loss_p: 0.25,
                ..off
            },
            FaultScenario::CounterSat => FaultConfig {
                counter_cap: Some(3),
                ..off
            },
            FaultScenario::Chaos => FaultConfig {
                storm_period: Some(Ns(500_000)),
                storm_duration: Ns(120_000),
                storm_keep_free: 4,
                copy_abort_p: 0.08,
                alloc_block_p: 0.02,
                ack_delay_p: 0.15,
                ack_delay: Ns(3_000),
                intr_loss_p: 0.10,
                counter_cap: Some(5),
            },
        }
    }
}

/// A seeded, deterministic fault injector.
///
/// The decision streams are pure functions of the construction seeds:
/// each fault class draws from its own [`SmallRng`] stream, so firing
/// one class never perturbs another, and a run replayed with the same
/// workload seed and chaos seed injects the identical fault sequence
/// regardless of thread count or wall-clock time.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    nodes: u16,
    copy_rng: SmallRng,
    alloc_rng: SmallRng,
    ack_rng: SmallRng,
    intr_rng: SmallRng,
    storm_rng: SmallRng,
    /// Time the next storm may start.
    next_storm: Ns,
    /// Release deadline and node of the storm in flight, if any.
    active_storm: Option<(Ns, NodeId)>,
    stats: FaultStats,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Builds a plan from a custom config. `seed` fixes every decision
    /// stream; `nodes` bounds which nodes storms may target.
    pub fn new(cfg: FaultConfig, seed: u64, nodes: u16) -> FaultPlan {
        // Decorrelate the per-class streams with fixed odd salts.
        let stream =
            |salt: u64| SmallRng::seed_from_u64(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let first_storm = cfg.storm_period.unwrap_or(Ns::ZERO);
        FaultPlan {
            cfg,
            nodes: nodes.max(1),
            copy_rng: stream(1),
            alloc_rng: stream(2),
            ack_rng: stream(3),
            intr_rng: stream(4),
            storm_rng: stream(5),
            next_storm: first_storm,
            active_storm: None,
            stats: FaultStats::default(),
            events: Vec::new(),
        }
    }

    /// Builds a plan for a named scenario, mixing the chaos seed with
    /// the run's workload seed so distinct runs see distinct (but
    /// reproducible) fault streams.
    pub fn from_spec(spec: FaultSpec, workload_seed: u64, nodes: u16) -> FaultPlan {
        let seed = spec.chaos_seed
            ^ workload_seed.rotate_left(17)
            ^ (spec.scenario.name().len() as u64) << 56;
        FaultPlan::new(FaultConfig::for_scenario(spec.scenario), seed, nodes)
    }

    /// The config this plan runs with.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    fn record(&mut self, now: Ns, kind: FaultKind) {
        match kind {
            FaultKind::StormSeize { frames, .. } => {
                self.stats.storms += 1;
                self.stats.frames_seized += u64::from(frames);
            }
            FaultKind::StormRelease { .. } => {}
            FaultKind::CopyAbort { .. } => self.stats.copy_aborts += 1,
            FaultKind::AllocBlocked { .. } => self.stats.allocs_blocked += 1,
            FaultKind::AckDelay { delay } => {
                self.stats.acks_delayed += 1;
                self.stats.ack_delay_total += delay;
            }
            FaultKind::InterruptLost => self.stats.interrupts_lost += 1,
            FaultKind::CounterCapped { .. } => self.stats.counters_capped += 1,
        }
        if self.events.len() < EVENT_BUFFER_CAP {
            self.events.push(FaultEvent { now, kind });
        }
    }
}

impl FaultInjector for FaultPlan {
    fn page_op_fails(&mut self, now: Ns, op: FaultOp, page: VirtPage) -> bool {
        // Remaps carry no data copy, so there is nothing to abort.
        if matches!(op, FaultOp::Remap) || self.cfg.copy_abort_p <= 0.0 {
            return false;
        }
        let fails = self.copy_rng.gen_bool(self.cfg.copy_abort_p);
        if fails {
            self.record(now, FaultKind::CopyAbort { page });
        }
        fails
    }

    fn alloc_blocked(&mut self, now: Ns, node: NodeId) -> bool {
        if self.cfg.alloc_block_p <= 0.0 {
            return false;
        }
        let blocked = self.alloc_rng.gen_bool(self.cfg.alloc_block_p);
        if blocked {
            self.record(now, FaultKind::AllocBlocked { node });
        }
        blocked
    }

    fn shootdown_ack_delay(&mut self, now: Ns, tlbs: u32) -> Ns {
        if self.cfg.ack_delay_p <= 0.0 || tlbs == 0 {
            return Ns::ZERO;
        }
        if self.ack_rng.gen_bool(self.cfg.ack_delay_p) {
            let delay = self.cfg.ack_delay;
            if delay > Ns::ZERO {
                self.record(now, FaultKind::AckDelay { delay });
            }
            delay
        } else {
            Ns::ZERO
        }
    }

    fn interrupt_lost(&mut self, now: Ns) -> bool {
        if self.cfg.intr_loss_p <= 0.0 {
            return false;
        }
        let lost = self.intr_rng.gen_bool(self.cfg.intr_loss_p);
        if lost {
            self.record(now, FaultKind::InterruptLost);
        }
        lost
    }

    fn counter_cap(&self) -> Option<u32> {
        self.cfg.counter_cap
    }

    fn storm_cmds(&mut self, now: Ns) -> Vec<StormCmd> {
        let Some(period) = self.cfg.storm_period else {
            return Vec::new();
        };
        let mut cmds = Vec::new();
        if let Some((release_at, node)) = self.active_storm {
            if now >= release_at {
                cmds.push(StormCmd::Release { node });
                self.active_storm = None;
                self.next_storm = now + period;
            }
        }
        if self.active_storm.is_none() && now >= self.next_storm {
            let node = NodeId(self.storm_rng.gen_range(0..self.nodes));
            cmds.push(StormCmd::Seize {
                node,
                keep_free: self.cfg.storm_keep_free,
            });
            self.active_storm = Some((now + self.cfg.storm_duration, node));
        }
        cmds
    }

    fn note(&mut self, event: FaultEvent) {
        self.record(event.now, event.kind);
    }

    fn drain_events(&mut self) -> Vec<FaultEvent> {
        core::mem::take(&mut self.events)
    }

    fn stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for sc in FaultScenario::ALL {
            assert_eq!(sc.name().parse::<FaultScenario>().unwrap(), sc);
        }
        let err = "no-such".parse::<FaultScenario>().unwrap_err();
        assert!(err.contains("pressure-storm"), "error lists names: {err}");
    }

    /// Drive two identically-seeded plans through the same call
    /// sequence and require identical decisions, events and stats.
    #[test]
    fn identical_seeds_give_identical_streams() {
        let spec = FaultSpec {
            scenario: FaultScenario::Chaos,
            chaos_seed: 7,
        };
        let mut a = FaultPlan::from_spec(spec, 1234, 8);
        let mut b = FaultPlan::from_spec(spec, 1234, 8);
        for i in 0..2_000u64 {
            let now = Ns(i * 1_000);
            let page = VirtPage(i % 64);
            let node = NodeId((i % 8) as u16);
            assert_eq!(
                a.page_op_fails(now, FaultOp::Migrate, page),
                b.page_op_fails(now, FaultOp::Migrate, page)
            );
            assert_eq!(a.alloc_blocked(now, node), b.alloc_blocked(now, node));
            assert_eq!(a.shootdown_ack_delay(now, 8), b.shootdown_ack_delay(now, 8));
            assert_eq!(a.interrupt_lost(now), b.interrupt_lost(now));
            assert_eq!(a.storm_cmds(now), b.storm_cmds(now));
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.drain_events(), b.drain_events());
        assert!(a.stats().injected_total() > 0, "chaos must actually inject");
    }

    /// Different chaos seeds must give different decision streams.
    #[test]
    fn different_seeds_differ() {
        let mk = |seed| FaultSpec {
            scenario: FaultScenario::CopyFlake,
            chaos_seed: seed,
        };
        let mut a = FaultPlan::from_spec(mk(1), 99, 4);
        let mut b = FaultPlan::from_spec(mk(2), 99, 4);
        let differs = (0..500u64).any(|i| {
            a.page_op_fails(Ns(i), FaultOp::Replicate, VirtPage(i))
                != b.page_op_fails(Ns(i), FaultOp::Replicate, VirtPage(i))
        });
        assert!(differs);
    }

    /// Fault classes draw from independent streams: consuming one
    /// stream never perturbs another.
    #[test]
    fn streams_are_independent() {
        let cfg = FaultConfig {
            copy_abort_p: 0.5,
            intr_loss_p: 0.5,
            ..FaultConfig::default()
        };
        let mut a = FaultPlan::new(cfg, 42, 4);
        let mut b = FaultPlan::new(cfg, 42, 4);
        // Plan `a` consumes 100 extra copy decisions first.
        for i in 0..100u64 {
            a.page_op_fails(Ns(i), FaultOp::Migrate, VirtPage(i));
        }
        for i in 0..200u64 {
            assert_eq!(a.interrupt_lost(Ns(i)), b.interrupt_lost(Ns(i)));
        }
    }

    #[test]
    fn storms_alternate_seize_and_release() {
        let cfg = FaultConfig {
            storm_period: Some(Ns(100)),
            storm_duration: Ns(50),
            storm_keep_free: 2,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(cfg, 5, 4);
        let mut seizes = 0u32;
        let mut releases = 0u32;
        let mut holding: Option<NodeId> = None;
        for t in (0..10_000u64).step_by(10) {
            for cmd in plan.storm_cmds(Ns(t)) {
                match cmd {
                    StormCmd::Seize { node, keep_free } => {
                        assert!(holding.is_none(), "no overlapping storms");
                        assert_eq!(keep_free, 2);
                        assert!(node.0 < 4);
                        holding = Some(node);
                        seizes += 1;
                    }
                    StormCmd::Release { node } => {
                        assert_eq!(holding, Some(node), "release matches seize");
                        holding = None;
                        releases += 1;
                    }
                }
            }
        }
        assert!(seizes >= 10, "expected many storms, got {seizes}");
        assert!(releases == seizes || releases + 1 == seizes);
    }

    #[test]
    fn remap_never_aborts_and_null_config_is_silent() {
        let mut hot = FaultPlan::new(
            FaultConfig {
                copy_abort_p: 1.0,
                ..FaultConfig::default()
            },
            1,
            2,
        );
        assert!(!hot.page_op_fails(Ns(0), FaultOp::Remap, VirtPage(0)));
        assert!(hot.page_op_fails(Ns(0), FaultOp::Migrate, VirtPage(0)));

        let mut off = FaultPlan::new(FaultConfig::default(), 1, 2);
        for i in 0..100u64 {
            assert!(!off.page_op_fails(Ns(i), FaultOp::Migrate, VirtPage(i)));
            assert!(!off.alloc_blocked(Ns(i), NodeId(0)));
            assert!(!off.interrupt_lost(Ns(i)));
            assert_eq!(off.shootdown_ack_delay(Ns(i), 4), Ns::ZERO);
            assert!(off.storm_cmds(Ns(i)).is_empty());
        }
        assert!(off.stats().is_zero());
    }

    #[test]
    fn event_buffer_is_capped_but_stats_stay_exact() {
        let cfg = FaultConfig {
            copy_abort_p: 1.0,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(cfg, 9, 2);
        let n = (EVENT_BUFFER_CAP + 500) as u64;
        for i in 0..n {
            plan.page_op_fails(Ns(i), FaultOp::Migrate, VirtPage(i));
        }
        assert_eq!(plan.stats().copy_aborts, n);
        assert_eq!(plan.drain_events().len(), EVENT_BUFFER_CAP);
    }
}
