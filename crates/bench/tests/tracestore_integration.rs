//! End-to-end guarantees for the capture-once trace store, driven
//! through the `repro` binary:
//!
//! 1. `repro fig6` stdout is byte-identical whether traces come from a
//!    fresh machine run, a cold store (capture on first use), or a warm
//!    store (pure replay) — and the warm run computes zero machine runs.
//! 2. `repro sweep` artifacts (JSON and CSV) are byte-identical across
//!    worker counts.
//! 3. `repro trace verify` exits 0 on an intact store and 1 with a
//!    checksum diagnostic after a single flipped byte.

use std::path::PathBuf;
use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

/// A fresh scratch directory under the OS temp dir, cleaned first so
/// reruns start cold.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccnuma-tracestore-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stdout_of(out: &std::process::Output) -> String {
    assert!(
        out.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

#[test]
fn fig6_stdout_identical_fresh_cold_and_warm_store() {
    let dir = scratch("fig6");
    let dir = dir.to_str().expect("temp path is UTF-8");

    let fresh = repro(&["fig6", "--scale", "quick"]);
    let cold = repro(&["fig6", "--scale", "quick", "--trace-dir", dir]);
    let warm = repro(&["fig6", "--scale", "quick", "--trace-dir", dir]);

    let fresh_out = stdout_of(&fresh);
    assert_eq!(
        fresh_out,
        stdout_of(&cold),
        "capturing through the store must not change the figure"
    );
    assert_eq!(
        fresh_out,
        stdout_of(&warm),
        "replaying stored traces must not change the figure"
    );

    // The warm run never touches the machine simulator: every traced
    // spec is served from the store before the executor plans it.
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_err.contains("0 distinct run(s) computed"),
        "warm run must compute nothing: {warm_err}"
    );
    assert!(
        warm_err.contains("trace-store hit(s)"),
        "warm run must report its store hits: {warm_err}"
    );
}

#[test]
fn sweep_artifacts_identical_across_job_counts() {
    let dir = scratch("sweep");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let store = dir.to_str().expect("temp path is UTF-8");
    let sweep = |jobs: &str, tag: &str| {
        let json = dir.join(format!("sweep-{tag}.json"));
        let csv = dir.join(format!("sweep-{tag}.csv"));
        let out = repro(&[
            "sweep",
            "--workload",
            "Raytrace",
            "--scale",
            "quick",
            "--trace-dir",
            store,
            "--jobs",
            jobs,
            "--out",
            json.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "sweep --jobs {jobs} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            std::fs::read(&json).expect("json artifact"),
            std::fs::read(&csv).expect("csv artifact"),
        )
    };

    let (json1, csv1) = sweep("1", "j1");
    let (json4, csv4) = sweep("4", "j4");
    assert_eq!(json1, json4, "sweep JSON must not depend on job count");
    assert_eq!(csv1, csv4, "sweep CSV must not depend on job count");

    let text = String::from_utf8(json1).expect("JSON is UTF-8");
    assert!(
        text.contains("\"schema\":\"ccnuma-sweep/2\""),
        "artifact must declare its schema: {text}"
    );
}

#[test]
fn trace_verify_detects_a_flipped_byte() {
    let dir = scratch("verify");
    let store = dir.to_str().expect("temp path is UTF-8");

    let cap = repro(&[
        "trace",
        "capture",
        "Raytrace",
        "--scale",
        "quick",
        "--trace-dir",
        store,
    ]);
    assert!(
        cap.status.success(),
        "capture failed: {}",
        String::from_utf8_lossy(&cap.stderr)
    );

    let good = repro(&["trace", "verify", "--trace-dir", store]);
    let good_out = stdout_of(&good);
    assert!(
        good_out.contains("ok "),
        "intact store verifies: {good_out}"
    );

    // Flip one bit in the middle of the only .trace file.
    let trace_file = std::fs::read_dir(&dir)
        .expect("store dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "trace"))
        .expect("captured trace file");
    let mut bytes = std::fs::read(&trace_file).expect("trace bytes");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&trace_file, &bytes).expect("rewrite trace");

    let bad = repro(&["trace", "verify", "--trace-dir", store]);
    assert_eq!(
        bad.status.code(),
        Some(1),
        "corruption must exit 1: {}",
        String::from_utf8_lossy(&bad.stdout)
    );
    let bad_out = String::from_utf8_lossy(&bad.stdout);
    assert!(
        bad_out.contains("FAIL"),
        "corruption must be diagnosed: {bad_out}"
    );
}
