//! Observability artifact guarantees: the audit log reproduces the run's
//! `PolicyStats` exactly, the time series covers the run, and every
//! artifact written under an obs dir is byte-identical however many
//! worker threads the executor used.

use ccnuma_bench::{Executor, RunPlan};
use ccnuma_machine::{PolicyChoice, RunOptions, RunSpec};
use ccnuma_obs::{artifact_slug, RunRecorder};
use ccnuma_workloads::{Scale, WorkloadKind};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn dynamic_spec(kind: WorkloadKind) -> RunSpec {
    // Quick runs are short; lower the trigger so pages heat up and the
    // pager actually migrates/replicates/collapses.
    let params = ccnuma_core::PolicyParams::base().with_trigger(16);
    RunSpec::catalog(
        kind,
        Scale::quick(),
        RunOptions::new(PolicyChoice::base_mig_rep(params)),
    )
}

#[test]
fn audit_totals_equal_policy_stats() {
    for kind in [WorkloadKind::Raytrace, WorkloadKind::Splash] {
        let spec = dynamic_spec(kind);
        let mut rec = RunRecorder::default();
        let report = spec.run_with(&mut rec);
        let stats = report.policy_stats.expect("dynamic run has stats");
        let totals = rec.audit.totals();
        assert_eq!(totals.migrations, stats.migrations, "{kind:?} migrations");
        assert_eq!(
            totals.replications, stats.replications,
            "{kind:?} replications"
        );
        assert_eq!(totals.collapses, stats.collapses, "{kind:?} collapses");
        assert_eq!(totals.remaps, stats.remaps, "{kind:?} remaps");
        assert_eq!(totals.no_page, stats.no_page, "{kind:?} no_page");
        assert!(
            totals.migrations + totals.replications > 0,
            "{kind:?} must exercise the pager for this test to mean anything"
        );
    }
}

#[test]
fn time_series_covers_the_run() {
    let spec = dynamic_spec(WorkloadKind::Raytrace);
    let mut rec = RunRecorder::default();
    let report = spec.run_with(&mut rec);
    assert!(
        rec.series.len() >= 10,
        "quick runs must yield at least 10 epochs, got {}",
        rec.series.len()
    );
    let snaps = rec.series.snapshots();
    assert!(snaps.windows(2).all(|w| w[0].t <= w[1].t), "time-ordered");
    let last = snaps.last().unwrap();
    assert_eq!(last.t, report.sim_time, "series closes at end of run");
    assert_eq!(
        last.view.local_misses + last.view.remote_misses,
        report.breakdown.local_misses() + report.breakdown.remote_misses(),
        "final snapshot matches the report's miss totals"
    );
    let mut csv = Vec::new();
    ccnuma_obs::export::write_timeseries_csv(&mut csv, &rec.series).unwrap();
    let csv = String::from_utf8(csv).unwrap();
    assert!(csv.lines().count() >= 11, "header + >=10 epoch rows");
}

fn read_tree(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path.strip_prefix(root).unwrap().display().to_string();
                out.insert(rel, std::fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccnuma-obs-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn obs_artifacts_are_byte_identical_across_job_counts() {
    let mut plan = RunPlan::new();
    plan.add(dynamic_spec(WorkloadKind::Raytrace));
    plan.add(RunSpec::catalog(
        WorkloadKind::Engineering,
        Scale::quick(),
        RunOptions::new(PolicyChoice::first_touch()),
    ));

    let artifacts_with_jobs = |jobs: usize, tag: &str| {
        let dir = scratch_dir(tag);
        let exec = Executor::new(jobs).with_obs_dir(&dir);
        exec.execute(&plan);
        let mut tree = read_tree(&dir);
        // run-metadata.json carries wall-clock measurements and is
        // explicitly outside the byte-identity guarantee.
        tree.remove("run-metadata.json");
        std::fs::remove_dir_all(&dir).unwrap();
        tree
    };

    let serial = artifacts_with_jobs(1, "serial");
    let parallel = artifacts_with_jobs(4, "parallel");
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>(),
        "same artifact set"
    );
    assert_eq!(serial.len(), 2 * 4, "two runs x four artifacts");
    for (path, bytes) in &serial {
        assert_eq!(
            bytes,
            parallel.get(path).unwrap(),
            "{path} must not depend on --jobs"
        );
    }
}

#[test]
fn executor_writes_parseable_artifacts_and_metadata() {
    let spec = dynamic_spec(WorkloadKind::Raytrace);
    let mut plan = RunPlan::new();
    plan.add(spec.clone());
    let dir = scratch_dir("parse");
    let exec = Executor::new(2).with_obs_dir(&dir);
    let started = std::time::Instant::now();
    exec.execute(&plan);

    let slug = artifact_slug(&spec.describe(), &spec.cache_key());
    let run_dir = dir.join("runs").join(&slug);
    for name in [
        "events.jsonl",
        "timeseries.csv",
        "trace.json",
        "metrics.json",
    ] {
        assert!(run_dir.join(name).is_file(), "missing {name}");
    }
    let trace = std::fs::read_to_string(run_dir.join("trace.json")).unwrap();
    assert!(trace.starts_with('{') && trace.ends_with('}'));
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"cat\":\"sched\""));
    assert!(trace.contains("\"cat\":\"pager\""));

    let wall = started.elapsed();
    let metadata = exec.metadata_json(wall);
    assert!(metadata.contains("\"schema\":\"ccnuma-run-metadata/3\""));
    assert!(metadata.contains("\"resumed_runs\":0"));
    assert!(metadata.contains(&format!("\"slug\":\"{slug}\"")));
    let path = exec.write_run_metadata(&dir, wall).unwrap();
    assert_eq!(std::fs::read_to_string(&path).unwrap(), metadata);
    std::fs::remove_dir_all(&dir).unwrap();
}
