//! Robustness integration tests for the `repro` binary.
//!
//! Two guarantees from the fault-injection work:
//!
//! 1. With fault injection off, the binary's stdout is byte-identical to
//!    the committed golden capture — the injection hooks monomorphize
//!    away and cannot perturb a clean run.
//! 2. With any shipped scenario on, runs complete without panicking or
//!    tripping the kernel invariant checker (a violation would surface
//!    as a `FAILED` line and a non-zero exit), and stdout — reports,
//!    chaos summary and all — is byte-identical whatever `--jobs` is.

use ccnuma_faults::FaultScenario;
use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

#[test]
fn all_quick_stdout_matches_the_committed_golden_file() {
    let out = repro(&["all", "--scale", "quick", "--jobs", "4", "-q"]);
    assert!(
        out.status.success(),
        "repro all failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let golden = include_str!("golden_repro_all_quick.stdout");
    assert_eq!(
        stdout, golden,
        "stdout must stay byte-identical with fault injection off \
         (re-capture the golden file only for intentional output changes)"
    );
}

#[test]
fn every_fault_scenario_completes_deterministically_across_job_counts() {
    for sc in FaultScenario::ALL {
        let run = |jobs: &str| {
            repro(&[
                "table4",
                "--scale",
                "quick",
                "--jobs",
                jobs,
                "--faults",
                sc.name(),
                "-q",
            ])
        };
        let serial = run("1");
        let parallel = run("4");
        assert!(
            serial.status.success() && parallel.status.success(),
            "{} must degrade gracefully, not fail: {}",
            sc.name(),
            String::from_utf8_lossy(&serial.stderr)
        );
        let a = String::from_utf8(serial.stdout).expect("stdout is UTF-8");
        let b = String::from_utf8(parallel.stdout).expect("stdout is UTF-8");
        assert_eq!(a, b, "{} stdout must not depend on --jobs", sc.name());
        assert!(
            a.contains(&format!("== chaos summary: {}#0 ==", sc.name())),
            "{}: missing chaos summary in:\n{a}",
            sc.name()
        );
        assert!(a.contains("faults injected: "), "{}: {a}", sc.name());
        // "failures: none" doubles as the invariant-checker verdict: a
        // violated invariant fails the run and would be listed here.
        assert!(
            a.contains("failures: none"),
            "{}: runs failed under injection:\n{a}",
            sc.name()
        );
    }
}

#[test]
fn pressure_storm_actually_stresses_and_reports_degradation() {
    let out = repro(&[
        "table4",
        "--scale",
        "quick",
        "--faults",
        "pressure-storm",
        "-q",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let injected: u64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("faults injected: "))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .expect("chaos summary carries an injected count");
    assert!(injected > 0, "storms must fire at quick scale:\n{stdout}");
    assert!(
        stdout.contains("degradation: "),
        "summary lists the degradation responses:\n{stdout}"
    );
}
