//! Determinism guarantees the run-plan executor depends on: a run is a
//! pure function of its spec, and rendered experiment output does not
//! depend on the executor's thread count.

use ccnuma_bench::{experiments, Executor, RunPlan};
use ccnuma_machine::{PolicyChoice, RunOptions, RunSpec};
use ccnuma_workloads::{Scale, WorkloadKind};

#[test]
fn same_spec_twice_produces_identical_reports() {
    let spec = RunSpec::catalog(
        WorkloadKind::Raytrace,
        Scale::quick(),
        RunOptions::new(PolicyChoice::base_mig_rep(
            ccnuma_core::PolicyParams::base().with_trigger(16),
        )),
    );
    let a = spec.run();
    let b = spec.run();
    // RunReport carries no Eq impl (floats, trace payloads); the Debug
    // rendering covers every field.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn recorders_never_perturb_the_report() {
    // The simulator is generic over its recorder; with the NullRecorder
    // (what `run()` uses) the hooks compile away, and even a full
    // RunRecorder is a pure side-channel. All three paths must agree to
    // the byte.
    let spec = RunSpec::catalog(
        WorkloadKind::Raytrace,
        Scale::quick(),
        RunOptions::new(PolicyChoice::base_mig_rep(
            ccnuma_core::PolicyParams::base().with_trigger(16),
        )),
    );
    let plain = spec.run();
    let mut null = ccnuma_obs::NullRecorder;
    let with_null = spec.run_with(&mut null);
    let mut rec = ccnuma_obs::RunRecorder::default();
    let with_obs = spec.run_with(&mut rec);
    assert_eq!(format!("{plain:?}"), format!("{with_null:?}"));
    assert_eq!(format!("{plain:?}"), format!("{with_obs:?}"));
    assert!(!rec.series.is_empty(), "instrumented run recorded data");
}

#[test]
fn fig3_quick_output_is_byte_identical_across_job_counts() {
    let scale = Scale::quick();
    let exp = experiments::find("fig3").expect("fig3 registered");

    let render_with_jobs = |jobs: usize| {
        let mut plan = RunPlan::new();
        plan.extend((exp.plan)(scale));
        let exec = Executor::new(jobs);
        exec.execute(&plan);
        (exp.render)(scale, &exec)
    };

    let serial = render_with_jobs(1);
    let parallel = render_with_jobs(8);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "fig3 output must not depend on --jobs");
}

#[test]
fn every_workload_report_is_byte_identical_across_job_counts() {
    // The allocation-free hot path (flat TLB, bitmask coherence
    // directory, flat counter tables, FxHash page tables) must stay a
    // pure function of the spec: full RunReports — not just rendered
    // tables — agree to the byte whether the executor runs serial or
    // with a worker pool.
    let scale = Scale::quick();
    let reports_with_jobs = |jobs: usize| -> Vec<String> {
        let exec = Executor::new(jobs);
        let mut out = Vec::new();
        for kind in WorkloadKind::ALL {
            for spec in [
                ccnuma_bench::ft_spec(kind, scale),
                ccnuma_bench::dynamic_spec(kind, scale),
            ] {
                out.push(format!("{:?}", exec.run(&spec)));
            }
        }
        out
    };

    let serial = reports_with_jobs(1);
    let parallel = reports_with_jobs(4);
    assert_eq!(serial.len(), parallel.len());
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a, b, "report {i} diverged between --jobs 1 and --jobs 4");
    }
}

#[test]
fn topology_runs_are_byte_identical_across_job_counts() {
    // The hop-path latency model adds per-tier accounting to the hot
    // path; it must stay as deterministic as the flat machine. Full
    // RunReports on the hierarchical and CXL presets agree to the byte
    // whether the executor runs serial or with a worker pool.
    use ccnuma_types::TopologyPreset;
    let scale = Scale::quick();
    let specs = || {
        [
            ccnuma_bench::dynamic_spec(WorkloadKind::Raytrace, scale)
                .with_topology(TopologyPreset::FourSocketHierarchical),
            ccnuma_bench::ft_spec(WorkloadKind::Database, scale)
                .with_topology(TopologyPreset::CxlTiered),
        ]
    };
    let reports_with_jobs = |jobs: usize| -> Vec<String> {
        let exec = Executor::new(jobs);
        specs()
            .iter()
            .map(|spec| format!("{:?}", exec.run(spec)))
            .collect()
    };

    let serial = reports_with_jobs(1);
    let parallel = reports_with_jobs(4);
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            a, b,
            "topology report {i} diverged between --jobs 1 and --jobs 4"
        );
    }
    // The presets really did change the machine: a hierarchical run is
    // not the flat run under a different label.
    let flat = format!(
        "{:?}",
        Executor::new(1).run(&ccnuma_bench::dynamic_spec(WorkloadKind::Raytrace, scale))
    );
    assert_ne!(serial[0], flat, "hierarchical preset must differ from flat");
}

#[test]
fn experiment_output_is_byte_identical_across_shard_counts() {
    // The tentpole contract: a shard plan is host-side parallelism
    // only. Rendered experiment output — the same stdout `repro all`
    // prints — must agree to the byte at every shard count. (CI
    // additionally byte-compares the full `repro all --scale quick`
    // stdout at --shards 1/2/8 against the golden file with the
    // release binary.)
    use ccnuma_types::ShardPlan;
    let scale = Scale::quick();
    let names = ["fig3", "table2", "contention"];
    let render_with_shards = |shards: u32| -> String {
        let exec = Executor::new(2).with_shards(ShardPlan::new(shards));
        let mut plan = RunPlan::new();
        for name in names {
            plan.extend((experiments::find(name).expect(name).plan)(scale));
        }
        exec.execute(&plan);
        names
            .iter()
            .map(|name| (experiments::find(name).unwrap().render)(scale, &exec))
            .collect::<Vec<_>>()
            .join("\n")
    };

    let serial = render_with_shards(1);
    for shards in [2, 8] {
        assert_eq!(
            serial,
            render_with_shards(shards),
            "rendered output diverged between --shards 1 and --shards {shards}"
        );
    }
    assert!(!serial.is_empty());
}

#[test]
fn lifted_processor_cap_completes_a_quick_run() {
    // 128 shared-reader nodes means 128 processors — double the old
    // 64-proc bitmask ceiling. The run must validate, complete, and
    // stay deterministic.
    let spec = RunSpec::shared_reader(
        128,
        Scale::quick(),
        RunOptions::new(PolicyChoice::first_touch()),
    );
    let a = spec.run();
    let b = spec.run();
    assert!(a.breakdown.total().0 > 0, "128-proc run retired work");
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn executor_memoizes_across_experiments() {
    // fig3 and table3 both need the engineering FT baseline; the second
    // renderer must reuse the first's run rather than recompute.
    let scale = Scale::quick();
    let mut plan = RunPlan::new();
    for name in ["fig3", "table3"] {
        plan.extend((experiments::find(name).unwrap().plan)(scale));
    }
    // 8 runs for fig3 (4 workloads x FT/MigRep) + 5 FT runs for table3,
    // of which 4 FT runs are shared.
    assert_eq!(
        plan.len(),
        9,
        "union plan must deduplicate shared baselines"
    );

    let exec = Executor::new(4);
    exec.execute(&plan);
    let computed_after_plan = exec.stats().computed;
    let fig3 = (experiments::find("fig3").unwrap().render)(scale, &exec);
    let table3 = (experiments::find("table3").unwrap().render)(scale, &exec);
    assert!(!fig3.is_empty() && !table3.is_empty());
    let stats = exec.stats();
    assert_eq!(
        stats.computed, computed_after_plan,
        "rendering must be pure cache hits after execute()"
    );
    assert!(stats.hits >= 13, "every render fetch is a hit: {stats:?}");
}
