//! End-to-end guarantees for the host-side observability layer, driven
//! through the `repro` binary:
//!
//! 1. `--profile` never changes experiment stdout, and the profile
//!    artifacts' *structure* (phases, strides, entries, spans) is
//!    byte-comparable across `--jobs 1` and `--jobs 4` — only the
//!    host-time duration fields may differ.
//! 2. `repro bench --baseline --check` passes against its own fresh
//!    measurement and fails (exit 1) against an inflated baseline.
//! 3. `repro obs report` aggregates an invocation's artifact tree.
//! 4. `repro sweep --profile` emits a replay-phase profile.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

/// A fresh scratch directory under the OS temp dir, cleaned first so
/// reruns start cold.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccnuma-profobs-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn stdout_of(out: &std::process::Output) -> String {
    assert!(
        out.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

/// The determinism-relevant structure of a `ccnuma-profile/1` document:
/// per phase `(name, stride, entries, spans)`. Duration fields are host
/// measurements and deliberately excluded.
fn profile_structure(path: &Path) -> Vec<(String, u64, u64, u64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let doc = ccnuma_obs::JsonValue::parse(&text).expect("profile parses");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("ccnuma-profile/1")
    );
    doc.get("phases")
        .and_then(|p| p.as_array())
        .expect("phases array")
        .iter()
        .map(|p| {
            let u = |k: &str| p.get(k).and_then(|v| v.as_u64()).expect("u64 field");
            (
                p.get("phase").and_then(|v| v.as_str()).unwrap().to_string(),
                u("stride"),
                u("entries"),
                u("spans"),
            )
        })
        .collect()
}

#[test]
fn profiled_stdout_is_identical_and_structure_survives_jobs() {
    let d1 = scratch("jobs1");
    let d4 = scratch("jobs4");
    let plain = repro(&["table3", "--scale", "quick"]);
    let p1 = repro(&[
        "table3",
        "--scale",
        "quick",
        "--jobs",
        "1",
        "--obs-dir",
        d1.to_str().unwrap(),
        "--profile",
    ]);
    let p4 = repro(&[
        "table3",
        "--scale",
        "quick",
        "--jobs",
        "4",
        "--obs-dir",
        d4.to_str().unwrap(),
        "--profile",
    ]);
    let plain_out = stdout_of(&plain);
    assert_eq!(
        plain_out,
        stdout_of(&p1),
        "profiling must not change stdout"
    );
    assert_eq!(plain_out, stdout_of(&p4));

    // Invocation-level profile: same structure whatever the job count.
    let inv1 = profile_structure(&d1.join("profile.json"));
    let inv4 = profile_structure(&d4.join("profile.json"));
    assert_eq!(
        inv1, inv4,
        "invocation profile structure must not depend on jobs"
    );
    let memory = inv1.iter().find(|(name, ..)| name == "memory").unwrap();
    assert!(memory.2 > 0, "memory phase saw the references");
    assert_eq!(memory.1, 1024, "memory phase is stride-sampled");

    // Per-run artifacts: same slugs, same per-slug structure, and the
    // Chrome trace rides along.
    let slugs = |d: &Path| -> Vec<String> {
        let mut v: Vec<String> = std::fs::read_dir(d.join("runs"))
            .expect("runs dir")
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        v.sort();
        v
    };
    let s1 = slugs(&d1);
    assert_eq!(s1, slugs(&d4));
    assert!(!s1.is_empty());
    for slug in &s1 {
        let a = d1.join("runs").join(slug);
        let b = d4.join("runs").join(slug);
        assert_eq!(
            profile_structure(&a.join("profile.json")),
            profile_structure(&b.join("profile.json")),
            "{slug}"
        );
        assert!(a.join("host-trace.json").is_file(), "{slug}");
    }
    std::fs::remove_dir_all(&d1).ok();
    std::fs::remove_dir_all(&d4).ok();
}

#[test]
fn profile_without_obs_dir_is_refused() {
    let out = repro(&["table1", "--scale", "quick", "--profile"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--profile requires --obs-dir"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bench_check_passes_itself_and_fails_an_inflated_baseline() {
    let dir = scratch("benchcheck");
    let out_json = dir.join("bench.json");
    let history = dir.join("BENCH_history.jsonl");
    // Self-check: the baseline read back is the measurement just
    // written, so nothing can be out of tolerance.
    let ok = repro(&[
        "bench",
        "--scale",
        "quick",
        "--out",
        out_json.to_str().unwrap(),
        "--baseline",
        out_json.to_str().unwrap(),
        "--check",
        "--history",
        history.to_str().unwrap(),
    ]);
    assert!(
        ok.status.success(),
        "self-check must pass: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    assert!(String::from_utf8_lossy(&ok.stderr).contains("bench check"));
    assert!(out_json.is_file());
    assert!(
        !dir.join("bench.json.tmp").exists(),
        "atomic write cleans up"
    );

    // An inflated baseline (absurd throughput) must fail the check.
    let fake = dir.join("fake-baseline.json");
    std::fs::write(
        &fake,
        r#"{"schema":"ccnuma-bench-hotpath/4","scale":"quick","runs":[],
            "totals":{"total_refs":1,"wall_seconds":1.0,"refs_per_sec":1e12}}"#,
    )
    .unwrap();
    let fail = repro(&[
        "bench",
        "--scale",
        "quick",
        "--out",
        out_json.to_str().unwrap(),
        "--baseline",
        fake.to_str().unwrap(),
        "--check",
        "--history",
        history.to_str().unwrap(),
    ]);
    assert_eq!(
        fail.status.code(),
        Some(1),
        "inflated baseline must regress"
    );
    let err = String::from_utf8_lossy(&fail.stderr);
    assert!(err.contains("bench check FAILED"), "{err}");
    assert!(err.contains("FAIL totals refs_per_sec"), "{err}");

    // Both invocations appended to the trajectory.
    let text = std::fs::read_to_string(&history).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    for line in &lines {
        let doc = ccnuma_obs::JsonValue::parse(line).expect("history line parses");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("ccnuma-bench-history/1")
        );
        assert_eq!(doc.get("checked").and_then(|c| c.as_bool()), Some(true));
    }
    let last = ccnuma_obs::JsonValue::parse(lines[1]).unwrap();
    assert!(
        last.get("regressions").and_then(|r| r.as_u64()).unwrap() >= 1,
        "the failed check records its regressions"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn obs_report_rolls_up_a_profiled_invocation() {
    let dir = scratch("obsreport");
    let obs = dir.join("obs");
    let run = repro(&[
        "table3",
        "--scale",
        "quick",
        "--obs-dir",
        obs.to_str().unwrap(),
        "--profile",
    ]);
    assert!(run.status.success());
    let out_json = dir.join("report.json");
    let report = repro(&[
        "obs",
        "report",
        obs.to_str().unwrap(),
        "--out",
        out_json.to_str().unwrap(),
    ]);
    let text = stdout_of(&report);
    assert!(text.contains("== obs report:"), "{text}");
    assert!(text.contains("runs aggregated:"), "{text}");
    assert!(text.contains("host profile (merged"), "{text}");
    assert!(text.contains("memory"), "{text}");
    let doc = ccnuma_obs::JsonValue::parse(&std::fs::read_to_string(&out_json).unwrap()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("ccnuma-obs-report/1")
    );
    assert!(doc.get("profile_runs").and_then(|v| v.as_u64()).unwrap() > 0);
    let phases = doc.get("phases").and_then(|p| p.as_array()).unwrap();
    let memory = phases
        .iter()
        .find(|p| p.get("phase").and_then(|v| v.as_str()) == Some("memory"))
        .expect("memory phase row");
    assert!(memory.get("entries").and_then(|v| v.as_u64()).unwrap() > 0);
    // Reporting over a directory that does not exist fails cleanly.
    let missing = repro(&["obs", "report", dir.join("nope").to_str().unwrap()]);
    assert!(missing.status.success(), "an absent tree is an empty fleet");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_profile_counts_replays() {
    let dir = scratch("sweepprof");
    let traces = dir.join("traces");
    let prof_path = dir.join("sweep-profile.json");
    let out = repro(&[
        "sweep",
        "--workload",
        "Raytrace",
        "--scale",
        "quick",
        "--trace-dir",
        traces.to_str().unwrap(),
        "--out",
        dir.join("sweep.json").to_str().unwrap(),
        "--profile",
        prof_path.to_str().unwrap(),
        "--jobs",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let structure = profile_structure(&prof_path);
    let replay = structure.iter().find(|(n, ..)| n == "replay").unwrap();
    assert!(replay.2 > 0, "replay spans were profiled");
    assert_eq!(
        replay.2, replay.3,
        "replay is a coarse phase: every entry timed"
    );
    std::fs::remove_dir_all(&dir).ok();
}
