//! Crash-tolerance integration tests for the `repro` binary: a SIGKILL
//! mid-plan loses nothing that was journaled, the resumed invocation's
//! stdout is byte-identical to the committed golden capture, and a
//! fully-journaled plan replays with zero recomputation.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccnuma-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Count complete (newline-terminated) journal lines.
fn journaled(ckpt: &Path) -> usize {
    std::fs::read(ckpt.join("journal.jsonl"))
        .map(|b| b.iter().filter(|&&c| c == b'\n').count())
        .unwrap_or(0)
}

fn resumed_count(stderr: &str) -> u64 {
    stderr
        .lines()
        .find_map(|l| {
            let (head, _) = l.split_once(" resumed from checkpoint")?;
            head.rsplit(' ').next()?.parse().ok()
        })
        .unwrap_or(0)
}

fn computed_count(stderr: &str) -> u64 {
    stderr
        .lines()
        .find_map(|l| {
            let (head, _) = l.split_once(" distinct run(s) computed")?;
            head.rsplit(' ').next()?.parse().ok()
        })
        .expect("summary line present")
}

#[test]
fn sigkill_mid_plan_then_resume_is_byte_identical_with_zero_recomputation() {
    let ckpt = scratch("kill");

    // Start the full quick plan against a fresh checkpoint, serial so
    // the journal fills gradually, and SIGKILL it as soon as at least
    // one run record is durable.
    let mut child = repro()
        .args(["all", "--scale", "quick", "--jobs", "1"])
        .arg("--resume")
        .arg(&ckpt)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("repro spawns");
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        if journaled(&ckpt) >= 1 {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            // The machine raced through the whole plan before we saw a
            // record — fine, the resume below still proves the point.
            assert!(status.success(), "un-killed run must succeed");
            break;
        }
        assert!(Instant::now() < deadline, "no journal record within 300s");
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = child.kill();
    let _ = child.wait();
    let survived = journaled(&ckpt);
    assert!(survived >= 1, "at least one record survived the kill");

    // Resume: completes the plan, prints the golden bytes, restores
    // every journaled run instead of recomputing it.
    let out = repro()
        .args(["all", "--scale", "quick", "--jobs", "1"])
        .arg("--resume")
        .arg(&ckpt)
        .output()
        .expect("resume run");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "resume failed: {stderr}");
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    assert_eq!(
        stdout,
        include_str!("golden_repro_all_quick.stdout"),
        "resumed stdout must be byte-identical to the golden capture"
    );
    assert!(
        resumed_count(&stderr) >= survived as u64,
        "every surviving record must be restored, not recomputed: {stderr}"
    );

    // A third invocation finds the plan fully journaled: zero
    // recomputation, same bytes again.
    let out = repro()
        .args(["all", "--scale", "quick", "--jobs", "4"])
        .arg("--resume")
        .arg(&ckpt)
        .output()
        .expect("replay run");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "replay failed: {stderr}");
    assert_eq!(
        computed_count(&stderr),
        0,
        "fully-journaled plan must recompute nothing: {stderr}"
    );
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    assert_eq!(stdout, include_str!("golden_repro_all_quick.stdout"));

    let _ = std::fs::remove_dir_all(&ckpt);
}

#[test]
fn sweep_resume_renders_identical_artifacts_without_replays() {
    let ckpt = scratch("sweep");
    let traces = scratch("sweep-traces");

    let run = || {
        repro()
            .args([
                "sweep",
                "--workload",
                "raytrace",
                "--scale",
                "quick",
                "--jobs",
                "2",
            ])
            .arg("--trace-dir")
            .arg(&traces)
            .arg("--resume")
            .arg(&ckpt)
            .output()
            .expect("repro sweep runs")
    };
    let first = run();
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let second = run();
    assert!(
        second.status.success(),
        "{}",
        String::from_utf8_lossy(&second.stderr)
    );
    assert_eq!(
        first.stdout, second.stdout,
        "resumed sweep JSON must be byte-identical"
    );
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(
        stderr.contains("12 resumed from checkpoint"),
        "all 12 distinct cells must come from the journal: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&ckpt);
    let _ = std::fs::remove_dir_all(&traces);
}
