//! Ablation bench: TLB-flush batching — per-page flushes vs batched
//! multi-page pager interrupts.

use ccnuma_kernel::{PageOp, Pager, PagerConfig};
use ccnuma_types::{MachineConfig, NodeId, Ns, Pid, VirtPage};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("batching");
    for (label, batch) in [("batch1", 1usize), ("batch4", 4), ("batch16", 16)] {
        group.bench_function(label, |b| {
            let mut page = 0u64;
            let mut pager = Pager::new(PagerConfig::for_machine(MachineConfig::cc_numa()));
            b.iter(|| {
                // 16 migrations total, issued in batches of `batch`.
                let pages: Vec<VirtPage> = (0..16).map(|i| VirtPage(page + i)).collect();
                page += 16;
                for p in &pages {
                    pager.first_touch(Pid(1), *p, NodeId(0));
                }
                for chunk in pages.chunks(batch) {
                    let ops: Vec<PageOp> = chunk
                        .iter()
                        .map(|p| PageOp::migrate(*p, NodeId(2)))
                        .collect();
                    black_box(pager.service_batch(Ns(page * 100), &ops));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batching);
criterion_main!(benches);
