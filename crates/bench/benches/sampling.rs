//! Ablation bench: cost of driving the policy at different sampling rates
//! (full cache-miss information vs 1:10 vs 1:100).

use ccnuma_core::{DynamicPolicyKind, MissMetric, PolicyParams};
use ccnuma_polsim::{simulate, PolsimConfig, SimPolicy, TraceFilter};
use ccnuma_trace::{MissRecord, Trace};
use ccnuma_types::{Ns, Pid, ProcId, VirtPage};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn synthetic_trace(n: u64) -> Trace {
    (0..n)
        .map(|i| {
            MissRecord::user_data_read(
                Ns(i * 500),
                ProcId((i % 8) as u16),
                Pid((i % 8) as u32),
                VirtPage(i % 512),
            )
        })
        .collect()
}

fn bench_sampling(c: &mut Criterion) {
    let trace = synthetic_trace(50_000);
    let cfg = PolsimConfig::section8(8);
    let mut group = c.benchmark_group("sampling");
    for (label, rate) in [("full", 1u32), ("one_in_10", 10), ("one_in_100", 100)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let policy = SimPolicy::Dynamic {
                    params: PolicyParams::base(),
                    kind: DynamicPolicyKind::MigRep,
                    metric: if rate == 1 {
                        MissMetric::full_cache()
                    } else {
                        MissMetric::sampled_cache(rate)
                    },
                };
                black_box(simulate(&trace, &cfg, policy, TraceFilter::All))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
