//! Micro-benchmark: the Figure 4 read-chain analysis.

use ccnuma_trace::{read_chains, MissRecord, Trace};
use ccnuma_types::{Ns, Pid, ProcId, VirtPage};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn trace_with_writes(n: u64, write_every: u64) -> Trace {
    (0..n)
        .map(|i| {
            let proc = ProcId((i % 8) as u16);
            let page = VirtPage(i % 256);
            if i % write_every == 0 {
                MissRecord::user_data_write(Ns(i * 100), proc, Pid(0), page)
            } else {
                MissRecord::user_data_read(Ns(i * 100), proc, Pid(0), page)
            }
        })
        .collect()
}

fn bench_readchain(c: &mut Criterion) {
    let mut group = c.benchmark_group("readchain");
    let read_heavy = trace_with_writes(100_000, 10_000);
    let write_heavy = trace_with_writes(100_000, 10);
    group.bench_function("read_heavy_100k", |b| {
        b.iter(|| black_box(read_chains(&read_heavy)))
    });
    group.bench_function("write_heavy_100k", |b| {
        b.iter(|| black_box(read_chains(&write_heavy)))
    });
    group.finish();
}

criterion_group!(benches, bench_readchain);
criterion_main!(benches);
