//! Ablation bench: coarse (memlock) vs fine (page-level) locking for
//! replica-chain manipulation.

use ccnuma_kernel::{LockGranularity, PageOp, Pager, PagerConfig};
use ccnuma_types::{MachineConfig, NodeId, Ns, Pid, VirtPage};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_locking(c: &mut Criterion) {
    let mut group = c.benchmark_group("locking");
    for (label, granularity) in [
        ("coarse_memlock", LockGranularity::Coarse),
        ("fine_page_locks", LockGranularity::Fine),
    ] {
        group.bench_function(label, |b| {
            let cfg =
                PagerConfig::for_machine(MachineConfig::cc_numa()).with_granularity(granularity);
            let mut pager = Pager::new(cfg);
            let mut page = 0u64;
            b.iter(|| {
                let ops: Vec<PageOp> = (0..8)
                    .map(|i| {
                        let p = VirtPage(page + i);
                        pager.first_touch(Pid(1), p, NodeId(0));
                        pager.first_touch(Pid(2), p, NodeId(4));
                        PageOp::replicate(p, NodeId(4))
                    })
                    .collect();
                page += 8;
                black_box(pager.service_batch(Ns(page * 100), &ops))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_locking);
criterion_main!(benches);
