//! Micro-benchmarks for the per-reference hot path, plus one whole-run
//! macro-bench.
//!
//! The micro targets isolate the three structures every reference (or
//! every miss) touches — the flat open-addressed TLB, the ProcSet
//! coherence directory, and the directory-contention model — so a
//! regression in any one of them is visible without re-running the whole
//! suite. The macro target runs Raytrace at quick scale end to end under
//! both policies, the same shape `repro bench` times.

use ccnuma_machine::{CoherenceDir, DirectoryModel, Tlb};
use ccnuma_types::{MachineConfig, NodeId, Ns, ProcId, ProcSet, VirtPage};
use ccnuma_workloads::{Scale, WorkloadKind};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// TLB access over a working set larger than the TLB: a fixed hit/miss
/// mix exercising probe, FIFO eviction, and backward-shift deletion.
fn bench_tlb(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/tlb");
    group.bench_function("access_mixed", |b| {
        let mut tlb = Tlb::new(&MachineConfig::cc_numa());
        let mut p = 0u64;
        b.iter(|| {
            p = p.wrapping_add(1);
            // ~192 distinct pages over a 64-entry TLB: a steady mix of
            // hits (recent pages) and evicting misses.
            black_box(tlb.access(VirtPage(p % 192)))
        });
    });
    group.bench_function("access_hot", |b| {
        let mut tlb = Tlb::new(&MachineConfig::cc_numa());
        for p in 0..64u64 {
            tlb.access(VirtPage(p));
        }
        let mut p = 0u64;
        b.iter(|| {
            p = p.wrapping_add(1);
            black_box(tlb.access(VirtPage(p % 64)))
        });
    });
    group.finish();
}

/// Coherence-directory write: the per-store path that must not allocate.
fn bench_coherence(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/coherence");
    group.bench_function("write_contended", |b| {
        let mut dir = CoherenceDir::new();
        let mut victims = ProcSet::with_capacity_for(64);
        let mut t = 0u64;
        b.iter(|| {
            t = t.wrapping_add(1);
            let proc = ProcId((t % 8) as u16);
            let page = VirtPage(t % 64);
            let line = (t % 4) as u16;
            // Another processor fills first, so the write usually has a
            // victim to invalidate.
            dir.record_fill(ProcId(((t + 1) % 8) as u16), page, line);
            dir.write(proc, page, line, &mut victims);
            black_box(victims.len())
        });
    });
    // The lifted-cap configuration: 128 sharers per line means the
    // victim set spans two 64-bit words, and the write must stay
    // allocation-free exactly like the 8-proc case above.
    group.bench_function("write_128_procs", |b| {
        let mut dir = CoherenceDir::with_procs(128);
        let mut victims = ProcSet::with_capacity_for(128);
        let mut t = 0u64;
        b.iter(|| {
            t = t.wrapping_add(1);
            let proc = ProcId((t % 128) as u16);
            let page = VirtPage(t % 64);
            let line = (t % 4) as u16;
            dir.record_fill(ProcId(((t + 67) % 128) as u16), page, line);
            dir.write(proc, page, line, &mut victims);
            black_box(victims.len())
        });
    });
    group.bench_function("fill_evict", |b| {
        let mut dir = CoherenceDir::new();
        let mut t = 0u64;
        b.iter(|| {
            t = t.wrapping_add(1);
            let proc = ProcId((t % 8) as u16);
            let page = VirtPage(t % 128);
            dir.record_fill(proc, page, 0);
            dir.record_evict(proc, page, 0);
        });
    });
    group.finish();
}

/// Directory-contention model: one request through the busy-until queue.
fn bench_directory(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/directory");
    group.bench_function("request", |b| {
        let mut dir = DirectoryModel::new(&MachineConfig::cc_numa());
        let mut t = 0u64;
        b.iter(|| {
            t = t.wrapping_add(137);
            black_box(dir.request(Ns(t), NodeId((t % 8) as u16), t.is_multiple_of(3)))
        });
    });
    group.finish();
}

/// Whole-run macro-bench: Raytrace at quick scale, the per-reference loop
/// end to end (TLB → L2 → coherence → directory → policy).
fn bench_whole_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/raytrace_quick");
    group.bench_function("first_touch", |b| {
        let spec = ccnuma_bench::ft_spec(WorkloadKind::Raytrace, Scale::quick());
        b.iter(|| black_box(spec.run().breakdown.total()));
    });
    group.bench_function("mig_rep", |b| {
        let spec = ccnuma_bench::dynamic_spec(WorkloadKind::Raytrace, Scale::quick());
        b.iter(|| black_box(spec.run().breakdown.total()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tlb,
    bench_coherence,
    bench_directory,
    bench_whole_run
);
criterion_main!(benches);
