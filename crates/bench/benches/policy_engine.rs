//! Micro-benchmark: the policy engine's per-miss decision cost.

use ccnuma_core::{DynamicPolicyKind, ObservedMiss, PageLocation, PolicyEngine, PolicyParams};
use ccnuma_types::{NodeId, Ns, ProcId, VirtPage};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_engine");
    for (label, kind) in [
        ("mig_rep", DynamicPolicyKind::MigRep),
        ("migration_only", DynamicPolicyKind::MigrationOnly),
        ("replication_only", DynamicPolicyKind::ReplicationOnly),
    ] {
        group.bench_function(label, |b| {
            let mut engine = PolicyEngine::new(PolicyParams::base(), kind);
            let loc = PageLocation::master_only(NodeId(0), NodeId(1));
            let mut t = 0u64;
            b.iter(|| {
                t += 100;
                let miss = ObservedMiss::read(
                    Ns(t),
                    ProcId((t % 8) as u16),
                    NodeId((t % 8) as u16),
                    VirtPage(t % 4096),
                );
                black_box(engine.observe(miss, &loc, false))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_observe);
criterion_main!(benches);
