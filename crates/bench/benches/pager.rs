//! Micro-benchmark: pager operations (migrate/replicate/collapse).

use ccnuma_kernel::{PageOp, Pager, PagerConfig};
use ccnuma_types::{MachineConfig, NodeId, Ns, Pid, VirtPage};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_pager(c: &mut Criterion) {
    let mut group = c.benchmark_group("pager");
    group.bench_function("migrate_batch4", |b| {
        let mut page = 0u64;
        let mut pager = Pager::new(PagerConfig::for_machine(MachineConfig::cc_numa()));
        b.iter(|| {
            let ops: Vec<PageOp> = (0..4)
                .map(|i| {
                    let p = VirtPage(page + i);
                    pager.first_touch(Pid(1), p, NodeId(0));
                    PageOp::migrate(p, NodeId(3))
                })
                .collect();
            page += 4;
            black_box(pager.service_batch(Ns(page * 1000), &ops))
        });
    });
    group.bench_function("replicate_then_collapse", |b| {
        let mut page = 0u64;
        let mut pager = Pager::new(PagerConfig::for_machine(MachineConfig::cc_numa()));
        pager.set_pid_node(Pid(2), NodeId(5));
        b.iter(|| {
            let p = VirtPage(page);
            page += 1;
            pager.first_touch(Pid(1), p, NodeId(0));
            pager.first_touch(Pid(2), p, NodeId(5));
            pager.service_batch(Ns(page * 1000), &[PageOp::replicate(p, NodeId(5))]);
            black_box(pager.service_batch(Ns(page * 1000 + 500), &[PageOp::collapse(p)]))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pager);
criterion_main!(benches);
