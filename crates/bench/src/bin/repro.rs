//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro <experiment>... [--scale quick|standard|full]
//! repro all [--scale ...]
//! repro --list
//! ```

use ccnuma_bench::experiments as exp;
use ccnuma_workloads::Scale;

const EXPERIMENTS: &[&str] = &[
    "table1", "table2", "table3", "table4", "table5", "table6", "fig3", "fig4", "fig5", "fig6",
    "fig7", "fig8", "fig9", "contention", "space", "repspace", "sharing", "shootdown", "hotspot",
    "adaptive", "copyengine", "counters", "scaling", "freeze", "characterize",
];

fn run_one(name: &str, scale: Scale) -> Result<String, String> {
    Ok(match name {
        "table1" | "params" => exp::table1(),
        "table2" | "workloads" => exp::table2(),
        "table3" => exp::table3(scale),
        "table4" => exp::table4(scale),
        "table5" => exp::table5(scale),
        "table6" => exp::table6(scale),
        "fig3" | "figure3" => exp::figure3(scale),
        "fig4" | "figure4" => exp::figure4(scale),
        "fig5" | "figure5" => exp::figure5(scale),
        "fig6" | "figure6" => exp::figure6(scale),
        "fig7" | "figure7" => exp::figure7(scale),
        "fig8" | "figure8" => exp::figure8(scale),
        "fig9" | "figure9" => exp::figure9(scale),
        "contention" => exp::contention(scale),
        "space" => exp::space(),
        "repspace" => exp::repspace(scale),
        "sharing" => exp::sharing(scale),
        "shootdown" => exp::shootdown(scale),
        "hotspot" => exp::hotspot(scale),
        "adaptive" => exp::adaptive(scale),
        "copyengine" => exp::copyengine(scale),
        "counters" => exp::counters(scale),
        "scaling" => exp::scaling(scale),
        "freeze" => exp::freeze(scale),
        "characterize" => exp::characterize(scale),
        other => return Err(format!("unknown experiment '{other}'")),
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::standard();
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{e}");
                }
                return;
            }
            "--scale" => {
                let v = it.next().map(String::as_str);
                scale = match v {
                    Some("quick") => Scale::quick(),
                    Some("standard") => Scale::standard(),
                    Some("full") => Scale::full(),
                    other => {
                        eprintln!("--scale expects quick|standard|full, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "all" => names.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        eprintln!("usage: repro <experiment>... [--scale quick|standard|full]");
        eprintln!("       repro all | repro --list");
        std::process::exit(2);
    }
    for name in names {
        match run_one(&name, scale) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
}
