//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro <experiment>... [--scale quick|standard|full] [--jobs N]
//!                       [--obs-dir DIR] [--faults SCENARIO]
//!                       [--chaos-seed N] [-v|--verbose] [-q|--quiet]
//! repro all [--scale ...] [--jobs N]
//! repro bench [--scale quick|standard|full] [--out FILE]
//! repro --list | repro --list-faults
//! ```
//!
//! The requested experiments' run plans are merged, deduplicated, and
//! executed on `--jobs` worker threads (default: available parallelism)
//! before anything is rendered. Reports print to stdout in the order the
//! experiments were requested — byte-identical for any `--jobs` value.
//!
//! `--faults SCENARIO` stresses every run with a named deterministic
//! fault scenario (see `--list-faults`); `--chaos-seed N` varies the
//! fault stream without changing the workload. A stressed invocation
//! appends a chaos summary (faults injected, degradation responses) to
//! stdout. Runs that fail outright — a typed simulator error or a panic
//! — do not abort the invocation: the remaining runs complete, the
//! experiments depending on a failed run are skipped with a notice, the
//! failures are listed in a summary (and in `run-metadata.json` under an
//! `--obs-dir`), and the exit status is 1.
//!
//! With `--obs-dir DIR`, every computed run additionally writes its
//! observability artifacts (`events.jsonl`, `timeseries.csv`,
//! `trace.json`, `metrics.json`) under `DIR/runs/<slug>/`, and the
//! invocation writes `DIR/run-metadata.json` (jobs, cache hits, per-run
//! wall times). See EXPERIMENTS.md for the artifact schemas.
//!
//! Stderr chatter is gated by one verbosity knob: `-v`/`--verbose` and
//! `-q`/`--quiet` flags first, then the `CCNUMA_LOG` environment
//! variable (`quiet|info|debug`), then the default (a one-line
//! summary). Experiment output on stdout is never gated.

use ccnuma_bench::{experiments, Executor, RunPlan};
use ccnuma_faults::{FaultScenario, FaultSpec, FaultStats};
use ccnuma_obs::Verbosity;
use ccnuma_workloads::{Scale, WorkloadKind};
use std::path::PathBuf;
use std::time::Instant;

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn print_list() {
    for e in experiments::ALL {
        if e.aliases.is_empty() {
            println!("{}", e.name);
        } else {
            println!("{} (aliases: {})", e.name, e.aliases.join(", "));
        }
    }
}

fn print_fault_list() {
    for sc in FaultScenario::ALL {
        println!("{:<15} {}", sc.name(), sc.describe());
    }
}

/// The stdout chaos summary for a stressed invocation: what was
/// injected and how the simulator degraded. Derived purely from
/// sim-time statistics, so it is identical for any `--jobs` value.
fn chaos_summary(faults: FaultSpec, ok: u64, failed: u64, t: &FaultStats) -> String {
    let mut s = String::new();
    s.push_str(&format!("== chaos summary: {faults} ==\n"));
    s.push_str(&format!("runs: {ok} ok, {failed} failed\n"));
    s.push_str(&format!(
        "faults injected: {} (storms {}, copy aborts {}, allocs blocked {}, acks delayed {}, \
         interrupts lost {}, counters capped {})\n",
        t.injected_total(),
        t.storms,
        t.copy_aborts,
        t.allocs_blocked,
        t.acks_delayed,
        t.interrupts_lost,
        t.counters_capped,
    ));
    s.push_str(&format!(
        "frames seized: {}, extra ack delay: {} ns\n",
        t.frames_seized, t.ack_delay_total.0
    ));
    s.push_str(&format!(
        "degradation: retries {} ({} recovered), dropped ops {}, throttled moves {}, \
         remap-only activations {}, reclaimed frames {}\n",
        t.op_retries,
        t.retry_successes,
        t.failed_ops,
        t.throttled_ops,
        t.remap_only_activations,
        t.reclaimed_frames,
    ));
    s
}

/// `repro bench`: time every workload under FT and Mig/Rep and write
/// `BENCH_hotpath.json` (schema `ccnuma-bench-hotpath/1`). Timings go to
/// the file and a summary to stderr; nothing is printed to stdout, so
/// the subcommand composes with scripts the way `--obs-dir` does.
fn run_bench(args: &[String]) -> ! {
    let mut scale = Scale::standard();
    let mut scale_label = "standard".to_string();
    let mut out = PathBuf::from("BENCH_hotpath.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().map(String::as_str);
                (scale, scale_label) = match v {
                    Some("quick") => (Scale::quick(), "quick".into()),
                    Some("standard") => (Scale::standard(), "standard".into()),
                    Some("full") => (Scale::full(), "full".into()),
                    other => {
                        eprintln!("--scale expects quick|standard|full, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                out = match it.next() {
                    Some(p) => PathBuf::from(p),
                    None => {
                        eprintln!("--out expects a file path");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("repro bench: unknown argument {other:?}");
                eprintln!("usage: repro bench [--scale quick|standard|full] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    let start = Instant::now();
    let report = ccnuma_bench::hotpath_bench(scale, &scale_label, &WorkloadKind::ALL);
    let (refs, wall, rate) = report.totals();
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("writing {}: {e}", out.display());
        std::process::exit(1);
    }
    eprintln!(
        "bench: {} run(s), {} refs in {:.2}s ({:.0} refs/s), wall {:.2}s -> {}",
        report.runs.len(),
        refs,
        wall,
        rate,
        start.elapsed().as_secs_f64(),
        out.display()
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench") {
        run_bench(&args[1..]);
    }
    let mut scale = Scale::standard();
    let mut jobs = default_jobs();
    let mut obs_dir: Option<PathBuf> = None;
    let mut verbosity_flag: Option<Verbosity> = None;
    let mut fault_scenario: Option<FaultScenario> = None;
    let mut chaos_seed: u64 = 0;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                print_list();
                return;
            }
            "--list-faults" => {
                print_fault_list();
                return;
            }
            "--faults" => {
                fault_scenario = match it.next().map(|v| v.parse::<FaultScenario>()) {
                    Some(Ok(sc)) => Some(sc),
                    Some(Err(e)) => {
                        eprintln!("--faults: {e}");
                        std::process::exit(2);
                    }
                    None => {
                        eprintln!("--faults expects a scenario name (see repro --list-faults)");
                        std::process::exit(2);
                    }
                };
            }
            "--chaos-seed" => {
                chaos_seed = match it.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--chaos-seed expects an unsigned integer");
                        std::process::exit(2);
                    }
                };
            }
            "--scale" => {
                let v = it.next().map(String::as_str);
                scale = match v {
                    Some("quick") => Scale::quick(),
                    Some("standard") => Scale::standard(),
                    Some("full") => Scale::full(),
                    other => {
                        eprintln!("--scale expects quick|standard|full, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--jobs" => {
                jobs = match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => n,
                    _ => {
                        eprintln!("--jobs expects a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--obs-dir" => {
                obs_dir = match it.next() {
                    Some(dir) => Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--obs-dir expects a directory path");
                        std::process::exit(2);
                    }
                };
            }
            "-v" | "--verbose" => verbosity_flag = Some(Verbosity::Verbose),
            "-q" | "--quiet" => verbosity_flag = Some(Verbosity::Quiet),
            "all" => names.extend(experiments::ALL.iter().map(|e| e.name.to_string())),
            name => names.push(name.to_string()),
        }
    }
    let verbosity = Verbosity::resolve(verbosity_flag, std::env::var("CCNUMA_LOG").ok().as_deref());
    if names.is_empty() {
        eprintln!(
            "usage: repro <experiment>... [--scale quick|standard|full] [--jobs N] \
             [--obs-dir DIR] [--faults SCENARIO] [--chaos-seed N] [-v|-q]"
        );
        eprintln!("       repro all | repro --list | repro --list-faults");
        std::process::exit(2);
    }

    // Resolve names to experiments, deduplicating (aliases and repeats
    // collapse onto the canonical entry, keeping first-request order) and
    // collecting unknown names instead of aborting on the first one.
    let mut selected: Vec<&experiments::Experiment> = Vec::new();
    let mut unknown: Vec<String> = Vec::new();
    for name in &names {
        match experiments::find(name) {
            Some(exp) => {
                if !selected.iter().any(|e| e.name == exp.name) {
                    selected.push(exp);
                }
            }
            None => {
                if !unknown.contains(name) {
                    unknown.push(name.clone());
                }
            }
        }
    }
    for name in &unknown {
        eprintln!("unknown experiment '{name}' (see repro --list); skipping");
    }

    let start = Instant::now();
    let mut plan = RunPlan::new();
    for exp in &selected {
        plan.extend((exp.plan)(scale));
    }
    let fault_spec = fault_scenario.map(|scenario| FaultSpec {
        scenario,
        chaos_seed,
    });
    let mut exec = Executor::new(jobs).with_verbosity(verbosity);
    if let Some(dir) = &obs_dir {
        exec = exec.with_obs_dir(dir.clone());
    }
    if let Some(faults) = fault_spec {
        exec = exec.with_faults(faults);
    }
    exec.execute(&plan);
    for exp in &selected {
        // An experiment whose plan contains a failed run cannot render;
        // skip it with a notice and keep going — the failure itself is
        // reported in the summary below.
        let broken: Vec<_> = (exp.plan)(scale)
            .iter()
            .filter_map(|s| exec.failure_for(s))
            .collect();
        if broken.is_empty() {
            println!("{}", (exp.render)(scale, &exec));
        } else {
            println!(
                "== {} skipped: {} failed run(s) ==\n",
                exp.name,
                broken.len()
            );
        }
    }

    let stats = exec.stats();
    if let Some(faults) = fault_spec {
        print!(
            "{}",
            chaos_summary(faults, stats.computed, stats.failed, &exec.fault_totals())
        );
    }
    let failures = exec.failures();
    if failures.is_empty() {
        if fault_spec.is_some() {
            println!("failures: none");
        }
    } else {
        println!("== failure summary ==");
        for f in &failures {
            println!("FAILED {}: {}", f.label, f.error);
        }
        println!("failures: {}", failures.len());
    }
    let wall = start.elapsed();
    if let Some(dir) = &obs_dir {
        match exec.write_run_metadata(dir, wall) {
            Ok(path) => {
                if verbosity.normal() {
                    eprintln!("obs artifacts in {}", path.parent().unwrap().display());
                }
            }
            Err(e) => {
                eprintln!("writing {}/run-metadata.json: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if verbosity.verbose() {
        eprintln!("-- repro summary --");
        for t in exec.timings() {
            eprintln!("  {:>8.2}s  {}", t.wall.as_secs_f64(), t.label);
        }
    }
    if verbosity.normal() {
        let failed = if stats.failed > 0 {
            format!(", {} FAILED", stats.failed)
        } else {
            String::new()
        };
        eprintln!(
            "{} experiment(s), {} distinct run(s) computed, {} cache hit(s){}, jobs={}, wall {:.2}s",
            selected.len(),
            stats.computed,
            stats.hits,
            failed,
            stats.jobs,
            wall.as_secs_f64()
        );
    }
    if !unknown.is_empty() {
        std::process::exit(2);
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
