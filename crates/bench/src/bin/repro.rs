//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro <experiment>... [--scale quick|standard|full] [--jobs N]
//! repro all [--scale ...] [--jobs N]
//! repro --list
//! ```
//!
//! The requested experiments' run plans are merged, deduplicated, and
//! executed on `--jobs` worker threads (default: available parallelism)
//! before anything is rendered. Reports print to stdout in the order the
//! experiments were requested — byte-identical for any `--jobs` value —
//! and a run/cache/timing summary goes to stderr.

use ccnuma_bench::{experiments, Executor, RunPlan};
use ccnuma_workloads::Scale;
use std::time::Instant;

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn print_list() {
    for e in experiments::ALL {
        if e.aliases.is_empty() {
            println!("{}", e.name);
        } else {
            println!("{} (aliases: {})", e.name, e.aliases.join(", "));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::standard();
    let mut jobs = default_jobs();
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                print_list();
                return;
            }
            "--scale" => {
                let v = it.next().map(String::as_str);
                scale = match v {
                    Some("quick") => Scale::quick(),
                    Some("standard") => Scale::standard(),
                    Some("full") => Scale::full(),
                    other => {
                        eprintln!("--scale expects quick|standard|full, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--jobs" => {
                jobs = match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => n,
                    _ => {
                        eprintln!("--jobs expects a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "all" => names.extend(experiments::ALL.iter().map(|e| e.name.to_string())),
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        eprintln!("usage: repro <experiment>... [--scale quick|standard|full] [--jobs N]");
        eprintln!("       repro all | repro --list");
        std::process::exit(2);
    }

    // Resolve names to experiments, deduplicating (aliases and repeats
    // collapse onto the canonical entry, keeping first-request order) and
    // collecting unknown names instead of aborting on the first one.
    let mut selected: Vec<&experiments::Experiment> = Vec::new();
    let mut unknown: Vec<String> = Vec::new();
    for name in &names {
        match experiments::find(name) {
            Some(exp) => {
                if !selected.iter().any(|e| e.name == exp.name) {
                    selected.push(exp);
                }
            }
            None => {
                if !unknown.contains(name) {
                    unknown.push(name.clone());
                }
            }
        }
    }
    for name in &unknown {
        eprintln!("unknown experiment '{name}' (see repro --list); skipping");
    }

    let start = Instant::now();
    let mut plan = RunPlan::new();
    for exp in &selected {
        plan.extend((exp.plan)(scale));
    }
    let exec = Executor::new(jobs);
    exec.execute(&plan);
    for exp in &selected {
        println!("{}", (exp.render)(scale, &exec));
    }

    let stats = exec.stats();
    let wall = start.elapsed();
    eprintln!("-- repro summary --");
    for t in exec.timings() {
        eprintln!("  {:>8.2}s  {}", t.wall.as_secs_f64(), t.label);
    }
    eprintln!(
        "{} experiment(s), {} distinct run(s) computed, {} cache hit(s), jobs={}, wall {:.2}s",
        selected.len(),
        stats.computed,
        stats.hits,
        stats.jobs,
        wall.as_secs_f64()
    );
    if !unknown.is_empty() {
        std::process::exit(2);
    }
}
