//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro <experiment>... [--scale quick|standard|full] [--jobs N]
//!                       [--topology PRESET] [--window-us N]
//!                       [--obs-dir DIR] [--profile] [--trace-dir DIR]
//!                       [--faults SCENARIO] [--chaos-seed N]
//!                       [--resume DIR] [--soft-deadline SECS]
//!                       [--hard-deadline SECS]
//!                       [-v|--verbose] [-q|--quiet]
//! repro all [--scale ...] [--jobs N] [--resume DIR]
//! repro bench [--scale quick|standard|full] [--window-us N]
//!             [--out FILE] [--baseline FILE] [--check]
//!             [--tolerance PCT] [--history FILE]
//! repro obs report DIR [--out FILE]
//! repro trace <capture|info|verify> [WORKLOAD|SLUG]...
//!             [--scale S] [--trace-dir DIR] [--json]
//! repro trace ls [--json] [--trace-dir DIR]
//! repro trace fsck [--repair] [--trace-dir DIR]
//! repro trace gc --max-bytes N [--trace-dir DIR]
//! repro sweep (--workload NAME | --trace SLUG) [--scale S]
//!             [--trace-dir DIR] [--jobs N] [--window-us N]
//!             [--out FILE] [--csv FILE]
//!             [--profile FILE] [--resume DIR] [--soft-deadline SECS]
//!             [--policies P,..] [--triggers N,..] [--samples N,..]
//!             [--latencies NS,..] [--move-costs US,..]
//!             [--topologies T,..]
//! repro serve [--addr HOST:PORT] [--trace-dir DIR] [--results-dir DIR]
//!             [--workers N] [--queue-depth N] [--prewarm SLUG,..]
//!             [--trace-budget-bytes N] [--max-cells N]
//!             [--max-body-bytes N] [--max-sweeps N] [--window-us N]
//!             [--soft-deadline SECS] [--hard-deadline SECS]
//! repro loadgen --url HOST:PORT [--concurrency N] [--duration SECS]
//!               [--trace NAME] [--out FILE]
//! repro --list | repro --list-faults
//! ```
//!
//! `--topology PRESET` reruns every experiment on a named machine
//! topology (`flat`, `two-socket`, `four-socket-hierarchical`,
//! `cxl-tiered`). `flat` is the paper's machine and the default; its
//! stdout is the byte-identical golden. Non-flat presets carry their own
//! hop-path latencies, so the simulated machine — and every table — is
//! expected to differ.
//!
//! `--window-us N` overrides the simulator's 100 µs scheduling window.
//! Unlike `--shards` it is part of the simulated machine — a different
//! window perturbs scheduling decisions and therefore the tables — but
//! like `--shards` it stays out of the run-cache key, so cached results
//! are only reused within one invocation's window setting.
//!
//! `repro serve` runs the sweep-as-a-service daemon: stored traces stay
//! resident in memory, one `POST /v1/eval` replays one sweep cell, and
//! every finished cell is journaled in a content-addressed on-disk
//! result cache so repeated queries — including across daemon restarts
//! — are answered byte-identically without touching the simulator.
//! `repro loadgen` is the matching load generator; see README.md
//! ("Sweep service") for the endpoints and EXPERIMENTS.md for the
//! `ccnuma-serve-result/1` and `ccnuma-loadgen/1` schemas.
//!
//! The requested experiments' run plans are merged, deduplicated, and
//! executed on `--jobs` worker threads (default: available parallelism)
//! before anything is rendered. Reports print to stdout in the order the
//! experiments were requested — byte-identical for any `--jobs` value.
//!
//! `--faults SCENARIO` stresses every run with a named deterministic
//! fault scenario (see `--list-faults`); `--chaos-seed N` varies the
//! fault stream without changing the workload. A stressed invocation
//! appends a chaos summary (faults injected, degradation responses) to
//! stdout. Runs that fail outright — a typed simulator error or a panic
//! — do not abort the invocation: the remaining runs complete, the
//! experiments depending on a failed run are skipped with a notice, the
//! failures are listed in a summary (and in `run-metadata.json` under an
//! `--obs-dir`), and the exit status is 1.
//!
//! With `--obs-dir DIR`, every computed run additionally writes its
//! observability artifacts (`events.jsonl`, `timeseries.csv`,
//! `trace.json`, `metrics.json`) under `DIR/runs/<slug>/`, and the
//! invocation writes `DIR/run-metadata.json` (jobs, cache hits, per-run
//! wall times). See EXPERIMENTS.md for the artifact schemas.
//!
//! With `--profile` (requires `--obs-dir`), every computed run is
//! additionally timed by the host-side span profiler: each run's
//! directory gains a `profile.json` (`ccnuma-profile/1` phase summary)
//! and a `host-trace.json` (host-time Chrome trace), and the invocation
//! writes a merged `DIR/profile.json`. The profiler watches only the
//! host's wall clock, so profiled stdout stays byte-identical to an
//! unprofiled invocation; the artifact's *structure* (phases, entries,
//! spans) is deterministic while its durations are host measurements.
//! `repro obs report DIR` reads a whole artifact tree back and prints
//! the fleet rollup (summed counters, merged histograms with
//! p50/p90/p99, merged host profile); `--out FILE` adds a
//! `ccnuma-obs-report/1` JSON document.
//!
//! `repro bench` gains regression tracking: `--baseline FILE` compares
//! the fresh measurements against a committed `BENCH_hotpath.json`,
//! `--check` makes any figure falling more than `--tolerance PCT`
//! (default 20) below baseline exit 1, and every invocation appends one
//! `ccnuma-bench-history/1` line to `--history FILE` (default
//! `BENCH_history.jsonl`). All bench artifacts are written atomically
//! (temp file + rename), so a concurrent reader never sees a torn file.
//!
//! With `--trace-dir DIR`, captured miss traces are stored under `DIR`
//! in the chunked v2 format and served from there on later invocations
//! — the Section 8 experiments (fig4/6/7/8/9, sharing, counters,
//! characterize) then render without re-running the machine simulator.
//! The `trace` subcommand manages the store directly (`capture` fills
//! it, `info` lists it, `verify` re-decodes every chunk against its
//! checksum), and `sweep` replays a policy-parameter grid over a stored
//! trace, writing a `ccnuma-sweep/2` JSON (and optionally CSV)
//! artifact. Both default to the `artifacts/traces` store directory.
//! `trace fsck` verifies every store entry (exit 1 on damage); with
//! `--repair` it salvages what the format's truncation-salvage path can
//! recover and quarantines the rest under `quarantine/`. `trace gc
//! --max-bytes N` evicts least-recently-used entries until the store
//! fits the byte budget (loads freshen an entry's LRU stamp).
//!
//! With `--resume DIR`, the invocation journals every completed run (or
//! sweep cell) to a `ccnuma-checkpoint/1` directory and restores
//! journaled results instead of recomputing them, so a killed
//! invocation rerun with the same `--resume DIR` completes only the
//! missing work while printing byte-identical stdout. `--soft-deadline
//! SECS` warns on stderr when a run overruns; `--hard-deadline SECS`
//! converts an overrunning run into a failure (never journaled, plan
//! continues).
//!
//! Stderr chatter is gated by one verbosity knob: `-v`/`--verbose` and
//! `-q`/`--quiet` flags first, then the `CCNUMA_LOG` environment
//! variable (`quiet|info|debug`), then the default (a one-line
//! summary). Experiment output on stdout is never gated.

use ccnuma_bench::{experiments, traced_ft_spec, Executor, RunPlan};
use ccnuma_faults::{FaultScenario, FaultSpec, FaultStats};
use ccnuma_obs::checkpoint::CheckpointJournal;
use ccnuma_obs::Verbosity;
use ccnuma_serve::{LoadgenOptions, ServeConfig};
use ccnuma_tracestore::{
    fsck, gc, run_sweep, run_sweep_profiled, run_sweep_resumable, ChunkIndex, ResultCache,
    StoreListing, SweepPolicy, SweepSpec, TraceStore,
};
use ccnuma_types::{ShardPlan, TopologyPreset};
use ccnuma_workloads::{Scale, WorkloadKind};
use std::fs::File;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Default store directory for the `trace` and `sweep` subcommands.
const DEFAULT_TRACE_DIR: &str = "artifacts/traces";

fn parse_scale(v: Option<&str>) -> Scale {
    match v {
        Some("quick") => Scale::quick(),
        Some("standard") => Scale::standard(),
        Some("full") => Scale::full(),
        other => {
            eprintln!("--scale expects quick|standard|full, got {other:?}");
            std::process::exit(2);
        }
    }
}

fn parse_workload(name: &str) -> Option<WorkloadKind> {
    WorkloadKind::ALL
        .into_iter()
        .find(|k| k.to_string().eq_ignore_ascii_case(name))
}

fn parse_topology(flag: &str, label: &str) -> TopologyPreset {
    TopologyPreset::parse(label).unwrap_or_else(|| {
        let known: Vec<&str> = TopologyPreset::ALL.into_iter().map(|p| p.label()).collect();
        eprintln!(
            "{flag}: unknown topology {label:?} (want one of {})",
            known.join(", ")
        );
        std::process::exit(2);
    })
}

/// Parses a `--shards N` value: a positive shard count. Shards are
/// host-side parallelism only — stdout and reports are byte-identical
/// at every count.
fn parse_shards(flag: &str, it: &mut std::slice::Iter<'_, String>) -> ShardPlan {
    match it.next().and_then(|v| v.parse::<u32>().ok()) {
        Some(n) if n > 0 => ShardPlan::new(n),
        _ => {
            eprintln!("{flag} expects a positive shard count");
            std::process::exit(2);
        }
    }
}

/// Parses a `--window-us N` value: a positive scheduling-window length
/// in microseconds. Unlike `--shards`, the window is part of the
/// simulated machine — changing it perturbs scheduling decisions and
/// therefore the tables (the default 100 matches the paper).
fn parse_window(flag: &str, it: &mut std::slice::Iter<'_, String>) -> u64 {
    match it.next().and_then(|v| v.parse::<u64>().ok()) {
        Some(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} expects a positive microsecond count");
            std::process::exit(2);
        }
    }
}

/// Pulls a flag's string value or exits with a usage error.
fn next_str<'a>(flag: &str, it: &mut std::slice::Iter<'a, String>) -> &'a str {
    it.next().map(String::as_str).unwrap_or_else(|| {
        eprintln!("{flag} expects a value");
        std::process::exit(2);
    })
}

fn open_store(dir: &PathBuf) -> TraceStore {
    match TraceStore::new(dir) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("opening trace store {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn print_list() {
    for e in experiments::ALL {
        if e.aliases.is_empty() {
            println!("{}", e.name);
        } else {
            println!("{} (aliases: {})", e.name, e.aliases.join(", "));
        }
    }
}

fn print_fault_list() {
    for sc in FaultScenario::ALL {
        println!("{:<15} {}", sc.name(), sc.describe());
    }
}

/// The stdout chaos summary for a stressed invocation: what was
/// injected and how the simulator degraded. Derived purely from
/// sim-time statistics, so it is identical for any `--jobs` value.
fn chaos_summary(faults: FaultSpec, ok: u64, failed: u64, t: &FaultStats) -> String {
    let mut s = String::new();
    s.push_str(&format!("== chaos summary: {faults} ==\n"));
    s.push_str(&format!("runs: {ok} ok, {failed} failed\n"));
    s.push_str(&format!(
        "faults injected: {} (storms {}, copy aborts {}, allocs blocked {}, acks delayed {}, \
         interrupts lost {}, counters capped {})\n",
        t.injected_total(),
        t.storms,
        t.copy_aborts,
        t.allocs_blocked,
        t.acks_delayed,
        t.interrupts_lost,
        t.counters_capped,
    ));
    s.push_str(&format!(
        "frames seized: {}, extra ack delay: {} ns\n",
        t.frames_seized, t.ack_delay_total.0
    ));
    s.push_str(&format!(
        "degradation: retries {} ({} recovered), dropped ops {}, throttled moves {}, \
         remap-only activations {}, reclaimed frames {}\n",
        t.op_retries,
        t.retry_successes,
        t.failed_ops,
        t.throttled_ops,
        t.remap_only_activations,
        t.reclaimed_frames,
    ));
    s
}

/// `repro bench`: time every workload under FT and Mig/Rep and write
/// `BENCH_hotpath.json` (schema `ccnuma-bench-hotpath/3`). Timings go to
/// the file and a summary to stderr; nothing is printed to stdout, so
/// the subcommand composes with scripts the way `--obs-dir` does. With
/// `--baseline FILE` the fresh figures are diffed against a committed
/// baseline (on stderr), `--check` turns any out-of-tolerance figure
/// into exit 1, and one `ccnuma-bench-history/1` line is appended to
/// the `--history` trajectory either way. File writes are atomic.
fn run_bench(args: &[String]) -> ! {
    let usage = "usage: repro bench [--scale quick|standard|full] [--shards N] [--window-us N] \
                 [--out FILE] [--baseline FILE] [--check] [--tolerance PCT] [--history FILE]";
    let mut scale = Scale::standard();
    let mut scale_label = "standard".to_string();
    let mut shards = ShardPlan::serial();
    let mut window_us: Option<u64> = None;
    let mut out = PathBuf::from("BENCH_hotpath.json");
    let mut baseline: Option<PathBuf> = None;
    let mut check = false;
    let mut tolerance = ccnuma_bench::DEFAULT_TOLERANCE_PCT;
    let mut history = PathBuf::from("BENCH_history.jsonl");
    let mut it = args.iter();
    fn path_value(flag: &str, it: &mut std::slice::Iter<'_, String>) -> PathBuf {
        it.next().map(PathBuf::from).unwrap_or_else(|| {
            eprintln!("{flag} expects a file path");
            std::process::exit(2);
        })
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().map(String::as_str);
                (scale, scale_label) = match v {
                    Some("quick") => (Scale::quick(), "quick".into()),
                    Some("standard") => (Scale::standard(), "standard".into()),
                    Some("full") => (Scale::full(), "full".into()),
                    other => {
                        eprintln!("--scale expects quick|standard|full, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--shards" => shards = parse_shards("--shards", &mut it),
            "--window-us" => window_us = Some(parse_window("--window-us", &mut it)),
            "--out" => out = path_value("--out", &mut it),
            "--baseline" => baseline = Some(path_value("--baseline", &mut it)),
            "--check" => check = true,
            "--tolerance" => {
                tolerance = match it.next().and_then(|v| v.parse::<f64>().ok()) {
                    Some(t) if t >= 0.0 => t,
                    _ => {
                        eprintln!("--tolerance expects a non-negative percentage");
                        std::process::exit(2);
                    }
                };
            }
            "--history" => history = path_value("--history", &mut it),
            other => {
                eprintln!("repro bench: unknown argument {other:?}");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }
    if check && baseline.is_none() {
        eprintln!("repro bench: --check requires --baseline FILE\n{usage}");
        std::process::exit(2);
    }
    let start = Instant::now();
    let report =
        ccnuma_bench::hotpath_bench(scale, &scale_label, &WorkloadKind::ALL, shards, window_us);
    let (refs, wall, rate) = report.totals();
    if let Err(e) = ccnuma_bench::atomic_write(&out, report.to_json().as_bytes()) {
        eprintln!("writing {}: {e}", out.display());
        std::process::exit(1);
    }
    let outcome = baseline.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("reading baseline {}: {e}", path.display());
            std::process::exit(1);
        });
        let result = ccnuma_bench::check_against_baseline(&report, &text, tolerance)
            .unwrap_or_else(|e| {
                eprintln!("bench check against {}: {e}", path.display());
                std::process::exit(1);
            });
        eprint!("{}", result.render());
        result
    });
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let line = ccnuma_bench::history_line(&report, outcome.as_ref(), unix_time);
    if let Err(e) = ccnuma_bench::append_history(&history, &line) {
        eprintln!("appending {}: {e}", history.display());
        std::process::exit(1);
    }
    eprintln!(
        "bench: {} run(s), {} refs in {:.2}s ({:.0} refs/s), wall {:.2}s -> {} (history {})",
        report.runs.len(),
        refs,
        wall,
        rate,
        start.elapsed().as_secs_f64(),
        out.display(),
        history.display()
    );
    let regressed = check && outcome.as_ref().is_some_and(|c| !c.ok());
    if regressed {
        eprintln!(
            "bench check FAILED: {} regression(s) beyond {tolerance:.1}%",
            outcome
                .as_ref()
                .map_or(0, ccnuma_bench::BenchCheck::regressions)
        );
    }
    std::process::exit(i32::from(regressed));
}

/// `repro obs report DIR [--out FILE]`: aggregate one invocation's
/// artifact tree into a fleet summary (stdout) and optionally the
/// `ccnuma-obs-report/1` JSON document.
fn run_obs_cmd(args: &[String]) -> ! {
    let usage = "usage: repro obs report DIR [--out FILE]";
    if args.first().map(String::as_str) != Some("report") {
        eprintln!("{usage}");
        std::process::exit(2);
    }
    let mut dir: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out = match it.next() {
                    Some(p) => Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--out expects a file path");
                        std::process::exit(2);
                    }
                };
            }
            flag if flag.starts_with('-') => {
                eprintln!("repro obs: unknown argument {flag:?}\n{usage}");
                std::process::exit(2);
            }
            path if dir.is_none() => dir = Some(PathBuf::from(path)),
            extra => {
                eprintln!("repro obs: unexpected argument {extra:?}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let report = ccnuma_bench::build_report(&dir).unwrap_or_else(|e| {
        eprintln!("obs report over {}: {e}", dir.display());
        std::process::exit(1);
    });
    print!("{}", report.render(&dir));
    if let Some(path) = &out {
        if let Err(e) = ccnuma_bench::atomic_write(path, report.to_json().as_bytes()) {
            eprintln!("writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("obs report artifact -> {}", path.display());
    }
    std::process::exit(0);
}

/// `repro trace capture|info|verify`: manage the on-disk trace store.
fn run_trace_cmd(args: &[String]) -> ! {
    let usage = "usage: repro trace <capture|info|verify> [WORKLOAD|SLUG]... \
                 [--scale quick|standard|full] [--trace-dir DIR] [--json]\n\
                 \u{20}      repro trace ls [--json] [--trace-dir DIR]\n\
                 \u{20}      repro trace fsck [--repair] [--trace-dir DIR]\n\
                 \u{20}      repro trace gc --max-bytes N [--trace-dir DIR]";
    let Some(action) = args.first().map(String::as_str) else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let mut scale = Scale::standard();
    let mut dir = PathBuf::from(DEFAULT_TRACE_DIR);
    let mut repair = false;
    let mut json = false;
    let mut max_bytes: Option<u64> = None;
    let mut names: Vec<String> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = parse_scale(it.next().map(String::as_str)),
            "--json" => json = true,
            "--trace-dir" => match it.next() {
                Some(d) => dir = PathBuf::from(d),
                None => {
                    eprintln!("--trace-dir expects a directory path");
                    std::process::exit(2);
                }
            },
            "--repair" => repair = true,
            "--max-bytes" => {
                max_bytes = match it.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(n) => Some(n),
                    None => {
                        eprintln!("--max-bytes expects an unsigned byte count");
                        std::process::exit(2);
                    }
                };
            }
            flag if flag.starts_with('-') => {
                eprintln!("repro trace: unknown argument {flag:?}\n{usage}");
                std::process::exit(2);
            }
            name => names.push(name.to_string()),
        }
    }
    if json && !matches!(action, "ls" | "info") {
        eprintln!("repro trace: --json applies to ls and info only\n{usage}");
        std::process::exit(2);
    }
    let store = open_store(&dir);
    match action {
        "ls" => {
            if !names.is_empty() {
                eprintln!("repro trace ls takes no positional arguments\n{usage}");
                std::process::exit(2);
            }
            let listing = StoreListing::scan(&store).unwrap_or_else(|e| {
                eprintln!("listing {}: {e}", store.dir().display());
                std::process::exit(1);
            });
            if json {
                print!("{}", listing.to_json());
            } else {
                for e in &listing.entries {
                    println!(
                        "{}: label=\"{}\" records={} nodes={} chunks={} bytes={} mtime={}",
                        e.slug, e.label, e.records, e.nodes, e.chunks, e.bytes, e.mtime_unix
                    );
                }
                println!(
                    "total: {} entr{}, {} bytes, {} records",
                    listing.entries.len(),
                    if listing.entries.len() == 1 {
                        "y"
                    } else {
                        "ies"
                    },
                    listing.total_bytes,
                    listing.total_records
                );
            }
            std::process::exit(0);
        }
        "capture" => {
            let kinds: Vec<WorkloadKind> = if names.is_empty() {
                WorkloadKind::ALL.to_vec()
            } else {
                names
                    .iter()
                    .map(|n| {
                        parse_workload(n).unwrap_or_else(|| {
                            eprintln!("unknown workload '{n}' (want one of Engineering, Raytrace, Splash, Database, Pmake)");
                            std::process::exit(2);
                        })
                    })
                    .collect()
            };
            let exec = Executor::serial().with_trace_store(store.clone());
            for kind in kinds {
                let spec = traced_ft_spec(kind, scale);
                let slug = exec.trace_slug(&spec);
                let tr = exec.traced(&spec);
                let bytes = std::fs::metadata(store.trace_path(&slug))
                    .map(|m| m.len())
                    .unwrap_or(0);
                println!(
                    "{} {slug}: {} records, {} bytes, nodes={}",
                    if tr.from_store() {
                        "stored  "
                    } else {
                        "captured"
                    },
                    tr.trace().len(),
                    bytes,
                    tr.nodes()
                );
            }
            let stats = exec.stats();
            eprintln!(
                "trace capture: {} machine run(s), {} store hit(s) -> {}",
                stats.computed,
                stats.store_hits,
                store.dir().display()
            );
            std::process::exit(0);
        }
        "info" | "verify" => {
            let slugs = if names.is_empty() {
                store.list().unwrap_or_else(|e| {
                    eprintln!("listing {}: {e}", store.dir().display());
                    std::process::exit(1);
                })
            } else {
                names
            };
            if slugs.is_empty() {
                eprintln!("trace store {} is empty", store.dir().display());
            }
            // `info --json` goes through the shared listing scan, so its
            // entries are the same bytes `trace ls --json` and the serve
            // daemon's `GET /v1/traces` would report.
            let listing = if json {
                Some(StoreListing::scan(&store).unwrap_or_else(|e| {
                    eprintln!("listing {}: {e}", store.dir().display());
                    std::process::exit(1);
                }))
            } else {
                None
            };
            let mut failed = false;
            for slug in &slugs {
                let outcome = match &listing {
                    Some(l) => match l.entries.iter().find(|e| &e.slug == slug) {
                        Some(e) => {
                            print!("{}", e.to_json());
                            Ok(())
                        }
                        None => store
                            .meta(slug)
                            .and(Err(ccnuma_tracestore::StoreError::Corrupt {
                                chunk: usize::MAX,
                                what: "entry unreadable (see trace fsck)",
                            })),
                    },
                    None if action == "info" => trace_info(&store, slug),
                    None => trace_verify(&store, slug),
                };
                if let Err(e) = outcome {
                    println!("FAIL {slug}: {e}");
                    failed = true;
                }
            }
            std::process::exit(i32::from(failed));
        }
        "fsck" => {
            let report = fsck(&store, repair).unwrap_or_else(|e| {
                eprintln!("fsck over {}: {e}", store.dir().display());
                std::process::exit(1);
            });
            print!("{}", report.render());
            // Dry runs signal damage through the exit status; a repair
            // run that contained everything it found exits clean.
            let dirty = report.damaged().count() > 0 || !report.orphans.is_empty();
            std::process::exit(i32::from(dirty && !repair));
        }
        "gc" => {
            let Some(budget) = max_bytes else {
                eprintln!("repro trace gc requires --max-bytes N\n{usage}");
                std::process::exit(2);
            };
            let report = gc(&store, budget).unwrap_or_else(|e| {
                eprintln!("gc over {}: {e}", store.dir().display());
                std::process::exit(1);
            });
            print!("{}", report.render());
            std::process::exit(0);
        }
        other => {
            eprintln!("repro trace: unknown action {other:?}\n{usage}");
            std::process::exit(2);
        }
    }
}

/// One `trace info` line: sidecar fields plus the chunk index.
fn trace_info(store: &TraceStore, slug: &str) -> Result<(), ccnuma_tracestore::StoreError> {
    let meta = store.meta(slug)?;
    let path = store.trace_path(slug);
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let index = ChunkIndex::read_from(&mut File::open(&path)?)?;
    println!(
        "{slug}: label=\"{}\" records={} nodes={} other_time_ns={} chunks={} bytes={}",
        meta.label,
        meta.records,
        meta.nodes,
        meta.other_time_ns,
        index.chunks.len(),
        bytes
    );
    Ok(())
}

/// One `trace verify` line: full strict decode of every chunk, with the
/// record count cross-checked against the sidecar and the footer.
fn trace_verify(store: &TraceStore, slug: &str) -> Result<(), ccnuma_tracestore::StoreError> {
    let (reader, meta) = store.open(slug)?;
    let mut records = 0u64;
    for rec in reader {
        rec?;
        records += 1;
    }
    if records != meta.records {
        return Err(ccnuma_tracestore::StoreError::Corrupt {
            chunk: usize::MAX,
            what: "record count disagrees with sidecar",
        });
    }
    println!("ok {slug}: {records} records");
    Ok(())
}

/// `repro sweep`: replay a policy-parameter grid over a stored trace.
fn run_sweep_cmd(args: &[String]) -> ! {
    let usage = "usage: repro sweep (--workload NAME | --trace SLUG) \
                 [--scale quick|standard|full] [--trace-dir DIR] [--jobs N] \
                 [--shards N] [--window-us N] [--out FILE] [--csv FILE] \
                 [--profile FILE] [--resume DIR] [--soft-deadline SECS] \
                 [--policies P,..] [--triggers N,..] [--samples N,..] \
                 [--latencies NS,..] [--move-costs US,..] [--topologies T,..]";
    let mut scale = Scale::standard();
    let mut dir = PathBuf::from(DEFAULT_TRACE_DIR);
    let mut jobs = default_jobs();
    let mut shards = ShardPlan::serial();
    let mut window_us: Option<u64> = None;
    let mut workload: Option<WorkloadKind> = None;
    let mut trace_slug: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut csv: Option<PathBuf> = None;
    let mut profile_out: Option<PathBuf> = None;
    let mut resume: Option<PathBuf> = None;
    let mut soft_deadline: Option<Duration> = None;
    let mut spec = SweepSpec::default_grid();
    fn next_value<'a>(flag: &str, it: &mut std::slice::Iter<'a, String>) -> &'a str {
        it.next().map(String::as_str).unwrap_or_else(|| {
            eprintln!("{flag} expects a value");
            std::process::exit(2);
        })
    }
    fn num_list<T: std::str::FromStr>(flag: &str, raw: &str) -> Vec<T> {
        raw.split(',')
            .map(|x| {
                x.trim().parse().unwrap_or_else(|_| {
                    eprintln!("{flag}: bad element {x:?} in {raw:?}");
                    std::process::exit(2);
                })
            })
            .collect()
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = parse_scale(it.next().map(String::as_str)),
            "--trace-dir" => dir = PathBuf::from(next_value("--trace-dir", &mut it)),
            "--jobs" => {
                jobs = match next_value("--jobs", &mut it).parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("--jobs expects a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--shards" => shards = parse_shards("--shards", &mut it),
            "--window-us" => window_us = Some(parse_window("--window-us", &mut it)),
            "--workload" => {
                let name = next_value("--workload", &mut it);
                workload = Some(parse_workload(name).unwrap_or_else(|| {
                    eprintln!("unknown workload '{name}'");
                    std::process::exit(2);
                }));
            }
            "--trace" => trace_slug = Some(next_value("--trace", &mut it).to_string()),
            "--out" => out = Some(PathBuf::from(next_value("--out", &mut it))),
            "--csv" => csv = Some(PathBuf::from(next_value("--csv", &mut it))),
            "--profile" => profile_out = Some(PathBuf::from(next_value("--profile", &mut it))),
            "--resume" => resume = Some(PathBuf::from(next_value("--resume", &mut it))),
            "--soft-deadline" => {
                soft_deadline = Some(parse_deadline(
                    "--soft-deadline",
                    next_value("--soft-deadline", &mut it),
                ));
            }
            "--policies" => {
                spec.policies = next_value("--policies", &mut it)
                    .split(',')
                    .map(|p| {
                        SweepPolicy::parse(p.trim()).unwrap_or_else(|| {
                            eprintln!("--policies: unknown policy {p:?} (want RR, FT, PF, Migr, Repl, Mig/Rep)");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--triggers" => {
                spec.triggers = num_list("--triggers", next_value("--triggers", &mut it))
            }
            "--samples" => {
                spec.sample_rates = num_list("--samples", next_value("--samples", &mut it));
            }
            "--latencies" => {
                spec.remote_latencies_ns =
                    num_list("--latencies", next_value("--latencies", &mut it));
            }
            "--move-costs" => {
                spec.move_costs_us = num_list("--move-costs", next_value("--move-costs", &mut it));
            }
            "--topologies" => {
                spec.topologies = next_value("--topologies", &mut it)
                    .split(',')
                    .map(|t| parse_topology("--topologies", t.trim()))
                    .collect();
            }
            other => {
                eprintln!("repro sweep: unknown argument {other:?}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if spec.is_empty() {
        eprintln!("repro sweep: the grid is empty (an axis has no values)");
        std::process::exit(2);
    }
    let store = open_store(&dir);
    let (slug, label, nodes, other_time) = match (trace_slug, workload) {
        (Some(slug), None) => {
            let meta = store.meta(&slug).unwrap_or_else(|e| {
                eprintln!("reading stored trace {slug}: {e}");
                std::process::exit(1);
            });
            (
                slug,
                meta.label,
                meta.nodes,
                ccnuma_types::Ns(meta.other_time_ns),
            )
        }
        (None, Some(kind)) => {
            // Capture-once: the machine runs only if the store does not
            // already hold this workload's trace. The capture (the only
            // machine run a sweep makes) can shard; the swept replays
            // are host-threaded via --jobs.
            let exec = Executor::serial()
                .with_shards(shards)
                .with_window_us(window_us)
                .with_trace_store(store.clone());
            let run_spec = traced_ft_spec(kind, scale);
            let slug = exec.trace_slug(&run_spec);
            let tr = exec.traced(&run_spec);
            let stats = exec.stats();
            eprintln!(
                "sweep: trace {slug} {}, {} machine run(s), {} store hit(s)",
                if tr.from_store() {
                    "served from store"
                } else {
                    "captured"
                },
                stats.computed,
                stats.store_hits
            );
            (slug, run_spec.describe(), tr.nodes(), tr.other_time())
        }
        _ => {
            eprintln!("repro sweep: exactly one of --workload or --trace is required\n{usage}");
            std::process::exit(2);
        }
    };
    if soft_deadline.is_some() && resume.is_none() {
        eprintln!("repro sweep: --soft-deadline requires --resume DIR\n{usage}");
        std::process::exit(2);
    }
    if profile_out.is_some() && resume.is_some() {
        eprintln!("repro sweep: --profile and --resume cannot be combined\n{usage}");
        std::process::exit(2);
    }
    let open = || store.open(&slug).map(|(reader, _)| reader);
    let mut resumed = 0usize;
    let (report, prof) = if let Some(ckpt_dir) = &resume {
        let journal = CheckpointJournal::open(ckpt_dir).unwrap_or_else(|e| {
            eprintln!("opening checkpoint {}: {e}", ckpt_dir.display());
            std::process::exit(1);
        });
        match run_sweep_resumable(
            &spec,
            nodes,
            other_time,
            jobs,
            open,
            &journal,
            soft_deadline,
        ) {
            Ok((report, n)) => {
                resumed = n;
                (report, None)
            }
            Err(e) => {
                eprintln!("sweep over {slug}: {e}");
                std::process::exit(1);
            }
        }
    } else if profile_out.is_some() {
        match run_sweep_profiled(&spec, nodes, other_time, jobs, open) {
            Ok((report, prof)) => (report, Some(prof)),
            Err(e) => {
                eprintln!("sweep over {slug}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match run_sweep(&spec, nodes, other_time, jobs, open) {
            Ok(report) => (report, None),
            Err(e) => {
                eprintln!("sweep over {slug}: {e}");
                std::process::exit(1);
            }
        }
    };
    if let (Some(path), Some(prof)) = (&profile_out, &prof) {
        if let Err(e) = ccnuma_bench::atomic_write(path, prof.to_json().as_bytes()) {
            eprintln!("writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!(
            "sweep profile -> {} ({} replay span(s))",
            path.display(),
            prof.spans(ccnuma_obs::Phase::Replay)
        );
    }
    let json = report.to_json(&label);
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("writing {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("sweep artifact -> {}", path.display());
        }
        None => println!("{json}"),
    }
    if let Some(path) = &csv {
        if let Err(e) = std::fs::write(path, report.to_csv()) {
            eprintln!("writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("sweep CSV -> {}", path.display());
    }
    let resumed_note = if resume.is_some() {
        format!(", {resumed} resumed from checkpoint")
    } else {
        String::new()
    };
    eprintln!(
        "sweep: {} cell(s), {} unique replay(s){resumed_note}, {} records, jobs={jobs}",
        report.cells.len(),
        report.unique_replays,
        report.records
    );
    std::process::exit(0);
}

/// `repro serve`: run the sweep-as-a-service daemon until SIGTERM or
/// SIGINT (graceful: in-flight sweep cells are journaled in the result
/// cache before exit).
fn run_serve_cmd(args: &[String]) -> ! {
    let usage = "usage: repro serve [--addr HOST:PORT] [--trace-dir DIR] \
                 [--results-dir DIR] [--workers N] [--queue-depth N] \
                 [--prewarm SLUG,..] [--trace-budget-bytes N] [--max-cells N] \
                 [--max-body-bytes N] [--max-sweeps N] [--window-us N] \
                 [--soft-deadline SECS] [--hard-deadline SECS]";
    fn pos_num(flag: &str, it: &mut std::slice::Iter<'_, String>) -> u64 {
        match it.next().and_then(|v| v.parse::<u64>().ok()) {
            Some(n) if n > 0 => n,
            _ => {
                eprintln!("{flag} expects a positive integer");
                std::process::exit(2);
            }
        }
    }
    let mut cfg = ServeConfig {
        trace_dir: PathBuf::from(DEFAULT_TRACE_DIR),
        ..ServeConfig::default()
    };
    let mut results_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => cfg.addr = next_str("--addr", &mut it).to_string(),
            "--trace-dir" => cfg.trace_dir = PathBuf::from(next_str("--trace-dir", &mut it)),
            "--results-dir" => {
                results_dir = Some(PathBuf::from(next_str("--results-dir", &mut it)));
            }
            "--workers" => cfg.workers = pos_num("--workers", &mut it) as usize,
            "--queue-depth" => cfg.queue_depth = pos_num("--queue-depth", &mut it) as usize,
            "--prewarm" => cfg.prewarm.extend(
                next_str("--prewarm", &mut it)
                    .split(',')
                    .map(str::to_string),
            ),
            "--trace-budget-bytes" => {
                cfg.trace_budget_bytes = pos_num("--trace-budget-bytes", &mut it);
            }
            "--max-cells" => cfg.max_cells = pos_num("--max-cells", &mut it) as usize,
            "--max-body-bytes" => {
                cfg.max_body_bytes = pos_num("--max-body-bytes", &mut it) as usize;
            }
            "--max-sweeps" => cfg.max_sweeps = pos_num("--max-sweeps", &mut it) as usize,
            "--window-us" => {
                // Accepted for CLI uniformity with all/bench/sweep; the
                // daemon replays stored traces and never opens a
                // scheduling window, so the value is validated and noted
                // but cannot change any response.
                let us = parse_window("--window-us", &mut it);
                eprintln!(
                    "serve: --window-us {us} has no effect (the daemon replays stored traces)"
                );
            }
            "--soft-deadline" => {
                cfg.soft_deadline = Some(parse_deadline(
                    "--soft-deadline",
                    next_str("--soft-deadline", &mut it),
                ));
            }
            "--hard-deadline" => {
                cfg.hard_deadline = Some(parse_deadline(
                    "--hard-deadline",
                    next_str("--hard-deadline", &mut it),
                ));
            }
            other => {
                eprintln!("repro serve: unknown argument {other:?}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    cfg.results_dir = results_dir.unwrap_or_else(|| cfg.trace_dir.join("results"));
    match ccnuma_serve::run(cfg) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro loadgen`: hammer a running daemon with mixed traffic and
/// print (or write) the `ccnuma-loadgen/1` report.
fn run_loadgen_cmd(args: &[String]) -> ! {
    let usage = "usage: repro loadgen --url HOST:PORT [--concurrency N] \
                 [--duration SECS] [--trace NAME] [--out FILE]";
    let mut url: Option<String> = None;
    let mut concurrency = 4usize;
    let mut duration = Duration::from_secs(5);
    let mut trace: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--url" => url = Some(next_str("--url", &mut it).to_string()),
            "--concurrency" => {
                concurrency = match next_str("--concurrency", &mut it).parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("--concurrency expects a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--duration" => {
                let raw = next_str("--duration", &mut it);
                duration = parse_deadline("--duration", raw.strip_suffix('s').unwrap_or(raw));
            }
            "--trace" => trace = Some(next_str("--trace", &mut it).to_string()),
            "--out" => out = Some(PathBuf::from(next_str("--out", &mut it))),
            other => {
                eprintln!("repro loadgen: unknown argument {other:?}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    let Some(url) = url else {
        eprintln!("repro loadgen: --url is required\n{usage}");
        std::process::exit(2);
    };
    let stripped = url
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .to_string();
    let addr = {
        use std::net::ToSocketAddrs;
        match stripped.to_socket_addrs().ok().and_then(|mut a| a.next()) {
            Some(addr) => addr,
            None => {
                eprintln!("--url: cannot resolve {url:?} (want HOST:PORT)");
                std::process::exit(2);
            }
        }
    };
    let opts = LoadgenOptions {
        addr,
        concurrency,
        duration,
        trace,
    };
    match ccnuma_serve::run_loadgen(&opts) {
        Ok(json) => {
            match &out {
                Some(path) => {
                    if let Err(e) = ccnuma_bench::atomic_write(path, json.as_bytes()) {
                        eprintln!("writing {}: {e}", path.display());
                        std::process::exit(1);
                    }
                    eprintln!("loadgen report -> {}", path.display());
                }
                None => println!("{json}"),
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("loadgen against {url}: {e}");
            std::process::exit(1);
        }
    }
}

/// Parses a `--soft-deadline`/`--hard-deadline` value: positive
/// seconds, fractions allowed.
fn parse_deadline(flag: &str, raw: &str) -> Duration {
    match raw.parse::<f64>() {
        Ok(secs) if secs > 0.0 && secs.is_finite() => Duration::from_secs_f64(secs),
        _ => {
            eprintln!("{flag} expects a positive number of seconds");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench") => run_bench(&args[1..]),
        Some("obs") => run_obs_cmd(&args[1..]),
        Some("trace") => run_trace_cmd(&args[1..]),
        Some("sweep") => run_sweep_cmd(&args[1..]),
        Some("serve") => run_serve_cmd(&args[1..]),
        Some("loadgen") => run_loadgen_cmd(&args[1..]),
        _ => {}
    }
    let mut scale = Scale::standard();
    let mut jobs = default_jobs();
    let mut obs_dir: Option<PathBuf> = None;
    let mut profile = false;
    let mut trace_dir: Option<PathBuf> = None;
    let mut resume_dir: Option<PathBuf> = None;
    let mut soft_deadline: Option<Duration> = None;
    let mut hard_deadline: Option<Duration> = None;
    let mut verbosity_flag: Option<Verbosity> = None;
    let mut fault_scenario: Option<FaultScenario> = None;
    let mut chaos_seed: u64 = 0;
    let mut topology: Option<TopologyPreset> = None;
    let mut shards: Option<ShardPlan> = None;
    let mut window_us: Option<u64> = None;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                print_list();
                return;
            }
            "--list-faults" => {
                print_fault_list();
                return;
            }
            "--faults" => {
                fault_scenario = match it.next().map(|v| v.parse::<FaultScenario>()) {
                    Some(Ok(sc)) => Some(sc),
                    Some(Err(e)) => {
                        eprintln!("--faults: {e}");
                        std::process::exit(2);
                    }
                    None => {
                        eprintln!("--faults expects a scenario name (see repro --list-faults)");
                        std::process::exit(2);
                    }
                };
            }
            "--chaos-seed" => {
                chaos_seed = match it.next().and_then(|v| v.parse::<u64>().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--chaos-seed expects an unsigned integer");
                        std::process::exit(2);
                    }
                };
            }
            "--scale" => {
                let v = it.next().map(String::as_str);
                scale = match v {
                    Some("quick") => Scale::quick(),
                    Some("standard") => Scale::standard(),
                    Some("full") => Scale::full(),
                    other => {
                        eprintln!("--scale expects quick|standard|full, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--jobs" => {
                jobs = match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => n,
                    _ => {
                        eprintln!("--jobs expects a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--topology" => {
                let label = match it.next() {
                    Some(v) => v,
                    None => {
                        eprintln!("--topology expects a preset name");
                        std::process::exit(2);
                    }
                };
                topology = Some(parse_topology("--topology", label));
            }
            "--shards" => shards = Some(parse_shards("--shards", &mut it)),
            "--window-us" => window_us = Some(parse_window("--window-us", &mut it)),
            "--obs-dir" => {
                obs_dir = match it.next() {
                    Some(dir) => Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--obs-dir expects a directory path");
                        std::process::exit(2);
                    }
                };
            }
            "--profile" => profile = true,
            "--trace-dir" => {
                trace_dir = match it.next() {
                    Some(dir) => Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--trace-dir expects a directory path");
                        std::process::exit(2);
                    }
                };
            }
            "--resume" => {
                resume_dir = match it.next() {
                    Some(dir) => Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--resume expects a checkpoint directory path");
                        std::process::exit(2);
                    }
                };
            }
            "--soft-deadline" => {
                let raw = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--soft-deadline expects a number of seconds");
                    std::process::exit(2);
                });
                soft_deadline = Some(parse_deadline("--soft-deadline", &raw));
            }
            "--hard-deadline" => {
                let raw = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--hard-deadline expects a number of seconds");
                    std::process::exit(2);
                });
                hard_deadline = Some(parse_deadline("--hard-deadline", &raw));
            }
            "-v" | "--verbose" => verbosity_flag = Some(Verbosity::Verbose),
            "-q" | "--quiet" => verbosity_flag = Some(Verbosity::Quiet),
            "all" => names.extend(experiments::ALL.iter().map(|e| e.name.to_string())),
            name => names.push(name.to_string()),
        }
    }
    let verbosity = Verbosity::resolve(verbosity_flag, std::env::var("CCNUMA_LOG").ok().as_deref());
    if profile && obs_dir.is_none() {
        eprintln!("--profile requires --obs-dir DIR (profiles are artifacts, not stdout)");
        std::process::exit(2);
    }
    if names.is_empty() {
        eprintln!(
            "usage: repro <experiment>... [--scale quick|standard|full] [--jobs N] \
             [--shards N] [--window-us N] [--topology PRESET] [--obs-dir DIR] [--profile] \
             [--trace-dir DIR] [--faults SCENARIO] [--chaos-seed N] [--resume DIR] \
             [--soft-deadline SECS] [--hard-deadline SECS] [-v|-q]"
        );
        eprintln!("       repro all | repro bench | repro obs report | repro trace | repro sweep");
        eprintln!("       repro serve | repro loadgen");
        eprintln!("       repro --list | repro --list-faults");
        std::process::exit(2);
    }

    // Resolve names to experiments, deduplicating (aliases and repeats
    // collapse onto the canonical entry, keeping first-request order) and
    // collecting unknown names instead of aborting on the first one.
    let mut selected: Vec<&experiments::Experiment> = Vec::new();
    let mut unknown: Vec<String> = Vec::new();
    for name in &names {
        match experiments::find(name) {
            Some(exp) => {
                if !selected.iter().any(|e| e.name == exp.name) {
                    selected.push(exp);
                }
            }
            None => {
                if !unknown.contains(name) {
                    unknown.push(name.clone());
                }
            }
        }
    }
    for name in &unknown {
        eprintln!("unknown experiment '{name}' (see repro --list); skipping");
    }

    let start = Instant::now();
    let mut plan = RunPlan::new();
    for exp in &selected {
        plan.extend((exp.plan)(scale));
    }
    let fault_spec = fault_scenario.map(|scenario| FaultSpec {
        scenario,
        chaos_seed,
    });
    let mut exec = Executor::new(jobs).with_verbosity(verbosity);
    if let Some(preset) = topology {
        exec = exec.with_topology(preset);
    }
    if let Some(plan) = shards {
        exec = exec.with_shards(plan);
    }
    if window_us.is_some() {
        exec = exec.with_window_us(window_us);
    }
    if let Some(dir) = &obs_dir {
        exec = exec.with_obs_dir(dir.clone());
    }
    if profile {
        exec = exec.with_profiling();
    }
    if let Some(dir) = &trace_dir {
        exec = exec.with_trace_store(open_store(dir));
    }
    if let Some(faults) = fault_spec {
        exec = exec.with_faults(faults);
    }
    if soft_deadline.is_some() || hard_deadline.is_some() {
        exec = exec.with_deadlines(soft_deadline, hard_deadline);
    }
    if let Some(dir) = &resume_dir {
        exec = exec.with_checkpoint(dir.clone()).unwrap_or_else(|e| {
            eprintln!("opening checkpoint {}: {e}", dir.display());
            std::process::exit(1);
        });
    }
    exec.execute(&plan);
    for exp in &selected {
        // An experiment whose plan contains a failed run cannot render;
        // skip it with a notice and keep going — the failure itself is
        // reported in the summary below.
        let broken: Vec<_> = (exp.plan)(scale)
            .iter()
            .filter_map(|s| exec.failure_for(s))
            .collect();
        if broken.is_empty() {
            println!("{}", (exp.render)(scale, &exec));
        } else {
            println!(
                "== {} skipped: {} failed run(s) ==\n",
                exp.name,
                broken.len()
            );
        }
    }

    let stats = exec.stats();
    if let Some(faults) = fault_spec {
        print!(
            "{}",
            chaos_summary(faults, stats.computed, stats.failed, &exec.fault_totals())
        );
    }
    let failures = exec.failures();
    if failures.is_empty() {
        if fault_spec.is_some() {
            println!("failures: none");
        }
    } else {
        println!("== failure summary ==");
        for f in &failures {
            println!("FAILED {}: {}", f.label, f.error);
        }
        println!("failures: {}", failures.len());
    }
    let wall = start.elapsed();
    if let Some(dir) = &obs_dir {
        match exec.write_run_metadata(dir, wall) {
            Ok(path) => {
                if verbosity.normal() {
                    eprintln!("obs artifacts in {}", path.parent().unwrap().display());
                }
            }
            Err(e) => {
                eprintln!("writing {}/run-metadata.json: {e}", dir.display());
                std::process::exit(1);
            }
        }
        match exec.write_invocation_profile(dir) {
            Ok(Some(path)) => {
                if verbosity.normal() {
                    eprintln!("invocation profile -> {}", path.display());
                }
            }
            Ok(None) => {}
            Err(e) => {
                eprintln!("writing {}/profile.json: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if verbosity.verbose() {
        eprintln!("-- repro summary --");
        for t in exec.timings() {
            eprintln!("  {:>8.2}s  {}", t.wall.as_secs_f64(), t.label);
        }
    }
    if verbosity.normal() {
        let failed = if stats.failed > 0 {
            format!(", {} FAILED", stats.failed)
        } else {
            String::new()
        };
        let store_hits = if stats.store_hits > 0 {
            format!(", {} trace-store hit(s)", stats.store_hits)
        } else {
            String::new()
        };
        let resumed = if stats.resumed > 0 {
            format!(", {} resumed from checkpoint", stats.resumed)
        } else {
            String::new()
        };
        // Byte footprints ride along with the hit counts whenever a
        // store is in play, so capacity pressure is visible from the
        // same line operators already watch.
        let footprints = trace_dir.as_ref().map_or(String::new(), |dir| {
            let mut s = String::new();
            if let Ok(listing) = StoreListing::scan(&open_store(dir)) {
                s.push_str(&format!(
                    ", trace store {} B in {} trace(s)",
                    listing.total_bytes,
                    listing.entries.len()
                ));
            }
            let results = dir.join("results");
            if results.is_dir() {
                if let Ok(cache) = ResultCache::new(&results) {
                    let (n, b) = cache.footprint();
                    s.push_str(&format!(", result cache {b} B in {n} result(s)"));
                }
            }
            s
        });
        eprintln!(
            "{} experiment(s), {} distinct run(s) computed, {} cache hit(s){}{}{}{}, jobs={}, wall {:.2}s",
            selected.len(),
            stats.computed,
            stats.hits,
            store_hits,
            resumed,
            footprints,
            failed,
            stats.jobs,
            wall.as_secs_f64()
        );
    }
    if !unknown.is_empty() {
        std::process::exit(2);
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
