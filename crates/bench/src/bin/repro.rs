//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro <experiment>... [--scale quick|standard|full] [--jobs N]
//!                       [--obs-dir DIR] [-v|--verbose] [-q|--quiet]
//! repro all [--scale ...] [--jobs N]
//! repro --list
//! ```
//!
//! The requested experiments' run plans are merged, deduplicated, and
//! executed on `--jobs` worker threads (default: available parallelism)
//! before anything is rendered. Reports print to stdout in the order the
//! experiments were requested — byte-identical for any `--jobs` value.
//!
//! With `--obs-dir DIR`, every computed run additionally writes its
//! observability artifacts (`events.jsonl`, `timeseries.csv`,
//! `trace.json`, `metrics.json`) under `DIR/runs/<slug>/`, and the
//! invocation writes `DIR/run-metadata.json` (jobs, cache hits, per-run
//! wall times). See EXPERIMENTS.md for the artifact schemas.
//!
//! Stderr chatter is gated by one verbosity knob: `-v`/`--verbose` and
//! `-q`/`--quiet` flags first, then the `CCNUMA_LOG` environment
//! variable (`quiet|info|debug`), then the default (a one-line
//! summary). Experiment output on stdout is never gated.

use ccnuma_bench::{experiments, Executor, RunPlan};
use ccnuma_obs::Verbosity;
use ccnuma_workloads::Scale;
use std::path::PathBuf;
use std::time::Instant;

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn print_list() {
    for e in experiments::ALL {
        if e.aliases.is_empty() {
            println!("{}", e.name);
        } else {
            println!("{} (aliases: {})", e.name, e.aliases.join(", "));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::standard();
    let mut jobs = default_jobs();
    let mut obs_dir: Option<PathBuf> = None;
    let mut verbosity_flag: Option<Verbosity> = None;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                print_list();
                return;
            }
            "--scale" => {
                let v = it.next().map(String::as_str);
                scale = match v {
                    Some("quick") => Scale::quick(),
                    Some("standard") => Scale::standard(),
                    Some("full") => Scale::full(),
                    other => {
                        eprintln!("--scale expects quick|standard|full, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--jobs" => {
                jobs = match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => n,
                    _ => {
                        eprintln!("--jobs expects a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--obs-dir" => {
                obs_dir = match it.next() {
                    Some(dir) => Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--obs-dir expects a directory path");
                        std::process::exit(2);
                    }
                };
            }
            "-v" | "--verbose" => verbosity_flag = Some(Verbosity::Verbose),
            "-q" | "--quiet" => verbosity_flag = Some(Verbosity::Quiet),
            "all" => names.extend(experiments::ALL.iter().map(|e| e.name.to_string())),
            name => names.push(name.to_string()),
        }
    }
    let verbosity = Verbosity::resolve(verbosity_flag, std::env::var("CCNUMA_LOG").ok().as_deref());
    if names.is_empty() {
        eprintln!(
            "usage: repro <experiment>... [--scale quick|standard|full] [--jobs N] \
             [--obs-dir DIR] [-v|-q]"
        );
        eprintln!("       repro all | repro --list");
        std::process::exit(2);
    }

    // Resolve names to experiments, deduplicating (aliases and repeats
    // collapse onto the canonical entry, keeping first-request order) and
    // collecting unknown names instead of aborting on the first one.
    let mut selected: Vec<&experiments::Experiment> = Vec::new();
    let mut unknown: Vec<String> = Vec::new();
    for name in &names {
        match experiments::find(name) {
            Some(exp) => {
                if !selected.iter().any(|e| e.name == exp.name) {
                    selected.push(exp);
                }
            }
            None => {
                if !unknown.contains(name) {
                    unknown.push(name.clone());
                }
            }
        }
    }
    for name in &unknown {
        eprintln!("unknown experiment '{name}' (see repro --list); skipping");
    }

    let start = Instant::now();
    let mut plan = RunPlan::new();
    for exp in &selected {
        plan.extend((exp.plan)(scale));
    }
    let mut exec = Executor::new(jobs).with_verbosity(verbosity);
    if let Some(dir) = &obs_dir {
        exec = exec.with_obs_dir(dir.clone());
    }
    exec.execute(&plan);
    for exp in &selected {
        println!("{}", (exp.render)(scale, &exec));
    }

    let stats = exec.stats();
    let wall = start.elapsed();
    if let Some(dir) = &obs_dir {
        match exec.write_run_metadata(dir, wall) {
            Ok(path) => {
                if verbosity.normal() {
                    eprintln!("obs artifacts in {}", path.parent().unwrap().display());
                }
            }
            Err(e) => {
                eprintln!("writing {}/run-metadata.json: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if verbosity.verbose() {
        eprintln!("-- repro summary --");
        for t in exec.timings() {
            eprintln!("  {:>8.2}s  {}", t.wall.as_secs_f64(), t.label);
        }
    }
    if verbosity.normal() {
        eprintln!(
            "{} experiment(s), {} distinct run(s) computed, {} cache hit(s), jobs={}, wall {:.2}s",
            selected.len(),
            stats.computed,
            stats.hits,
            stats.jobs,
            wall.as_secs_f64()
        );
    }
    if !unknown.is_empty() {
        std::process::exit(2);
    }
}
