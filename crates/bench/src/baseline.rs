//! Bench-regression tracking: baseline diffing and the history trail.
//!
//! `repro bench --baseline FILE --check` compares a freshly measured
//! [`BenchReport`] against a committed `ccnuma-bench-hotpath/4` baseline
//! and fails (exit 1) when any throughput figure falls below the
//! baseline by more than a tolerance band. Wall-clock throughput is
//! noisy by nature, so the default band is generous (20%) — the check
//! exists to catch real hot-path regressions (an accidental allocation
//! per reference, a quadratic pass), not 3% scheduler jitter.
//!
//! Every checked *and* unchecked bench invocation can also append one
//! `ccnuma-bench-history/1` line to a JSONL trajectory file, so the
//! throughput story across optimisation work stays on disk next to the
//! repo instead of in CI logs that expire.
//!
//! Artifact writes here (and the bench JSON itself) go through
//! [`atomic_write`]: bytes land in `<path>.tmp` first and are renamed
//! into place, the same torn-file discipline the trace store uses — a
//! baseline that CI reads must never be observable half-written.

use crate::hotbench::BenchReport;
use ccnuma_obs::JsonValue;
use std::io;
use std::path::Path;

/// Schema tag of one history-trajectory JSONL line.
pub const HISTORY_SCHEMA: &str = "ccnuma-bench-history/1";

/// Default tolerance band, percent below baseline that still passes.
pub const DEFAULT_TOLERANCE_PCT: f64 = 20.0;

pub use ccnuma_faults::io::atomic_write;

/// Why a figure regressed for a structural reason rather than a plain
/// below-the-band throughput number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaReason {
    /// The baseline value is zero (or not a finite positive number):
    /// no ratio is computable and the committed file is unusable as a
    /// reference for this figure — regenerate it.
    ZeroBaseline,
    /// The baseline names a run the current suite did not measure: the
    /// suite silently dropping a measurement must fail the check.
    MissingRun,
}

impl DeltaReason {
    /// Human-readable explanation for [`BenchCheck::render`].
    pub fn describe(&self) -> &'static str {
        match self {
            DeltaReason::ZeroBaseline => "baseline value is zero — regenerate the baseline",
            DeltaReason::MissingRun => "run missing from current suite",
        }
    }
}

/// One compared throughput figure.
#[derive(Debug, Clone)]
pub struct BenchDelta {
    /// What was compared (e.g. `run engineering/FT/flat/x1 refs_per_sec`).
    pub metric: String,
    /// The committed baseline value.
    pub baseline: f64,
    /// The freshly measured value (0 when the run is missing now).
    pub current: f64,
    /// True when `current` fell below the tolerance band (or the
    /// comparison was structurally broken — see `reason`).
    pub regressed: bool,
    /// Set when the figure regressed for a structural reason instead of
    /// a below-the-band number.
    pub reason: Option<DeltaReason>,
}

impl BenchDelta {
    /// `current / baseline`. Never `Inf`/`NaN`: 0 when the baseline is
    /// zero, negative, or not finite.
    pub fn ratio(&self) -> f64 {
        if self.baseline > 0.0 && self.baseline.is_finite() && self.current.is_finite() {
            self.current / self.baseline
        } else {
            0.0
        }
    }
}

/// The outcome of one baseline comparison.
#[derive(Debug, Clone)]
pub struct BenchCheck {
    /// The tolerance band used, percent below baseline.
    pub tolerance_pct: f64,
    /// Every compared figure, baseline order.
    pub deltas: Vec<BenchDelta>,
}

impl BenchCheck {
    /// Number of regressed figures.
    pub fn regressions(&self) -> usize {
        self.deltas.iter().filter(|d| d.regressed).count()
    }

    /// True when nothing regressed.
    pub fn ok(&self) -> bool {
        self.regressions() == 0
    }

    /// Human-readable comparison table (one line per figure, regressed
    /// lines marked `REGRESSED`).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "== bench check (tolerance {:.1}% below baseline) ==\n",
            self.tolerance_pct
        ));
        for d in &self.deltas {
            s.push_str(&format!(
                "{} {:<55} baseline {:>14.1} current {:>14.1} ({:>6.1}%)",
                if d.regressed { "FAIL" } else { "ok  " },
                d.metric,
                d.baseline,
                d.current,
                d.ratio() * 100.0
            ));
            if let Some(reason) = d.reason {
                s.push_str(&format!(" [{}]", reason.describe()));
            }
            s.push('\n');
        }
        s.push_str(&format!(
            "bench check: {} figure(s), {} regression(s)\n",
            self.deltas.len(),
            self.regressions()
        ));
        s
    }
}

/// Reads one `f64` member of a JSON object, erroring with context.
fn f64_member(obj: &JsonValue, key: &str, what: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("baseline {what} has no numeric {key:?}"))
}

fn str_member<'a>(obj: &'a JsonValue, key: &str, what: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("baseline {what} has no string {key:?}"))
}

/// Compares `current` against a committed `ccnuma-bench-hotpath/4`
/// baseline document.
///
/// Compared figures, all "higher is better" rates:
///
/// * `totals.refs_per_sec` — the headline suite throughput;
/// * per-run `refs_per_sec`, keyed by `(workload, policy, topology,
///   shards)` — a baseline run with no matching current run regresses
///   with [`DeltaReason::MissingRun`] (the suite silently dropping a
///   measurement must fail);
/// * the `tracestore` codec block's `encode_mb_per_sec`,
///   `decode_mb_per_sec` and `replay_refs_per_sec`, when both sides
///   measured it.
///
/// A figure regresses when `current < baseline * (1 - tolerance/100)`.
/// A baseline value that is zero (or not a finite positive number)
/// regresses with [`DeltaReason::ZeroBaseline`] instead of silently
/// passing every current value — no ratio against it is meaningful, and
/// no `Inf`/`NaN` ever reaches the rendered table. Current runs absent
/// from the baseline are ignored — adding coverage must not fail the
/// check.
///
/// # Errors
///
/// Returns a message when the baseline is not valid
/// `ccnuma-bench-hotpath/4` JSON or its scale differs from the
/// measured report's (cross-scale throughput is not comparable).
pub fn check_against_baseline(
    current: &BenchReport,
    baseline_json: &str,
    tolerance_pct: f64,
) -> Result<BenchCheck, String> {
    let doc = JsonValue::parse(baseline_json).map_err(|e| format!("parsing baseline: {e}"))?;
    let schema = str_member(&doc, "schema", "document")?;
    if schema != "ccnuma-bench-hotpath/4" {
        return Err(format!(
            "baseline schema is {schema:?}, want \"ccnuma-bench-hotpath/4\""
        ));
    }
    let scale = str_member(&doc, "scale", "document")?;
    if scale != current.scale {
        return Err(format!(
            "baseline was measured at scale {scale:?}, current at {:?} — not comparable",
            current.scale
        ));
    }
    let floor = 1.0 - tolerance_pct / 100.0;
    let mut deltas = Vec::new();
    let mut push = |metric: String, baseline: f64, current: f64, reason: Option<DeltaReason>| {
        // A zero/non-finite baseline can never band-check a current
        // value; surface it as its own typed failure.
        let reason = reason.or_else(|| {
            (!(baseline.is_finite() && baseline > 0.0)).then_some(DeltaReason::ZeroBaseline)
        });
        deltas.push(BenchDelta {
            metric,
            baseline,
            current,
            regressed: reason.is_some() || current < baseline * floor,
            reason,
        });
    };

    let totals = doc
        .get("totals")
        .ok_or("baseline document has no \"totals\"")?;
    let (_, _, current_rate) = current.totals();
    push(
        "totals refs_per_sec".into(),
        f64_member(totals, "refs_per_sec", "totals")?,
        current_rate,
        None,
    );

    for run in doc
        .get("runs")
        .and_then(JsonValue::as_array)
        .ok_or("baseline document has no \"runs\" array")?
    {
        let workload = str_member(run, "workload", "run")?;
        let policy = str_member(run, "policy", "run")?;
        let topology = str_member(run, "topology", "run")?;
        let shards = f64_member(run, "shards", "run")?;
        let base_rate = f64_member(run, "refs_per_sec", "run")?;
        let now = current.runs.iter().find(|r| {
            r.workload == workload
                && r.policy == policy
                && r.topology == topology
                && f64::from(r.shards) == shards
        });
        push(
            format!("run {workload}/{policy}/{topology}/x{shards} refs_per_sec"),
            base_rate,
            now.map_or(0.0, |r| r.refs_per_sec),
            now.is_none().then_some(DeltaReason::MissingRun),
        );
    }

    if let (Some(base_t), Some(cur_t)) = (doc.get("tracestore"), current.trace.as_ref()) {
        for (key, now) in [
            ("encode_mb_per_sec", cur_t.encode_mb_per_sec),
            ("decode_mb_per_sec", cur_t.decode_mb_per_sec),
            ("replay_refs_per_sec", cur_t.replay_refs_per_sec),
        ] {
            push(
                format!("tracestore {key}"),
                f64_member(base_t, key, "tracestore")?,
                now,
                None,
            );
        }
    }

    Ok(BenchCheck {
        tolerance_pct,
        deltas,
    })
}

/// Renders one `ccnuma-bench-history/1` trajectory line (no trailing
/// newline): the suite totals of `report`, stamped with `unix_time`,
/// plus the check outcome when one ran.
pub fn history_line(report: &BenchReport, check: Option<&BenchCheck>, unix_time: u64) -> String {
    use ccnuma_obs::json::JsonWriter;
    let (refs, wall, rate) = report.totals();
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("schema");
    w.str(HISTORY_SCHEMA);
    w.key("unix_time");
    w.raw(&unix_time.to_string());
    w.key("scale");
    w.str(&report.scale);
    w.key("runs");
    w.raw(&report.runs.len().to_string());
    w.key("total_refs");
    w.raw(&refs.to_string());
    w.key("wall_seconds");
    w.raw(&format!("{wall:.6}"));
    w.key("refs_per_sec");
    w.raw(&format!("{rate:.1}"));
    if let Some(t) = &report.trace {
        w.key("encode_mb_per_sec");
        w.raw(&format!("{:.1}", t.encode_mb_per_sec));
        w.key("decode_mb_per_sec");
        w.raw(&format!("{:.1}", t.decode_mb_per_sec));
        w.key("replay_refs_per_sec");
        w.raw(&format!("{:.1}", t.replay_refs_per_sec));
    }
    w.key("checked");
    w.raw(if check.is_some() { "true" } else { "false" });
    if let Some(c) = check {
        w.key("tolerance_pct");
        w.raw(&format!("{:.1}", c.tolerance_pct));
        w.key("regressions");
        w.raw(&c.regressions().to_string());
    }
    w.end_obj();
    w.finish()
}

/// Appends `line` (plus a newline) to the JSONL trajectory at `path`,
/// as a single locked `write(2)` on an `O_APPEND` descriptor — two
/// racing appenders (or a crash mid-append) can interleave whole
/// records but never tear one.
///
/// # Errors
///
/// Propagates open/write errors.
pub fn append_history(path: &Path, line: &str) -> io::Result<()> {
    use ccnuma_faults::io::Storage as _;
    ccnuma_faults::DiskStorage.append_line(path, line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotbench::{BenchRun, TraceBench};

    fn report(rate: f64) -> BenchReport {
        BenchReport {
            scale: "quick".into(),
            runs: vec![BenchRun {
                workload: "raytrace".into(),
                policy: "FT".into(),
                topology: "flat".into(),
                shards: 1,
                total_refs: 1000,
                wall_seconds: 1000.0 / rate,
                refs_per_sec: rate,
            }],
            trace: Some(TraceBench {
                workload: "raytrace".into(),
                records: 1000,
                v2_bytes: 6400,
                encode_mb_per_sec: 100.0,
                decode_mb_per_sec: 200.0,
                replay_refs_per_sec: 5000.0,
            }),
        }
    }

    #[test]
    fn identical_report_passes_its_own_baseline() {
        let rep = report(2000.0);
        let check = check_against_baseline(&rep, &rep.to_json(), DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(check.ok(), "{}", check.render());
        // totals + 1 run + 3 codec figures.
        assert_eq!(check.deltas.len(), 5);
        assert!(check.render().contains("run raytrace/FT/flat/x1"));
    }

    #[test]
    fn inflated_baseline_fails_and_small_noise_passes() {
        let rep = report(2000.0);
        // 10% slower than baseline: inside the 20% band.
        let baseline = report(2222.0).to_json();
        let check = check_against_baseline(&rep, &baseline, DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(check.ok(), "10% down is inside the band");
        // 10x faster baseline: far outside any sane band.
        let baseline = report(20000.0).to_json();
        let check = check_against_baseline(&rep, &baseline, DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(!check.ok());
        assert!(check.regressions() >= 2, "totals and the run regress");
        assert!(check.render().contains("FAIL"));
    }

    #[test]
    fn missing_run_is_a_regression_and_extra_run_is_not() {
        let mut rep = report(2000.0);
        let baseline = rep.to_json();
        rep.runs.clear(); // the suite silently lost a measurement
        rep.trace = None;
        let check = check_against_baseline(&rep, &baseline, DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(!check.ok());
        let missing = check
            .deltas
            .iter()
            .find(|d| d.metric.contains("raytrace"))
            .unwrap();
        assert!(missing.regressed);
        assert_eq!(missing.current, 0.0);
        assert_eq!(missing.reason, Some(DeltaReason::MissingRun));
        assert!(check.render().contains("run missing from current suite"));
        // The ratio of the structurally-broken figure is still finite.
        assert!(missing.ratio().is_finite());
        // The reverse — current measures more than the baseline — passes.
        let small = report(2000.0);
        let mut grown = report(2000.0);
        grown.runs.push(BenchRun {
            workload: "pmake".into(),
            policy: "FT".into(),
            topology: "flat".into(),
            shards: 1,
            total_refs: 500,
            wall_seconds: 0.25,
            refs_per_sec: 2000.0,
        });
        let check =
            check_against_baseline(&grown, &small.to_json(), DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(check.ok(), "{}", check.render());
    }

    #[test]
    fn zero_baseline_is_a_typed_regression_with_finite_ratio() {
        let rep = report(2000.0);
        // A baseline row whose refs_per_sec is 0 (a broken committed
        // file) must fail with a typed reason, not silently pass every
        // current value or render Inf/NaN.
        let mut broken = report(2000.0);
        broken.runs[0].refs_per_sec = 0.0;
        let check = check_against_baseline(&rep, &broken.to_json(), DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(!check.ok());
        let zero = check
            .deltas
            .iter()
            .find(|d| d.metric.contains("raytrace"))
            .unwrap();
        assert!(zero.regressed);
        assert_eq!(zero.reason, Some(DeltaReason::ZeroBaseline));
        assert_eq!(zero.ratio(), 0.0, "never Inf/NaN");
        let rendered = check.render();
        assert!(rendered.contains("baseline value is zero"));
        assert!(
            !rendered.contains("inf") && !rendered.contains("NaN"),
            "{rendered}"
        );
    }

    #[test]
    fn scale_and_schema_mismatches_are_errors() {
        let rep = report(2000.0);
        let mut other = report(2000.0);
        other.scale = "standard".into();
        let err = check_against_baseline(&rep, &other.to_json(), 20.0).unwrap_err();
        assert!(err.contains("scale"), "{err}");
        let err = check_against_baseline(&rep, r#"{"schema":"nope"}"#, 20.0).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        let err = check_against_baseline(&rep, "not json", 20.0).unwrap_err();
        assert!(err.contains("parsing baseline"), "{err}");
    }

    #[test]
    fn history_line_carries_schema_and_check_outcome() {
        let rep = report(2000.0);
        let line = history_line(&rep, None, 1_700_000_000);
        assert!(line.starts_with(r#"{"schema":"ccnuma-bench-history/1","unix_time":1700000000"#));
        assert!(line.contains(r#""checked":false"#));
        assert!(!line.contains("regressions"));
        let check = check_against_baseline(&rep, &rep.to_json(), 20.0).unwrap();
        let line = history_line(&rep, Some(&check), 1_700_000_001);
        assert!(line.contains(r#""checked":true"#));
        assert!(line.contains(r#""tolerance_pct":20.0"#));
        assert!(line.contains(r#""regressions":0"#));
        // JSONL: one object, no embedded newline.
        assert!(!line.contains('\n'));
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("ccnuma-atomic-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(
            !dir.join("out.json.tmp").exists(),
            "temporary must not linger"
        );
        // A failing rename (target dir vanished) leaves no temporary.
        let gone = dir.join("sub").join("x.json");
        assert!(atomic_write(&gone, b"x").is_err());
        assert!(!dir.join("sub").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_history_accumulates_lines() {
        let dir = std::env::temp_dir().join(format!("ccnuma-history-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_history.jsonl");
        append_history(&path, "{\"a\":1}").unwrap();
        append_history(&path, "{\"a\":2}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"a\":2}\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn racing_appenders_never_tear_a_line() {
        let dir = std::env::temp_dir().join(format!("ccnuma-history-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_history.jsonl");
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 50;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let path = &path;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Long enough that a torn write would split it.
                        let line = format!(
                            "{{\"thread\":{t},\"seq\":{i},\"pad\":\"{}\"}}",
                            "x".repeat(512)
                        );
                        append_history(path, &line).unwrap();
                    }
                });
            }
        });
        let text = std::fs::read_to_string(&path).unwrap();
        let mut seen = vec![0u64; THREADS as usize];
        for line in text.lines() {
            assert!(
                line.starts_with("{\"thread\":") && line.ends_with("\"}"),
                "torn line: {line:?}"
            );
            let t: usize = line["{\"thread\":".len()..]
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            seen[t] += 1;
        }
        assert_eq!(seen, vec![PER_THREAD; THREADS as usize]);
        assert!(text.ends_with('\n'), "file ends at a record boundary");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
