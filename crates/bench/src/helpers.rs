//! Shared experiment plumbing.

use ccnuma_core::{DynamicPolicyKind, MissMetric, PolicyParams};
use ccnuma_machine::{Machine, PolicyChoice, RunOptions, RunReport};
use ccnuma_types::Ns;
use ccnuma_workloads::{Scale, WorkloadKind};

/// The paper's per-workload trigger threshold: 96 for engineering, 128
/// for everything else (Section 7).
pub fn trigger_for(kind: WorkloadKind) -> u32 {
    match kind {
        WorkloadKind::Engineering => 96,
        _ => 128,
    }
}

/// The base-policy parameters for a workload (trigger per
/// [`trigger_for`], sharing = trigger/4, write/migrate thresholds 1,
/// 100 ms reset interval).
pub fn base_params(kind: WorkloadKind) -> PolicyParams {
    PolicyParams::base().with_trigger(trigger_for(kind))
}

/// Options for a first-touch baseline run.
pub fn ft_options() -> RunOptions {
    RunOptions::new(PolicyChoice::first_touch())
}

/// Options for a base-policy (Mig/Rep, full cache misses) run.
pub fn dynamic_options(kind: WorkloadKind) -> RunOptions {
    RunOptions::new(PolicyChoice::Dynamic {
        params: base_params(kind),
        kind: DynamicPolicyKind::MigRep,
        metric: MissMetric::full_cache(),
    })
}

/// Runs one workload under the given options.
pub fn run(kind: WorkloadKind, scale: Scale, opts: RunOptions) -> RunReport {
    Machine::new(kind.build(scale), opts).run()
}

/// Runs one workload under first touch with trace capture (the input to
/// the Section 8 policy simulator).
pub fn run_traced_ft(kind: WorkloadKind, scale: Scale) -> RunReport {
    Machine::new(kind.build(scale), ft_options().with_trace()).run()
}

/// The constant "all other time" a policy-simulator bar carries over
/// from the machine run that produced its trace.
pub fn other_time_of(report: &RunReport) -> Ns {
    report.breakdown.other_incl_hits() + report.breakdown.idle()
}

/// A first-touch baseline and a base-policy run of the same workload.
#[derive(Debug)]
pub struct RunPair {
    /// The first-touch baseline.
    pub ft: RunReport,
    /// The Mig/Rep run.
    pub mig_rep: RunReport,
}

impl RunPair {
    /// Runs both policies on `kind` at `scale`.
    pub fn of(kind: WorkloadKind, scale: Scale) -> RunPair {
        RunPair {
            ft: run(kind, scale, ft_options()),
            mig_rep: run(kind, scale, dynamic_options(kind)),
        }
    }

    /// Percentage improvement of Mig/Rep over FT in total time.
    pub fn improvement(&self) -> f64 {
        self.mig_rep.improvement_over(&self.ft)
    }

    /// Percentage reduction in memory-stall time.
    pub fn stall_reduction(&self) -> f64 {
        self.mig_rep.stall_reduction_over(&self.ft)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggers_match_section7() {
        assert_eq!(trigger_for(WorkloadKind::Engineering), 96);
        assert_eq!(trigger_for(WorkloadKind::Raytrace), 128);
        assert_eq!(base_params(WorkloadKind::Engineering).sharing_threshold, 24);
        assert_eq!(base_params(WorkloadKind::Database).sharing_threshold, 32);
    }
}
