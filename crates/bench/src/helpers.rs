//! Shared experiment plumbing.
//!
//! Experiments never call the machine directly: they describe runs as
//! [`RunSpec`]s (built by the `*_spec` helpers here) and fetch reports
//! through an [`Executor`] handle, so identical runs requested by
//! different tables and figures share one memoized report.

use crate::plan::Executor;
use ccnuma_core::{DynamicPolicyKind, MissMetric, PolicyParams};
use ccnuma_machine::{PolicyChoice, RunOptions, RunReport, RunSpec};
use ccnuma_types::Ns;
use ccnuma_workloads::{Scale, WorkloadKind};
use std::sync::Arc;

/// `RunSpec::catalog`, preset-free. The `repro --topology` override is
/// no longer process-global state: specs stay preset-free here and the
/// [`Executor`] applies its configured default topology (see
/// [`Executor::with_topology`]) when it runs them, so two executors in
/// one process can reproduce two different machines.
pub(crate) fn catalog(kind: WorkloadKind, scale: Scale, opts: RunOptions) -> RunSpec {
    RunSpec::catalog(kind, scale, opts)
}

/// `RunSpec::shared_reader`, preset-free (see [`catalog`]).
pub(crate) fn shared_reader(nodes: u16, scale: Scale, opts: RunOptions) -> RunSpec {
    RunSpec::shared_reader(nodes, scale, opts)
}

/// The paper's per-workload trigger threshold: 96 for engineering, 128
/// for everything else (Section 7).
pub fn trigger_for(kind: WorkloadKind) -> u32 {
    match kind {
        WorkloadKind::Engineering => 96,
        _ => 128,
    }
}

/// The base-policy parameters for a workload (trigger per
/// [`trigger_for`], sharing = trigger/4, write/migrate thresholds 1,
/// 100 ms reset interval).
pub fn base_params(kind: WorkloadKind) -> PolicyParams {
    PolicyParams::base().with_trigger(trigger_for(kind))
}

/// Options for a first-touch baseline run.
pub fn ft_options() -> RunOptions {
    RunOptions::new(PolicyChoice::first_touch())
}

/// Options for a base-policy (Mig/Rep, full cache misses) run.
pub fn dynamic_options(kind: WorkloadKind) -> RunOptions {
    RunOptions::new(PolicyChoice::Dynamic {
        params: base_params(kind),
        kind: DynamicPolicyKind::MigRep,
        metric: MissMetric::full_cache(),
    })
}

/// The first-touch baseline run of a workload.
pub fn ft_spec(kind: WorkloadKind, scale: Scale) -> RunSpec {
    catalog(kind, scale, ft_options())
}

/// The base-policy run of a workload.
pub fn dynamic_spec(kind: WorkloadKind, scale: Scale) -> RunSpec {
    catalog(kind, scale, dynamic_options(kind))
}

/// The traced first-touch run of a workload (the input to the Section 8
/// policy simulator).
pub fn traced_ft_spec(kind: WorkloadKind, scale: Scale) -> RunSpec {
    catalog(kind, scale, ft_options().with_trace())
}

/// Fetches one workload run under the given options through `exec`.
pub fn run(exec: &Executor, kind: WorkloadKind, scale: Scale, opts: RunOptions) -> Arc<RunReport> {
    exec.run(&catalog(kind, scale, opts))
}

/// Fetches a workload's first-touch trace through `exec` — from the
/// executor's trace store when it already holds the capture, from a
/// machine run otherwise. Every Section 8 experiment sources its trace
/// here so one capture feeds all of them.
pub fn traced_ft(exec: &Executor, kind: WorkloadKind, scale: Scale) -> crate::plan::TracedRun {
    exec.traced(&traced_ft_spec(kind, scale))
}

/// The constant "all other time" a policy-simulator bar carries over
/// from the machine run that produced its trace.
pub fn other_time_of(report: &RunReport) -> Ns {
    report.breakdown.other_incl_hits() + report.breakdown.idle()
}

/// A first-touch baseline and a base-policy run of the same workload.
#[derive(Debug)]
pub struct RunPair {
    /// The first-touch baseline.
    pub ft: Arc<RunReport>,
    /// The Mig/Rep run.
    pub mig_rep: Arc<RunReport>,
}

impl RunPair {
    /// Fetches both policies on `kind` at `scale` through `exec`.
    pub fn of(exec: &Executor, kind: WorkloadKind, scale: Scale) -> RunPair {
        RunPair {
            ft: exec.run(&ft_spec(kind, scale)),
            mig_rep: exec.run(&dynamic_spec(kind, scale)),
        }
    }

    /// The two specs a pair needs, for planning.
    pub fn specs(kind: WorkloadKind, scale: Scale) -> [RunSpec; 2] {
        [ft_spec(kind, scale), dynamic_spec(kind, scale)]
    }

    /// Percentage improvement of Mig/Rep over FT in total time.
    pub fn improvement(&self) -> f64 {
        self.mig_rep.improvement_over(&self.ft)
    }

    /// Percentage reduction in memory-stall time.
    pub fn stall_reduction(&self) -> f64 {
        self.mig_rep.stall_reduction_over(&self.ft)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggers_match_section7() {
        assert_eq!(trigger_for(WorkloadKind::Engineering), 96);
        assert_eq!(trigger_for(WorkloadKind::Raytrace), 128);
        assert_eq!(base_params(WorkloadKind::Engineering).sharing_threshold, 24);
        assert_eq!(base_params(WorkloadKind::Database).sharing_threshold, 32);
    }

    #[test]
    fn pair_specs_match_what_of_fetches() {
        let exec = Executor::serial();
        let _ = RunPair::of(&exec, WorkloadKind::Database, Scale::quick());
        assert_eq!(exec.stats().computed, 2);
        // Planning the pair's specs first makes `of` pure cache hits.
        for spec in RunPair::specs(WorkloadKind::Database, Scale::quick()) {
            exec.run(&spec);
        }
        assert_eq!(exec.stats().computed, 2);
    }
}
