//! The `repro bench` hot-path throughput benchmark.
//!
//! Times every requested workload under the first-touch baseline and the
//! base Mig/Rep policy — the two run shapes every experiment in the suite
//! is built from — and reports wall time and simulated references per
//! second for each, plus suite totals. The output (`BENCH_hotpath.json`)
//! is the macro-level complement to the Criterion micro-benches in
//! `benches/hotpath.rs`: those isolate single hot-path components (TLB
//! probe, coherence write, directory request), this measures the whole
//! per-reference loop end to end.
//!
//! Schema (`ccnuma-bench-hotpath/4`; v4 added the per-run `shards`
//! field and — under `--shards N` — a serial comparison row for the
//! first workload, so the file records the intra-run speedup. v3 added
//! the per-run `topology` field and a four-socket-hierarchical
//! whole-run row):
//!
//! ```json
//! {
//!   "schema": "ccnuma-bench-hotpath/4",
//!   "scale": "quick",
//!   "runs": [
//!     {"workload": "engineering", "policy": "FT", "topology": "flat",
//!      "shards": 1, "total_refs": 320000, "wall_seconds": 0.41,
//!      "refs_per_sec": 780487.8}
//!   ],
//!   "tracestore": {"workload": "Engineering", "records": 470000,
//!                  "v2_bytes": 3000000, "encode_mb_per_sec": 250.0,
//!                  "decode_mb_per_sec": 400.0,
//!                  "replay_refs_per_sec": 9000000.0},
//!   "totals": {"total_refs": 3200000, "wall_seconds": 4.1,
//!              "refs_per_sec": 780487.8}
//! }
//! ```
//!
//! `refs_per_sec` is simulated references retired per wall-clock second —
//! the throughput figure EXPERIMENTS.md tracks across optimisation work.
//! The `tracestore` block times the v2 trace codec on one captured trace:
//! encode and decode throughput over the compressed byte size, plus the
//! rate at which a policy-simulator replay retires records streamed
//! straight out of the decoder. Wall-clock numbers are machine-dependent
//! by nature; only the stdout of the experiments themselves is held
//! byte-identical.

use crate::helpers::{other_time_of, traced_ft_spec};
use crate::{dynamic_spec, ft_spec};
use ccnuma_machine::RunSpec;
use ccnuma_obs::json::JsonWriter;
use ccnuma_polsim::{PolsimConfig, Replay, SimPolicy, TraceFilter};
use ccnuma_tracestore::{TraceReader, TraceWriter};
use ccnuma_workloads::{Scale, WorkloadKind};
use std::time::Instant;

/// One timed simulator run.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Workload name (Table 2 spelling, lowercased catalog name).
    pub workload: String,
    /// Policy label (`FT` or the dynamic policy's table label).
    pub policy: String,
    /// Topology preset label the run simulated under.
    pub topology: String,
    /// Host-thread shard count the run was timed at (1 = serial).
    /// Shards never change the report — only the wall clock.
    pub shards: u32,
    /// Simulated references retired by the run.
    pub total_refs: u64,
    /// Wall-clock duration of the run.
    pub wall_seconds: f64,
    /// `total_refs / wall_seconds`.
    pub refs_per_sec: f64,
}

/// Trace-store codec and replay throughput, measured on one captured
/// trace held in memory (no disk in the timed paths).
#[derive(Debug, Clone)]
pub struct TraceBench {
    /// Workload whose first-touch trace was measured.
    pub workload: String,
    /// Records in the trace.
    pub records: u64,
    /// Size of the v2 encoding.
    pub v2_bytes: u64,
    /// v2 encode throughput, MB of output per second.
    pub encode_mb_per_sec: f64,
    /// v2 decode throughput, MB of input per second.
    pub decode_mb_per_sec: f64,
    /// Records per second through decode + one base-policy replay.
    pub replay_refs_per_sec: f64,
}

/// The full benchmark result: one [`BenchRun`] per workload × policy.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Scale label (`quick`, `standard`, `full`).
    pub scale: String,
    /// The timed runs, in workload-catalog order, FT before Mig/Rep.
    pub runs: Vec<BenchRun>,
    /// Trace codec timings, when the benchmark measured them.
    pub trace: Option<TraceBench>,
}

impl BenchReport {
    /// Suite totals: summed references, summed wall time, and the
    /// aggregate throughput.
    pub fn totals(&self) -> (u64, f64, f64) {
        let refs: u64 = self.runs.iter().map(|r| r.total_refs).sum();
        let wall: f64 = self.runs.iter().map(|r| r.wall_seconds).sum();
        let rate = if wall > 0.0 { refs as f64 / wall } else { 0.0 };
        (refs, wall, rate)
    }

    /// Renders the report as `ccnuma-bench-hotpath/4` JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("schema");
        w.str("ccnuma-bench-hotpath/4");
        w.key("scale");
        w.str(&self.scale);
        w.key("runs");
        w.begin_arr();
        for r in &self.runs {
            w.begin_obj();
            w.key("workload");
            w.str(&r.workload);
            w.key("policy");
            w.str(&r.policy);
            w.key("topology");
            w.str(&r.topology);
            w.key("shards");
            w.raw(&r.shards.to_string());
            w.key("total_refs");
            w.raw(&r.total_refs.to_string());
            w.key("wall_seconds");
            w.raw(&format!("{:.6}", r.wall_seconds));
            w.key("refs_per_sec");
            w.raw(&format!("{:.1}", r.refs_per_sec));
            w.end_obj();
        }
        w.end_arr();
        if let Some(t) = &self.trace {
            w.key("tracestore");
            w.begin_obj();
            w.key("workload");
            w.str(&t.workload);
            w.key("records");
            w.raw(&t.records.to_string());
            w.key("v2_bytes");
            w.raw(&t.v2_bytes.to_string());
            w.key("encode_mb_per_sec");
            w.raw(&format!("{:.1}", t.encode_mb_per_sec));
            w.key("decode_mb_per_sec");
            w.raw(&format!("{:.1}", t.decode_mb_per_sec));
            w.key("replay_refs_per_sec");
            w.raw(&format!("{:.1}", t.replay_refs_per_sec));
            w.end_obj();
        }
        let (refs, wall, rate) = self.totals();
        w.key("totals");
        w.begin_obj();
        w.key("total_refs");
        w.raw(&refs.to_string());
        w.key("wall_seconds");
        w.raw(&format!("{wall:.6}"));
        w.key("refs_per_sec");
        w.raw(&format!("{rate:.1}"));
        w.end_obj();
        w.end_obj();
        let mut out = w.finish();
        out.push('\n');
        out
    }
}

/// Times one spec end to end (build + simulate), off any executor cache —
/// a benchmark must never report a memoized run as a measurement.
fn time_spec(kind: WorkloadKind, spec: &RunSpec) -> BenchRun {
    let total_refs = spec.build_workload().total_refs;
    let start = Instant::now();
    let report = spec.run();
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    BenchRun {
        workload: kind.to_string(),
        policy: report.policy_label.clone(),
        topology: spec
            .topology
            .map_or_else(|| "flat".to_string(), |p| p.label().to_string()),
        shards: spec.opts.shards.shards.max(1),
        total_refs,
        wall_seconds: wall,
        refs_per_sec: total_refs as f64 / wall,
    }
}

/// Times the v2 trace codec and a streamed policy-simulator replay on
/// one workload's first-touch trace, entirely in memory.
pub fn tracestore_bench(scale: Scale, kind: WorkloadKind) -> TraceBench {
    let spec = traced_ft_spec(kind, scale);
    let nodes = spec.build_workload().config.nodes;
    let report = spec.run();
    let trace = report.trace.as_ref().expect("traced run carries a trace");

    let start = Instant::now();
    let mut buf = Vec::new();
    let mut w = TraceWriter::new(&mut buf).expect("in-memory header write");
    for rec in trace.iter() {
        w.push(rec).expect("in-memory record write");
    }
    w.finish().expect("in-memory footer write");
    let encode_s = start.elapsed().as_secs_f64().max(1e-9);

    let start = Instant::now();
    let mut decoded = 0u64;
    for rec in TraceReader::new(buf.as_slice()).expect("own header reads back") {
        rec.expect("own stream decodes");
        decoded += 1;
    }
    let decode_s = start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(decoded, trace.len() as u64, "decode must see every record");

    let cfg = PolsimConfig::section8(nodes).with_other_time(other_time_of(&report));
    let mut replay = Replay::new(&cfg, SimPolicy::base_dynamic(), TraceFilter::UserOnly);
    let start = Instant::now();
    for rec in TraceReader::new(buf.as_slice()).expect("own header reads back") {
        replay.observe(&rec.expect("own stream decodes"));
    }
    let _ = replay.finish();
    let replay_s = start.elapsed().as_secs_f64().max(1e-9);

    let mb = buf.len() as f64 / 1e6;
    TraceBench {
        workload: kind.to_string(),
        records: trace.len() as u64,
        v2_bytes: buf.len() as u64,
        encode_mb_per_sec: mb / encode_s,
        decode_mb_per_sec: mb / decode_s,
        replay_refs_per_sec: decoded as f64 / replay_s,
    }
}

/// Runs the hot-path benchmark over `workloads` at `scale`, timing
/// every run at the requested shard plan.
///
/// Each workload is timed under first-touch and under the base Mig/Rep
/// policy, one run at a time (timings on a loaded machine are noise),
/// and progress goes to stderr so stdout stays clean for scripting.
/// Under a non-serial `shards` plan the first workload's Mig/Rep run is
/// additionally timed serially, so the report records the intra-run
/// speedup pair (shards = 1 vs N) on otherwise-identical work. The
/// first workload also gets a whole-run row under the
/// four-socket-hierarchical topology — tracking what the hop-path
/// latency model costs on the per-reference loop — and a
/// [`tracestore_bench`] codec measurement. A non-`None` `window_us`
/// overrides the simulator's 100 µs scheduling window on every timed
/// run (`--window-us`).
pub fn hotpath_bench(
    scale: Scale,
    scale_label: &str,
    workloads: &[WorkloadKind],
    shards: ccnuma_types::ShardPlan,
    window_us: Option<u64>,
) -> BenchReport {
    use ccnuma_types::{ShardPlan, TopologyPreset};
    let mut runs = Vec::new();
    for &kind in workloads {
        for mut spec in [ft_spec(kind, scale), dynamic_spec(kind, scale)] {
            spec.opts.shards = shards;
            spec.opts.window_us = window_us;
            let run = time_spec(kind, &spec);
            eprintln!(
                "bench: {} [{} x{}] {} refs in {:.2}s ({:.0} refs/s)",
                run.workload,
                run.policy,
                run.shards,
                run.total_refs,
                run.wall_seconds,
                run.refs_per_sec
            );
            runs.push(run);
        }
    }
    if let Some(&kind) = workloads.first() {
        if shards != ShardPlan::serial() {
            // The serial half of the speedup pair: same spec, one host
            // thread. Reports are byte-identical; only the wall clock
            // (and hence refs_per_sec) may differ.
            let mut spec = dynamic_spec(kind, scale);
            spec.opts.window_us = window_us;
            let run = time_spec(kind, &spec);
            eprintln!(
                "bench: {} [{} x{} serial-compare] {} refs in {:.2}s ({:.0} refs/s)",
                run.workload,
                run.policy,
                run.shards,
                run.total_refs,
                run.wall_seconds,
                run.refs_per_sec
            );
            runs.push(run);
        }
        let mut spec =
            dynamic_spec(kind, scale).with_topology(TopologyPreset::FourSocketHierarchical);
        spec.opts.shards = shards;
        spec.opts.window_us = window_us;
        let run = time_spec(kind, &spec);
        eprintln!(
            "bench: {} [{} +topo={}] {} refs in {:.2}s ({:.0} refs/s)",
            run.workload,
            run.policy,
            run.topology,
            run.total_refs,
            run.wall_seconds,
            run.refs_per_sec
        );
        runs.push(run);
    }
    let trace = workloads.first().map(|&kind| {
        let t = tracestore_bench(scale, kind);
        eprintln!(
            "bench: {} trace {} records, {} bytes, encode {:.0} MB/s, decode {:.0} MB/s, replay {:.0} refs/s",
            t.workload, t.records, t.v2_bytes, t.encode_mb_per_sec, t.decode_mb_per_sec,
            t.replay_refs_per_sec
        );
        t
    });
    BenchReport {
        scale: scale_label.to_string(),
        runs,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_workload_bench_reports_both_policies() {
        let report = hotpath_bench(
            Scale::quick(),
            "quick",
            &[WorkloadKind::Raytrace],
            ccnuma_types::ShardPlan::serial(),
            None,
        );
        assert_eq!(report.runs.len(), 3);
        assert_eq!(report.runs[0].policy, "FT");
        assert_ne!(report.runs[1].policy, "FT");
        assert_eq!(report.runs[0].topology, "flat");
        assert_eq!(report.runs[1].topology, "flat");
        assert_eq!(report.runs[2].topology, "four-socket-hierarchical");
        assert!(report.runs.iter().all(|r| r.shards == 1));
        for r in &report.runs {
            assert!(r.total_refs > 0);
            assert!(r.wall_seconds > 0.0);
            assert!(r.refs_per_sec > 0.0);
        }
        let (refs, wall, rate) = report.totals();
        assert_eq!(refs, report.runs.iter().map(|r| r.total_refs).sum::<u64>());
        assert!(wall > 0.0 && rate > 0.0);
        let t = report.trace.expect("codec timings ride along");
        assert_eq!(t.workload, "Raytrace");
        assert!(t.records > 0 && t.v2_bytes > 0);
        assert!(t.encode_mb_per_sec > 0.0 && t.decode_mb_per_sec > 0.0);
        assert!(t.replay_refs_per_sec > 0.0);
        // The codec must beat the flat 24-byte v1 records by at least 2x
        // on a real trace — the acceptance bar for the v2 format.
        assert!(
            t.v2_bytes * 2 <= t.records * 24,
            "{} bytes for {} records is not half of v1",
            t.v2_bytes,
            t.records
        );
    }

    #[test]
    fn json_has_schema_and_balanced_structure() {
        let report = BenchReport {
            scale: "quick".into(),
            runs: vec![BenchRun {
                workload: "raytrace".into(),
                policy: "FT".into(),
                topology: "flat".into(),
                shards: 1,
                total_refs: 1000,
                wall_seconds: 0.5,
                refs_per_sec: 2000.0,
            }],
            trace: Some(TraceBench {
                workload: "raytrace".into(),
                records: 1000,
                v2_bytes: 6400,
                encode_mb_per_sec: 100.0,
                decode_mb_per_sec: 200.0,
                replay_refs_per_sec: 5000.0,
            }),
        };
        let json = report.to_json();
        assert!(json.starts_with(r#"{"schema":"ccnuma-bench-hotpath/4","scale":"quick""#));
        assert!(json.contains(r#""topology":"flat""#));
        assert!(json.contains(r#""shards":1"#));
        assert!(json.contains(r#""total_refs":1000"#));
        assert!(json.contains(r#""wall_seconds":0.500000"#));
        assert!(json.contains(r#""refs_per_sec":2000.0"#));
        assert!(json.contains(
            r#""tracestore":{"workload":"raytrace","records":1000,"v2_bytes":6400,"encode_mb_per_sec":100.0,"decode_mb_per_sec":200.0,"replay_refs_per_sec":5000.0}"#
        ));
        assert!(json.contains(r#""totals":{"total_refs":1000"#));
        assert!(json.ends_with("}\n"));
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn sharded_bench_adds_serial_compare_row() {
        let report = hotpath_bench(
            Scale::quick(),
            "quick",
            &[WorkloadKind::Raytrace],
            ccnuma_types::ShardPlan::new(2),
            None,
        );
        assert_eq!(report.runs.len(), 4);
        assert_eq!(report.runs[0].shards, 2); // FT
        assert_eq!(report.runs[1].shards, 2); // Mig/Rep
                                              // The serial half of the speedup pair: same workload and policy
                                              // as runs[1], one host thread.
        assert_eq!(report.runs[2].shards, 1);
        assert_eq!(report.runs[2].policy, report.runs[1].policy);
        assert_eq!(report.runs[2].total_refs, report.runs[1].total_refs);
        assert_eq!(report.runs[3].topology, "four-socket-hierarchical");
        assert_eq!(report.runs[3].shards, 2);
    }

    #[test]
    fn empty_report_totals_are_zero() {
        let report = BenchReport {
            scale: "quick".into(),
            runs: vec![],
            trace: None,
        };
        assert_eq!(report.totals(), (0, 0.0, 0.0));
        assert!(report.to_json().contains(r#""runs":[]"#));
        assert!(!report.to_json().contains("tracestore"));
    }
}
