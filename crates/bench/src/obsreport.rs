//! `repro obs report` — fleet-wide aggregation of one invocation's
//! observability artifacts.
//!
//! An `--obs-dir` invocation leaves one artifact directory per run
//! (`runs/<slug>/metrics.json`, and with `--profile` also
//! `runs/<slug>/profile.json`) plus an invocation-level
//! `run-metadata.json`. Each is self-contained; nothing summarises the
//! fleet. This module reads the whole directory back and rolls it up:
//! counters are summed, histograms are rebuilt from their sparse log2
//! buckets via [`Histogram::from_parts`] and merged through the same
//! histogram stack the recorder uses — so the fleet p50/p90/p99 are
//! computed over the merged distribution, not averaged per-run — and
//! host profiles aggregate per phase exactly like the sweep engine's
//! worker merge.
//!
//! The rendered summary is deterministic for a given artifact tree
//! (runs are walked in sorted slug order); the `--out` JSON document
//! (`ccnuma-obs-report/1`) additionally carries the merged
//! distributions for downstream tooling.

use ccnuma_obs::json::JsonWriter;
use ccnuma_obs::{bucket_of, Histogram, JsonValue, Phase, BUCKETS, PHASES};
use std::collections::BTreeMap;
use std::path::Path;

/// Schema tag of the `--out` document.
pub const OBS_REPORT_SCHEMA: &str = "ccnuma-obs-report/1";

/// Invocation-level facts lifted from `run-metadata.json`.
#[derive(Debug, Clone, Default)]
pub struct InvocationMeta {
    /// Worker threads the invocation used.
    pub jobs: u64,
    /// Distinct runs computed.
    pub distinct_runs: u64,
    /// Memo-cache hits.
    pub cache_hits: u64,
    /// Runs that ended in a failure.
    pub failed_runs: u64,
    /// Total wall time of the invocation, seconds.
    pub wall_seconds_total: f64,
    /// `(label, wall_seconds)` per computed run, slowest first.
    pub slowest: Vec<(String, f64)>,
    /// Recorded warnings.
    pub warnings: Vec<String>,
}

/// One phase row of the merged host profile.
#[derive(Debug, Clone)]
pub struct PhaseSummary {
    /// The phase.
    pub phase: Phase,
    /// Summed entries across runs.
    pub entries: u64,
    /// Summed timed spans across runs.
    pub spans: u64,
    /// Merged duration histogram (nanoseconds).
    pub hist: Histogram,
}

/// The aggregated fleet view of one obs directory.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Invocation metadata, when `run-metadata.json` was present.
    pub meta: Option<InvocationMeta>,
    /// Run directories aggregated.
    pub runs: u64,
    /// Of those, how many carried a `metrics.json`.
    pub metrics_runs: u64,
    /// Of those, how many carried a `profile.json`.
    pub profile_runs: u64,
    /// Counters summed across every run, name-sorted.
    pub counters: BTreeMap<String, u64>,
    /// Sim-time histograms merged across every run, name-sorted.
    pub histograms: BTreeMap<String, Histogram>,
    /// Merged host profile, [`Phase::ALL`] order (empty when no run
    /// carried a profile).
    pub phases: Vec<PhaseSummary>,
}

/// Rebuilds a [`Histogram`] from the sparse `"lo": count` bucket
/// rendering plus the given sum/min/max members of `obj`.
fn hist_from_json(
    obj: &JsonValue,
    sum_key: &str,
    min_key: &str,
    max_key: &str,
) -> Option<Histogram> {
    let mut counts = [0u64; BUCKETS];
    for (lo, c) in obj.get("buckets")?.members()? {
        counts[bucket_of(lo.parse().ok()?)] += c.as_u64()?;
    }
    Some(Histogram::from_parts(
        counts,
        obj.get(sum_key)?.as_u128()?,
        obj.get(min_key)?.as_u64()?,
        obj.get(max_key)?.as_u64()?,
    ))
}

fn parse_metadata(doc: &JsonValue) -> InvocationMeta {
    let u = |key: &str| doc.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
    let mut slowest: Vec<(String, f64)> = doc
        .get("runs")
        .and_then(JsonValue::as_array)
        .map(|runs| {
            runs.iter()
                .filter_map(|r| {
                    Some((
                        r.get("label")?.as_str()?.to_string(),
                        r.get("wall_seconds")?.as_f64()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default();
    slowest.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let warnings = doc
        .get("warnings")
        .and_then(JsonValue::as_array)
        .map(|ws| {
            ws.iter()
                .filter_map(|w| Some(w.as_str()?.to_string()))
                .collect()
        })
        .unwrap_or_default();
    InvocationMeta {
        jobs: u("jobs"),
        distinct_runs: u("distinct_runs"),
        cache_hits: u("cache_hits"),
        failed_runs: u("failed_runs"),
        wall_seconds_total: doc
            .get("wall_seconds_total")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0),
        slowest,
        warnings,
    }
}

/// Reads every artifact under `dir` and aggregates the fleet view.
///
/// Missing pieces degrade: a run directory without `metrics.json` or
/// `profile.json` still counts as a run, and a missing
/// `run-metadata.json` just leaves [`ObsReport::meta`] empty. Only an
/// unreadable directory layout or malformed JSON is an error.
///
/// # Errors
///
/// Returns a message naming the unreadable or malformed file.
pub fn build_report(dir: &Path) -> Result<ObsReport, String> {
    let mut report = ObsReport {
        meta: None,
        runs: 0,
        metrics_runs: 0,
        profile_runs: 0,
        counters: BTreeMap::new(),
        histograms: BTreeMap::new(),
        phases: Vec::new(),
    };
    let meta_path = dir.join("run-metadata.json");
    if meta_path.is_file() {
        let text = std::fs::read_to_string(&meta_path)
            .map_err(|e| format!("reading {}: {e}", meta_path.display()))?;
        let doc =
            JsonValue::parse(&text).map_err(|e| format!("parsing {}: {e}", meta_path.display()))?;
        report.meta = Some(parse_metadata(&doc));
    }

    let runs_dir = dir.join("runs");
    let mut slugs: Vec<std::path::PathBuf> = Vec::new();
    if runs_dir.is_dir() {
        for entry in std::fs::read_dir(&runs_dir)
            .map_err(|e| format!("reading {}: {e}", runs_dir.display()))?
        {
            let entry = entry.map_err(|e| format!("reading {}: {e}", runs_dir.display()))?;
            if entry.path().is_dir() {
                slugs.push(entry.path());
            }
        }
    }
    // Directory iteration order is filesystem-dependent; the report is
    // not.
    slugs.sort();

    let mut phase_entries = [0u64; PHASES];
    let mut phase_spans = [0u64; PHASES];
    let mut phase_hists: [Histogram; PHASES] = std::array::from_fn(|_| Histogram::new());
    for run_dir in &slugs {
        report.runs += 1;
        let metrics_path = run_dir.join("metrics.json");
        if metrics_path.is_file() {
            let text = std::fs::read_to_string(&metrics_path)
                .map_err(|e| format!("reading {}: {e}", metrics_path.display()))?;
            let doc = JsonValue::parse(&text)
                .map_err(|e| format!("parsing {}: {e}", metrics_path.display()))?;
            report.metrics_runs += 1;
            if let Some(counters) = doc.get("counters").and_then(JsonValue::members) {
                for (name, v) in counters {
                    let v = v.as_u64().ok_or_else(|| {
                        format!("{}: counter {name:?} is not a u64", metrics_path.display())
                    })?;
                    *report.counters.entry(name.to_string()).or_insert(0) += v;
                }
            }
            if let Some(hists) = doc.get("histograms").and_then(JsonValue::members) {
                for (name, h) in hists {
                    let rebuilt = hist_from_json(h, "sum", "min", "max").ok_or_else(|| {
                        format!(
                            "{}: histogram {name:?} is malformed",
                            metrics_path.display()
                        )
                    })?;
                    report
                        .histograms
                        .entry(name.to_string())
                        .or_default()
                        .merge(&rebuilt);
                }
            }
        }
        let profile_path = run_dir.join("profile.json");
        if profile_path.is_file() {
            let text = std::fs::read_to_string(&profile_path)
                .map_err(|e| format!("reading {}: {e}", profile_path.display()))?;
            let doc = JsonValue::parse(&text)
                .map_err(|e| format!("parsing {}: {e}", profile_path.display()))?;
            report.profile_runs += 1;
            for (i, row) in doc
                .get("phases")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("{}: no \"phases\" array", profile_path.display()))?
                .iter()
                .enumerate()
            {
                if i >= PHASES {
                    break;
                }
                let u = |key: &str| row.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
                phase_entries[i] += u("entries");
                phase_spans[i] += u("spans");
                if let Some(h) = hist_from_json(row, "total_ns", "min_ns", "max_ns") {
                    phase_hists[i].merge(&h);
                }
            }
        }
    }
    if report.profile_runs > 0 {
        report.phases = Phase::ALL
            .into_iter()
            .enumerate()
            .map(|(i, phase)| PhaseSummary {
                phase,
                entries: phase_entries[i],
                spans: phase_spans[i],
                hist: phase_hists[i].clone(),
            })
            .collect();
    }
    Ok(report)
}

impl ObsReport {
    /// The human-readable fleet summary.
    pub fn render(&self, dir: &Path) -> String {
        let mut s = format!("== obs report: {} ==\n", dir.display());
        if let Some(m) = &self.meta {
            s.push_str(&format!(
                "invocation: jobs={} distinct_runs={} cache_hits={} failed_runs={} wall {:.2}s\n",
                m.jobs, m.distinct_runs, m.cache_hits, m.failed_runs, m.wall_seconds_total
            ));
            if !m.slowest.is_empty() {
                s.push_str("slowest runs:\n");
                for (label, wall) in m.slowest.iter().take(5) {
                    s.push_str(&format!("  {wall:>8.2}s  {label}\n"));
                }
            }
            for w in &m.warnings {
                s.push_str(&format!("warning: {w}\n"));
            }
        } else {
            s.push_str("invocation: no run-metadata.json (partial artifact tree)\n");
        }
        s.push_str(&format!(
            "runs aggregated: {} ({} with metrics, {} with host profiles)\n",
            self.runs, self.metrics_runs, self.profile_runs
        ));
        if !self.counters.is_empty() {
            s.push_str("counters (summed):\n");
            for (name, v) in &self.counters {
                s.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            s.push_str("sim-time histograms (merged):\n");
            for (name, h) in &self.histograms {
                s.push_str(&format!(
                    "  {name:<40} count={} p50={} p90={} p99={} max={}\n",
                    h.count(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max()
                ));
            }
        }
        if !self.phases.is_empty() {
            s.push_str("host profile (merged, host-time ns):\n");
            for p in &self.phases {
                if p.entries == 0 {
                    continue;
                }
                s.push_str(&format!(
                    "  {:<14} entries={} spans={} total_ms={:.3} p50={} p90={} p99={}\n",
                    p.phase.name(),
                    p.entries,
                    p.spans,
                    p.hist.sum() as f64 / 1e6,
                    p.hist.p50(),
                    p.hist.p90(),
                    p.hist.p99()
                ));
            }
        }
        s
    }

    /// Renders the `ccnuma-obs-report/1` JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("schema");
        w.str(OBS_REPORT_SCHEMA);
        w.key("runs");
        w.raw(&self.runs.to_string());
        w.key("metrics_runs");
        w.raw(&self.metrics_runs.to_string());
        w.key("profile_runs");
        w.raw(&self.profile_runs.to_string());
        if let Some(m) = &self.meta {
            w.key("invocation");
            w.begin_obj();
            w.key("jobs");
            w.raw(&m.jobs.to_string());
            w.key("distinct_runs");
            w.raw(&m.distinct_runs.to_string());
            w.key("cache_hits");
            w.raw(&m.cache_hits.to_string());
            w.key("failed_runs");
            w.raw(&m.failed_runs.to_string());
            w.key("wall_seconds_total");
            w.raw(&format!("{:.6}", m.wall_seconds_total));
            w.key("warnings");
            w.raw(&m.warnings.len().to_string());
            w.end_obj();
        }
        w.key("counters");
        w.begin_obj();
        for (name, v) in &self.counters {
            w.key(name);
            w.raw(&v.to_string());
        }
        w.end_obj();
        w.key("histograms");
        w.begin_obj();
        for (name, h) in &self.histograms {
            w.key(name);
            Self::hist_json(&mut w, h);
        }
        w.end_obj();
        w.key("phases");
        w.begin_arr();
        for p in &self.phases {
            w.begin_obj();
            w.key("phase");
            w.str(p.phase.name());
            w.key("entries");
            w.raw(&p.entries.to_string());
            w.key("spans");
            w.raw(&p.spans.to_string());
            w.key("total_ns");
            w.raw(&p.hist.sum().to_string());
            Self::hist_fields(&mut w, &p.hist, "_ns");
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        let mut s = w.finish();
        s.push('\n');
        s
    }

    fn hist_json(w: &mut JsonWriter, h: &Histogram) {
        w.begin_obj();
        w.key("count");
        w.raw(&h.count().to_string());
        w.key("sum");
        w.raw(&h.sum().to_string());
        Self::hist_fields(w, h, "");
        w.end_obj();
    }

    fn hist_fields(w: &mut JsonWriter, h: &Histogram, suffix: &str) {
        for (k, v) in [
            ("min", h.min()),
            ("max", h.max()),
            ("p50", h.p50()),
            ("p90", h.p90()),
            ("p99", h.p99()),
        ] {
            w.key(&format!("{k}{suffix}"));
            w.raw(&v.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_obs::{Profiler, SpanProfiler};

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ccnuma-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_run(dir: &Path, slug: &str, lat: u64) {
        let run = dir.join("runs").join(slug);
        std::fs::create_dir_all(&run).unwrap();
        let mut m = ccnuma_obs::Metrics::new();
        m.add("pages_migrated", 3);
        m.observe("op_latency_ns", lat);
        m.observe("op_latency_ns", lat * 2);
        std::fs::write(run.join("metrics.json"), m.to_json()).unwrap();
        let mut p = SpanProfiler::new();
        for _ in 0..4 {
            let s = p.enter(Phase::Pager);
            p.exit(Phase::Pager, s);
        }
        std::fs::write(run.join("profile.json"), p.to_json()).unwrap();
    }

    #[test]
    fn aggregates_counters_histograms_and_phases_across_runs() {
        let dir = scratch("obsreport");
        write_run(&dir, "b-run", 100);
        write_run(&dir, "a-run", 4000);
        std::fs::write(
            dir.join("run-metadata.json"),
            r#"{"schema":"ccnuma-run-metadata/3","jobs":4,"distinct_runs":2,"cache_hits":1,
                "failed_runs":0,"resumed_runs":0,"wall_seconds_total":1.5,
                "runs":[{"label":"a [FT]","slug":"a-run","wall_seconds":1.0},
                        {"label":"b [FT]","slug":"b-run","wall_seconds":0.5}],
                "failures":[],"warnings":["w1"]}"#,
        )
        .unwrap();
        let rep = build_report(&dir).unwrap();
        assert_eq!(rep.runs, 2);
        assert_eq!(rep.metrics_runs, 2);
        assert_eq!(rep.profile_runs, 2);
        assert_eq!(rep.counters["pages_migrated"], 6);
        let h = &rep.histograms["op_latency_ns"];
        assert_eq!(h.count(), 4, "two observations per run, merged");
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 8000);
        let pager = rep.phases.iter().find(|p| p.phase == Phase::Pager).unwrap();
        assert_eq!(pager.entries, 8);
        assert_eq!(pager.spans, 8);
        assert_eq!(pager.hist.count(), 8);
        let meta = rep.meta.as_ref().unwrap();
        assert_eq!(meta.jobs, 4);
        assert_eq!(meta.slowest[0].0, "a [FT]");
        let text = rep.render(&dir);
        assert!(text.contains("runs aggregated: 2 (2 with metrics, 2 with host profiles)"));
        assert!(text.contains("pages_migrated"));
        assert!(text.contains("warning: w1"));
        assert!(text.contains("pager"));
        let json = rep.to_json();
        assert!(json.starts_with("{\"schema\":\"ccnuma-obs-report/1\""));
        assert!(json.contains("\"counters\":{\"pages_migrated\":6}"));
        assert!(json.contains("\"phase\":\"pager\""));
        // Round-trips through the parser.
        ccnuma_obs::JsonValue::parse(&json).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_trees_degrade_instead_of_failing() {
        let dir = scratch("obsreport-partial");
        // No metadata, one bare run directory with no artifacts at all.
        std::fs::create_dir_all(dir.join("runs").join("bare-run")).unwrap();
        let rep = build_report(&dir).unwrap();
        assert!(rep.meta.is_none());
        assert_eq!(rep.runs, 1);
        assert_eq!(rep.metrics_runs, 0);
        assert_eq!(rep.profile_runs, 0);
        assert!(rep.phases.is_empty());
        assert!(rep.render(&dir).contains("no run-metadata.json"));
        // An empty directory is a valid (empty) fleet.
        let empty = scratch("obsreport-empty");
        let rep = build_report(&empty).unwrap();
        assert_eq!(rep.runs, 0);
        // Malformed JSON is a hard error naming the file.
        std::fs::write(dir.join("runs").join("bare-run").join("metrics.json"), "{").unwrap();
        let err = build_report(&dir).unwrap_err();
        assert!(err.contains("metrics.json"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&empty).unwrap();
    }

    #[test]
    fn fleet_percentiles_come_from_the_merged_distribution() {
        // One run with 95 fast ops, another with 5 slow ops: the fleet
        // p99 must see the slow tail even though the fast run alone
        // would report a fast p99.
        let dir = scratch("obsreport-merge");
        let fast = dir.join("runs").join("fast");
        std::fs::create_dir_all(&fast).unwrap();
        let mut m = ccnuma_obs::Metrics::new();
        for _ in 0..95 {
            m.observe("lat", 10);
        }
        std::fs::write(fast.join("metrics.json"), m.to_json()).unwrap();
        let slow = dir.join("runs").join("slow");
        std::fs::create_dir_all(&slow).unwrap();
        let mut m = ccnuma_obs::Metrics::new();
        for _ in 0..5 {
            m.observe("lat", 1_000_000);
        }
        std::fs::write(slow.join("metrics.json"), m.to_json()).unwrap();
        let rep = build_report(&dir).unwrap();
        let h = &rep.histograms["lat"];
        assert_eq!(h.count(), 100);
        assert!(h.p50() < 100, "bulk stays fast");
        assert!(h.p99() >= 500_000, "tail survives the merge: {}", h.p99());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
