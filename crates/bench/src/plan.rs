//! Run plans and the deduplicating, parallel executor.
//!
//! Experiments describe the simulator runs they need as [`RunSpec`]s.
//! A [`RunPlan`] collects specs in deterministic order, dropping
//! duplicates; an [`Executor`] memoizes reports keyed by
//! [`RunSpec::cache_key`] and computes the distinct specs of a plan on a
//! pool of scoped worker threads. Because a run is a pure function of its
//! spec, sharing one memoized report between experiments — one
//! first-touch baseline per workload and scale, however many tables and
//! figures read it — cannot change any output, and neither can the order
//! in which worker threads finish: renderers pull finished reports out of
//! the cache in plan order.

use ccnuma_machine::{RunReport, RunSpec};
use ccnuma_obs::{artifact_slug, json::JsonWriter, RunRecorder, Verbosity};
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// An ordered, duplicate-free collection of runs to execute.
#[derive(Default)]
pub struct RunPlan {
    specs: Vec<RunSpec>,
    seen: HashSet<String>,
}

impl RunPlan {
    /// An empty plan.
    pub fn new() -> RunPlan {
        RunPlan::default()
    }

    /// Adds `spec` unless an identical spec is already planned.
    pub fn add(&mut self, spec: RunSpec) {
        if self.seen.insert(spec.cache_key()) {
            self.specs.push(spec);
        }
    }

    /// Adds every spec in `specs` (deduplicating).
    pub fn extend(&mut self, specs: impl IntoIterator<Item = RunSpec>) {
        for spec in specs {
            self.add(spec);
        }
    }

    /// The distinct specs, in insertion order.
    pub fn specs(&self) -> &[RunSpec] {
        &self.specs
    }

    /// Number of distinct runs planned.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True if nothing is planned.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// Wall-clock timing of one computed run.
#[derive(Debug, Clone)]
pub struct RunTiming {
    /// Human-readable description of the run.
    pub label: String,
    /// The run's stable artifact slug (see
    /// [`ccnuma_obs::artifact_slug`]) — names its directory under an
    /// `--obs-dir` and keys it in `run-metadata.json`.
    pub slug: String,
    /// Time spent simulating it.
    pub wall: Duration,
}

/// Counters describing what an executor did.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorStats {
    /// Worker threads used for plan execution.
    pub jobs: usize,
    /// Reports served from the memo cache.
    pub hits: u64,
    /// Reports actually computed.
    pub computed: u64,
}

/// A memoizing run executor.
///
/// [`Executor::run`] returns the report for a spec, computing it on the
/// calling thread on a cache miss. [`Executor::execute`] computes every
/// not-yet-cached spec of a plan on up to `jobs` scoped threads, so later
/// `run` calls are cache hits. Equal specs always share one report.
pub struct Executor {
    jobs: usize,
    obs_dir: Option<PathBuf>,
    verbosity: Verbosity,
    cache: Mutex<HashMap<String, Arc<RunReport>>>,
    hits: AtomicU64,
    computed: AtomicU64,
    timings: Mutex<Vec<RunTiming>>,
}

impl Executor {
    /// An executor that runs plans on up to `jobs` threads (minimum 1).
    pub fn new(jobs: usize) -> Executor {
        Executor {
            jobs: jobs.max(1),
            obs_dir: None,
            verbosity: Verbosity::default(),
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            timings: Mutex::new(Vec::new()),
        }
    }

    /// A single-threaded executor (still memoizing).
    pub fn serial() -> Executor {
        Executor::new(1)
    }

    /// Records observability artifacts for every computed run under
    /// `dir/runs/<slug>/` (see [`ccnuma_obs::write_run_artifacts`]).
    /// Artifacts derive purely from sim-time data, so they are
    /// byte-identical for any job count.
    #[must_use]
    pub fn with_obs_dir(mut self, dir: impl Into<PathBuf>) -> Executor {
        self.obs_dir = Some(dir.into());
        self
    }

    /// Sets the stderr verbosity (Verbose adds per-run start/done lines).
    #[must_use]
    pub fn with_verbosity(mut self, v: Verbosity) -> Executor {
        self.verbosity = v;
        self
    }

    /// The configured observability directory, if any.
    pub fn obs_dir(&self) -> Option<&Path> {
        self.obs_dir.as_deref()
    }

    /// Returns the report for `spec`, computing it here if not cached.
    ///
    /// # Panics
    ///
    /// Panics if an `--obs-dir` is configured and writing the run's
    /// artifacts fails.
    pub fn run(&self, spec: &RunSpec) -> Arc<RunReport> {
        let key = spec.cache_key();
        if let Some(report) = self.cache.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(report);
        }
        let label = spec.describe();
        let slug = artifact_slug(&label, &key);
        if self.verbosity.verbose() {
            eprintln!("run   {label}");
        }
        let start = Instant::now();
        let report = if let Some(dir) = &self.obs_dir {
            // Instrumented run: same report (the recorder is a pure
            // side-channel), plus the artifact set on disk.
            let cpus = spec.build_workload().config.procs() as usize;
            let mut rec = RunRecorder::default();
            let report = spec.run_with(&mut rec);
            ccnuma_obs::write_run_artifacts(dir, &slug, &rec, cpus)
                .unwrap_or_else(|e| panic!("writing obs artifacts for {label}: {e}"));
            Arc::new(report)
        } else {
            Arc::new(spec.run())
        };
        let wall = start.elapsed();
        if self.verbosity.verbose() {
            eprintln!("done  {label} ({:.2}s)", wall.as_secs_f64());
        }
        self.computed.fetch_add(1, Ordering::Relaxed);
        self.timings
            .lock()
            .unwrap()
            .push(RunTiming { label, slug, wall });
        // Keep the first report if another thread raced us here; both are
        // equal by determinism, but callers must agree on one Arc.
        Arc::clone(self.cache.lock().unwrap().entry(key).or_insert(report))
    }

    /// Computes every spec of `plan` that is not yet cached, using up to
    /// `jobs` worker threads. Idempotent; call before rendering so the
    /// renderers' `run` calls all hit the cache.
    pub fn execute(&self, plan: &RunPlan) {
        let todo: Vec<&RunSpec> = {
            let cache = self.cache.lock().unwrap();
            plan.specs()
                .iter()
                .filter(|s| !cache.contains_key(&s.cache_key()))
                .collect()
        };
        if todo.is_empty() {
            return;
        }
        let workers = self.jobs.min(todo.len());
        if workers <= 1 {
            for spec in todo {
                self.run(spec);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = todo.get(i) else {
                        break;
                    };
                    self.run(spec);
                });
            }
        });
    }

    /// Hit/compute counters so far.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            jobs: self.jobs,
            hits: self.hits.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
        }
    }

    /// Per-run wall times of every computed run, in completion order.
    pub fn timings(&self) -> Vec<RunTiming> {
        self.timings.lock().unwrap().clone()
    }

    /// The `run-metadata.json` document for everything executed so far:
    /// job count, distinct runs computed, cache hits, total wall time,
    /// and a per-run list of `{label, slug, wall_seconds}`.
    ///
    /// Runs are sorted by slug so the *structure* is deterministic; the
    /// wall-clock fields are measurements and naturally vary between
    /// invocations (which is why this file lives next to, not inside,
    /// the per-run artifact directories the byte-identity guarantee
    /// covers).
    pub fn metadata_json(&self, wall_total: Duration) -> String {
        let stats = self.stats();
        let mut timings = self.timings();
        timings.sort_by(|a, b| a.slug.cmp(&b.slug));
        let mut j = JsonWriter::new();
        j.begin_obj();
        j.key("schema");
        j.str("ccnuma-run-metadata/1");
        j.key("jobs");
        j.raw(&stats.jobs.to_string());
        j.key("distinct_runs");
        j.raw(&stats.computed.to_string());
        j.key("cache_hits");
        j.raw(&stats.hits.to_string());
        j.key("wall_seconds_total");
        j.raw(&format!("{:.6}", wall_total.as_secs_f64()));
        j.key("runs");
        j.begin_arr();
        for t in &timings {
            j.begin_obj();
            j.key("label");
            j.str(&t.label);
            j.key("slug");
            j.str(&t.slug);
            j.key("wall_seconds");
            j.raw(&format!("{:.6}", t.wall.as_secs_f64()));
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        let mut s = j.finish();
        s.push('\n');
        s
    }

    /// Writes [`Executor::metadata_json`] to `<dir>/run-metadata.json`,
    /// creating `dir` if needed. Returns the file's path.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-write errors.
    pub fn write_run_metadata(&self, dir: &Path, wall_total: Duration) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("run-metadata.json");
        std::fs::write(&path, self.metadata_json(wall_total))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_machine::{PolicyChoice, RunOptions};
    use ccnuma_workloads::{Scale, WorkloadKind};

    fn ft(kind: WorkloadKind) -> RunSpec {
        RunSpec::catalog(
            kind,
            Scale::quick(),
            RunOptions::new(PolicyChoice::first_touch()),
        )
    }

    #[test]
    fn plan_deduplicates_preserving_order() {
        let mut plan = RunPlan::new();
        plan.add(ft(WorkloadKind::Raytrace));
        plan.add(ft(WorkloadKind::Database));
        plan.add(ft(WorkloadKind::Raytrace));
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan.specs()[0].cache_key(),
            ft(WorkloadKind::Raytrace).cache_key()
        );
        assert_eq!(
            plan.specs()[1].cache_key(),
            ft(WorkloadKind::Database).cache_key()
        );
    }

    #[test]
    fn run_memoizes() {
        let exec = Executor::serial();
        let a = exec.run(&ft(WorkloadKind::Raytrace));
        let b = exec.run(&ft(WorkloadKind::Raytrace));
        assert!(Arc::ptr_eq(&a, &b), "second run must be the cached report");
        let stats = exec.stats();
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(exec.timings().len(), 1);
    }

    #[test]
    fn execute_then_run_hits_for_every_planned_spec() {
        let mut plan = RunPlan::new();
        for kind in [WorkloadKind::Raytrace, WorkloadKind::Database] {
            plan.add(ft(kind));
        }
        let exec = Executor::new(2);
        exec.execute(&plan);
        assert_eq!(exec.stats().computed, 2);
        for spec in plan.specs() {
            exec.run(spec);
        }
        assert_eq!(exec.stats().computed, 2, "no recomputation after execute");
        assert_eq!(exec.stats().hits, 2);
        // Executing the same plan again is a no-op.
        exec.execute(&plan);
        assert_eq!(exec.stats().computed, 2);
    }

    #[test]
    fn parallel_and_serial_executors_agree() {
        let spec = ft(WorkloadKind::Database);
        let mut plan = RunPlan::new();
        plan.add(spec.clone());
        let serial = Executor::serial();
        serial.execute(&plan);
        let parallel = Executor::new(4);
        parallel.execute(&plan);
        let a = serial.run(&spec);
        let b = parallel.run(&spec);
        assert_eq!(format!("{:?}", a.breakdown), format!("{:?}", b.breakdown));
        assert_eq!(a.sim_time, b.sim_time);
    }
}
