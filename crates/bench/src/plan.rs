//! Run plans and the deduplicating, parallel, fault-tolerant executor.
//!
//! Experiments describe the simulator runs they need as [`RunSpec`]s.
//! A [`RunPlan`] collects specs in deterministic order, dropping
//! duplicates; an [`Executor`] memoizes reports keyed by
//! [`RunSpec::cache_key`] and computes the distinct specs of a plan on a
//! pool of scoped worker threads. Because a run is a pure function of its
//! spec, sharing one memoized report between experiments — one
//! first-touch baseline per workload and scale, however many tables and
//! figures read it — cannot change any output, and neither can the order
//! in which worker threads finish: renderers pull finished reports out of
//! the cache in plan order.
//!
//! The executor is built to survive failing runs. A run that returns a
//! typed `SimError` or panics outright (both reachable under fault
//! injection) becomes a memoized [`RunFailure`] instead of tearing the
//! worker pool down: the rest of the plan still executes, the failure is
//! listed in `run-metadata.json`, and [`Executor::failure_for`] lets the
//! `repro` binary skip just the experiments that depend on the failed
//! run. Mutex poisoning from a panicking worker is likewise recovered —
//! the executor's locks guard simple collections that are never left in
//! a torn state, so a poisoned guard's data is still valid.

use crate::checkpoint::RunJournal;
use ccnuma_faults::{atomic_write, FaultSpec, FaultStats};
use ccnuma_machine::{RunReport, RunSpec};
use ccnuma_obs::{
    artifact_slug, json::JsonWriter, NullRecorder, RunRecorder, SpanProfiler, Verbosity,
};
use ccnuma_trace::Trace;
use ccnuma_tracestore::{TraceMeta, TraceStore};
use ccnuma_types::{Ns, ShardPlan, TopologyPreset};
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Locks `m`, recovering the data from a poisoned mutex. Every mutex in
/// the executor guards an append-only collection that is never left
/// half-updated, so data behind a poisoned lock is still consistent —
/// a worker that panicked mid-run must not wedge the whole plan.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Renders a panic payload as a message for a [`RunFailure`].
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}

/// An ordered, duplicate-free collection of runs to execute.
#[derive(Default)]
pub struct RunPlan {
    specs: Vec<RunSpec>,
    seen: HashSet<String>,
}

impl RunPlan {
    /// An empty plan.
    pub fn new() -> RunPlan {
        RunPlan::default()
    }

    /// Adds `spec` unless an identical spec is already planned.
    pub fn add(&mut self, spec: RunSpec) {
        if self.seen.insert(spec.cache_key()) {
            self.specs.push(spec);
        }
    }

    /// Adds every spec in `specs` (deduplicating).
    pub fn extend(&mut self, specs: impl IntoIterator<Item = RunSpec>) {
        for spec in specs {
            self.add(spec);
        }
    }

    /// The distinct specs, in insertion order.
    pub fn specs(&self) -> &[RunSpec] {
        &self.specs
    }

    /// Number of distinct runs planned.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True if nothing is planned.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// Wall-clock timing of one computed run.
#[derive(Debug, Clone)]
pub struct RunTiming {
    /// Human-readable description of the run.
    pub label: String,
    /// The run's stable artifact slug (see
    /// [`ccnuma_obs::artifact_slug`]) — names its directory under an
    /// `--obs-dir` and keys it in `run-metadata.json`.
    pub slug: String,
    /// Time spent simulating it.
    pub wall: Duration,
}

/// One run that did not produce a report: the simulator returned a typed
/// `SimError` or panicked. Memoized like a report (retrying a
/// deterministic failure would fail identically) and listed under
/// `"failures"` in `run-metadata.json`.
#[derive(Debug, Clone)]
pub struct RunFailure {
    /// Human-readable description of the failed run.
    pub label: String,
    /// The run's stable artifact slug.
    pub slug: String,
    /// What went wrong (the `SimError` rendering or the panic message).
    pub error: String,
}

/// Counters describing what an executor did.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorStats {
    /// Worker threads used for plan execution.
    pub jobs: usize,
    /// Reports served from the memo cache.
    pub hits: u64,
    /// Reports actually computed.
    pub computed: u64,
    /// Runs attempted that ended in a [`RunFailure`].
    pub failed: u64,
    /// Traces served from the on-disk trace store instead of a machine
    /// run (always 0 without [`Executor::with_trace_store`]).
    pub store_hits: u64,
    /// Reports restored from a checkpoint journal instead of computed
    /// (always 0 without [`Executor::with_checkpoint`]).
    pub resumed: u64,
}

/// A trace-bearing run fetched through [`Executor::traced`]: either a
/// fresh machine run carrying its captured trace, or — when the
/// executor has a trace store and the store already holds this spec's
/// capture — the stored trace plus its sidecar, with no machine run at
/// all. Either way the handle exposes exactly what the Section 8
/// policy-simulator experiments need: the records, the machine's node
/// count, and the run's constant non-miss time.
#[derive(Debug)]
pub struct TracedRun {
    source: TracedSource,
    nodes: u16,
    other_time: Ns,
}

#[derive(Debug)]
enum TracedSource {
    Fresh(Arc<RunReport>),
    Stored(Trace),
}

impl TracedRun {
    /// The captured miss trace.
    pub fn trace(&self) -> &Trace {
        match &self.source {
            TracedSource::Fresh(report) => report.trace.as_ref().expect("traced run"),
            TracedSource::Stored(trace) => trace,
        }
    }

    /// NUMA nodes of the machine that produced the trace.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// The run's constant "all other time" component.
    pub fn other_time(&self) -> Ns {
        self.other_time
    }

    /// True when the trace came from the store (no machine run).
    pub fn from_store(&self) -> bool {
        matches!(self.source, TracedSource::Stored(_))
    }

    /// The full machine report, when one was computed.
    pub fn report(&self) -> Option<&Arc<RunReport>> {
        match &self.source {
            TracedSource::Fresh(report) => Some(report),
            TracedSource::Stored(_) => None,
        }
    }
}

/// A memoizing run executor.
///
/// [`Executor::run`] returns the report for a spec, computing it on the
/// calling thread on a cache miss. [`Executor::execute`] computes every
/// not-yet-cached spec of a plan on up to `jobs` scoped threads, so later
/// `run` calls are cache hits. Equal specs always share one report.
///
/// Failing runs degrade gracefully: [`Executor::try_run`] returns a
/// [`RunFailure`] instead of panicking, [`Executor::execute`] records
/// failures and keeps going, and [`Executor::metadata_json`] reports
/// them. [`Executor::with_faults`] stresses a whole plan by applying a
/// default fault scenario to every spec that does not carry its own.
pub struct Executor {
    jobs: usize,
    obs_dir: Option<PathBuf>,
    verbosity: Verbosity,
    default_faults: Option<FaultSpec>,
    default_topology: Option<TopologyPreset>,
    shards: ShardPlan,
    window_us: Option<u64>,
    trace_store: Option<TraceStore>,
    profiling: bool,
    checkpoint: Option<RunJournal>,
    soft_deadline: Option<Duration>,
    hard_deadline: Option<Duration>,
    profile: Mutex<SpanProfiler>,
    cache: Mutex<HashMap<String, Result<Arc<RunReport>, RunFailure>>>,
    hits: AtomicU64,
    computed: AtomicU64,
    store_hits: AtomicU64,
    resumed: AtomicU64,
    timings: Mutex<Vec<RunTiming>>,
    failures: Mutex<Vec<RunFailure>>,
    warnings: Mutex<Vec<String>>,
}

impl Executor {
    /// An executor that runs plans on up to `jobs` threads (minimum 1).
    pub fn new(jobs: usize) -> Executor {
        Executor {
            jobs: jobs.max(1),
            obs_dir: None,
            verbosity: Verbosity::default(),
            default_faults: None,
            default_topology: None,
            shards: ShardPlan::default(),
            window_us: None,
            trace_store: None,
            profiling: false,
            checkpoint: None,
            soft_deadline: None,
            hard_deadline: None,
            profile: Mutex::new(SpanProfiler::new()),
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            timings: Mutex::new(Vec::new()),
            failures: Mutex::new(Vec::new()),
            warnings: Mutex::new(Vec::new()),
        }
    }

    /// A single-threaded executor (still memoizing).
    pub fn serial() -> Executor {
        Executor::new(1)
    }

    /// Records observability artifacts for every computed run under
    /// `dir/runs/<slug>/` (see [`ccnuma_obs::write_run_artifacts`]).
    /// Artifacts derive purely from sim-time data, so they are
    /// byte-identical for any job count.
    #[must_use]
    pub fn with_obs_dir(mut self, dir: impl Into<PathBuf>) -> Executor {
        self.obs_dir = Some(dir.into());
        self
    }

    /// Sets the stderr verbosity (Verbose adds per-run start/done lines).
    #[must_use]
    pub fn with_verbosity(mut self, v: Verbosity) -> Executor {
        self.verbosity = v;
        self
    }

    /// Injects `faults` into every run whose spec does not already name
    /// a fault scenario of its own. The fault spec joins the cache key,
    /// so a stressed plan never shares reports with a clean one.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSpec) -> Executor {
        self.default_faults = Some(faults);
        self
    }

    /// Runs every spec that does not name its own topology preset on
    /// `preset`'s machine. The preset joins each spec before cache
    /// keying, so two executors with different presets in one process
    /// never share reports. A `Flat` preset is recorded as no override
    /// (see [`RunSpec::with_topology`]), keeping cache keys and goldens
    /// stable.
    #[must_use]
    pub fn with_topology(mut self, preset: TopologyPreset) -> Executor {
        self.default_topology = Some(preset);
        self
    }

    /// Shards every run of this executor across `plan`'s worker threads
    /// (specs already carrying a non-default plan keep their own). The
    /// shard plan is host-side parallelism only: it never joins cache
    /// keys, and reports are byte-identical at every shard count.
    #[must_use]
    pub fn with_shards(mut self, plan: ShardPlan) -> Executor {
        self.shards = plan;
        self
    }

    /// Sets the shard epoch window (`--window-us`) for every run whose
    /// spec has not set its own. Like the shard plan it is an execution
    /// knob excluded from cache keys, so tuning it never invalidates
    /// cached runs — but unlike shards it *can* perturb results
    /// (contention feedback is one window late), so comparative
    /// experiments should hold it fixed.
    #[must_use]
    pub fn with_window_us(mut self, us: Option<u64>) -> Executor {
        self.window_us = us;
        self
    }

    /// Attaches a host-time span profiler to every computed run. The
    /// run report is unchanged (the profiler only watches the host's
    /// wall clock), so profiled and unprofiled invocations render
    /// byte-identical stdout. Each run's profile merges into one
    /// invocation-level aggregate (see
    /// [`Executor::write_invocation_profile`]); under an obs dir the
    /// run additionally writes its own `profile.json` and
    /// `host-trace.json` (see [`ccnuma_obs::write_profile_artifacts`]).
    #[must_use]
    pub fn with_profiling(mut self) -> Executor {
        self.profiling = true;
        self
    }

    /// Serves and captures traces through `store`: a
    /// [`Executor::traced`] call whose capture is already stored skips
    /// the machine run entirely, and a fresh capture is saved for next
    /// time. The store is keyed by the same slug as obs artifacts, so a
    /// spec change (scale, seed, faults) never serves a stale trace.
    #[must_use]
    pub fn with_trace_store(mut self, store: TraceStore) -> Executor {
        self.trace_store = Some(store);
        self
    }

    /// Resumes from (and journals into) the `ccnuma-checkpoint/1`
    /// directory `dir`. Every run already journaled there is preloaded
    /// into the memo cache — bit-exact, so renderers re-render identical
    /// stdout with zero recomputation — and every run computed from here
    /// on is appended durably (fsync before the result is served).
    ///
    /// Resume never prints to stdout; restored-run counts surface only
    /// through [`Executor::stats`] and `run-metadata.json`, keeping
    /// golden stdout byte-identical with or without `--resume`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created/read or carries a
    /// different schema. A torn journal tail (a crash mid-append) is
    /// not an error: the torn record is skipped and recomputed.
    pub fn with_checkpoint(mut self, dir: impl Into<PathBuf>) -> io::Result<Executor> {
        let journal = RunJournal::open(dir)?;
        let state = journal.load()?;
        if state.skipped > 0 {
            self.warn(format!(
                "checkpoint: {} unrestorable journal record(s) will be recomputed",
                state.skipped
            ));
        }
        {
            let mut cache = lock(&self.cache);
            for run in state.runs {
                if cache
                    .insert(run.cache_key, Ok(Arc::new(run.report)))
                    .is_none()
                {
                    self.resumed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.checkpoint = Some(journal);
        Ok(self)
    }

    /// Arms the per-run watchdog: a run slower than `soft` is recorded
    /// as a warning in `run-metadata.json`; one slower than `hard` has
    /// its report discarded and replaced by a [`RunFailure`], and the
    /// rest of the plan continues. Either bound may be `None`.
    #[must_use]
    pub fn with_deadlines(mut self, soft: Option<Duration>, hard: Option<Duration>) -> Executor {
        self.soft_deadline = soft;
        self.hard_deadline = hard;
        self
    }

    /// The configured observability directory, if any.
    pub fn obs_dir(&self) -> Option<&Path> {
        self.obs_dir.as_deref()
    }

    /// The configured trace store, if any.
    pub fn trace_store(&self) -> Option<&TraceStore> {
        self.trace_store.as_ref()
    }

    /// The trace-store slug for `spec` (after fault defaulting) — the
    /// same label + identity-fingerprint scheme obs artifacts use.
    pub fn trace_slug(&self, spec: &RunSpec) -> String {
        let spec = self.effective_spec(spec);
        TraceStore::slug(&spec.describe(), &spec.cache_key())
    }

    /// True when [`Executor::traced`] would serve `spec` from the store
    /// without running the machine.
    fn store_serves(&self, effective: &RunSpec) -> bool {
        effective.opts.capture_trace
            && self.trace_store.as_ref().is_some_and(|store| {
                store.contains(&TraceStore::slug(
                    &effective.describe(),
                    &effective.cache_key(),
                ))
            })
    }

    /// The spec as this executor will actually run it: the default fault
    /// scenario and topology preset applied unless the spec carries its
    /// own, and the executor's shard plan installed on specs that kept
    /// the default (serial) plan.
    fn effective_spec(&self, spec: &RunSpec) -> RunSpec {
        let mut spec = spec.clone();
        if let Some(f) = self.default_faults {
            if spec.opts.faults.is_none() {
                spec = spec.with_faults(f);
            }
        }
        if let Some(preset) = self.default_topology {
            if spec.topology.is_none() {
                spec = spec.with_topology(preset);
            }
        }
        if spec.opts.shards == ShardPlan::default() {
            spec.opts.shards = self.shards;
        }
        if spec.opts.window_us.is_none() {
            spec.opts.window_us = self.window_us;
        }
        spec
    }

    /// Records a non-fatal problem (shown on stderr, listed under
    /// `"warnings"` in `run-metadata.json`).
    fn warn(&self, msg: String) {
        if self.verbosity.normal() {
            eprintln!("warn  {msg}");
        }
        lock(&self.warnings).push(msg);
    }

    /// Returns the report for `spec`, computing it here if not cached.
    ///
    /// # Panics
    ///
    /// Panics if the run fails (see [`Executor::try_run`] for the
    /// non-panicking form). Renderers call this only for specs the
    /// `repro` driver has already checked with [`Executor::failure_for`].
    pub fn run(&self, spec: &RunSpec) -> Arc<RunReport> {
        self.try_run(spec)
            .unwrap_or_else(|f| panic!("run {} failed: {}", f.label, f.error))
    }

    /// Returns the report for `spec`, or the memoized [`RunFailure`] if
    /// the run errored or panicked. Computes on the calling thread on a
    /// cache miss; a failure is cached exactly like a report, so a
    /// deterministic failure is attempted once per executor.
    pub fn try_run(&self, spec: &RunSpec) -> Result<Arc<RunReport>, RunFailure> {
        let spec = self.effective_spec(spec);
        let key = spec.cache_key();
        if let Some(outcome) = lock(&self.cache).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return outcome.clone();
        }
        let label = spec.describe();
        let slug = artifact_slug(&label, &key);
        if self.verbosity.verbose() {
            eprintln!("run   {label}");
        }
        let start = Instant::now();
        // The catch_unwind fence is what lets one poisoned run fail
        // alone: a panic inside the simulator (or the recorder) becomes
        // a RunFailure here instead of unwinding through the worker pool.
        let computed = catch_unwind(AssertUnwindSafe(|| {
            // Profiling rides any of the paths below without changing
            // the report: the profiler only watches the host's wall
            // clock, so profiled stdout stays byte-identical. Each
            // worker profiles into a local SpanProfiler (no lock on the
            // hot path) merged into the invocation aggregate at the end.
            let mut prof = self.profiling.then(SpanProfiler::new);
            let result = if let Some(dir) = &self.obs_dir {
                // Instrumented run: same report (the recorder is a pure
                // side-channel), plus the artifact set on disk. A failed
                // artifact write degrades to a warning — the report is
                // already computed and still worth serving.
                let cpus = spec.build_workload().config.procs() as usize;
                let mut rec = RunRecorder::default();
                let report = match &mut prof {
                    Some(p) => spec.try_run_profiled(&mut rec, p)?,
                    None => spec.try_run_with(&mut rec)?,
                };
                if let Err(e) = ccnuma_obs::write_run_artifacts(dir, &slug, &rec, cpus) {
                    self.warn(format!("writing obs artifacts for {label}: {e}"));
                }
                if let Some(p) = &prof {
                    if let Err(e) = ccnuma_obs::write_profile_artifacts(dir, &slug, p) {
                        self.warn(format!("writing profile artifacts for {label}: {e}"));
                    }
                }
                Ok(report)
            } else {
                match &mut prof {
                    Some(p) => spec.try_run_profiled(&mut NullRecorder, p),
                    None => spec.try_run(),
                }
            };
            if let Some(p) = &prof {
                lock(&self.profile).merge(p);
            }
            result
        }));
        let mut outcome = match computed {
            Ok(Ok(report)) => Ok(Arc::new(report)),
            Ok(Err(e)) => Err(RunFailure {
                label: label.clone(),
                slug: slug.clone(),
                error: e.to_string(),
            }),
            Err(payload) => Err(RunFailure {
                label: label.clone(),
                slug: slug.clone(),
                error: panic_message(payload),
            }),
        };
        let wall = start.elapsed();
        // Per-run watchdog. Threads cannot be killed safely, so both
        // bounds are checked when the run hands its result back: a
        // soft overrun is a warning, a hard overrun discards the (by
        // definition suspect) result and degrades to a RunFailure so
        // the rest of the plan keeps going.
        if let (Some(hard), Ok(_)) = (self.hard_deadline, &outcome) {
            if wall > hard {
                outcome = Err(RunFailure {
                    label: label.clone(),
                    slug: slug.clone(),
                    error: format!(
                        "watchdog: run exceeded hard deadline ({:.2}s > {:.2}s)",
                        wall.as_secs_f64(),
                        hard.as_secs_f64()
                    ),
                });
            }
        }
        if let Some(soft) = self.soft_deadline {
            if wall > soft && outcome.is_ok() {
                self.warn(format!(
                    "watchdog: {label} exceeded soft deadline ({:.2}s > {:.2}s)",
                    wall.as_secs_f64(),
                    soft.as_secs_f64()
                ));
            }
        }
        if let (Some(journal), Ok(report)) = (&self.checkpoint, &outcome) {
            // Journal before serving the result: once a caller sees
            // this report, a crash-and-resume must not recompute it.
            if let Err(e) = journal.record(&slug, &key, report.as_ref()) {
                self.warn(format!("checkpoint: journaling {label}: {e}"));
            }
        }
        match &outcome {
            Ok(_) => {
                if self.verbosity.verbose() {
                    eprintln!("done  {label} ({:.2}s)", wall.as_secs_f64());
                }
                self.computed.fetch_add(1, Ordering::Relaxed);
                lock(&self.timings).push(RunTiming { label, slug, wall });
            }
            Err(f) => {
                if self.verbosity.normal() {
                    eprintln!("fail  {label}: {}", f.error);
                }
                lock(&self.failures).push(f.clone());
            }
        }
        // Keep the first outcome if another thread raced us here; both
        // are equal by determinism, but callers must agree on one Arc.
        lock(&self.cache).entry(key).or_insert(outcome).clone()
    }

    /// Returns the trace-bearing run for `spec` — from the trace store
    /// when possible (capture-once), from a machine run otherwise. A
    /// fresh capture is saved to the store for future invocations.
    ///
    /// # Panics
    ///
    /// Panics if the machine run fails (see [`Executor::try_traced`]).
    pub fn traced(&self, spec: &RunSpec) -> TracedRun {
        self.try_traced(spec)
            .unwrap_or_else(|f| panic!("run {} failed: {}", f.label, f.error))
    }

    /// Non-panicking form of [`Executor::traced`].
    ///
    /// An unreadable store entry degrades to a warning plus a fresh
    /// capture; only a failing machine run is an error.
    pub fn try_traced(&self, spec: &RunSpec) -> Result<TracedRun, RunFailure> {
        let spec = self.effective_spec(spec);
        let slug = TraceStore::slug(&spec.describe(), &spec.cache_key());
        if let Some(store) = &self.trace_store {
            if store.contains(&slug) {
                match store.load(&slug) {
                    Ok((trace, meta)) => {
                        self.store_hits.fetch_add(1, Ordering::Relaxed);
                        if self.verbosity.verbose() {
                            eprintln!("trace {} served from store", meta.label);
                        }
                        return Ok(TracedRun {
                            nodes: meta.nodes,
                            other_time: Ns(meta.other_time_ns),
                            source: TracedSource::Stored(trace),
                        });
                    }
                    Err(e) => {
                        self.warn(format!("stored trace {slug} unreadable ({e}); recapturing"))
                    }
                }
            }
        }
        let report = self.try_run(&spec)?;
        let nodes = spec.build_workload().config.nodes;
        let other_time = crate::helpers::other_time_of(&report);
        if let (Some(store), Some(trace)) = (&self.trace_store, report.trace.as_ref()) {
            if !store.contains(&slug) {
                let meta = TraceMeta {
                    label: spec.describe(),
                    records: trace.len() as u64,
                    nodes,
                    other_time_ns: other_time.0,
                };
                if let Err(e) = store.save(&slug, trace, &meta) {
                    self.warn(format!("saving trace {slug}: {e}"));
                }
            }
        }
        Ok(TracedRun {
            nodes,
            other_time,
            source: TracedSource::Fresh(report),
        })
    }

    /// Computes every spec of `plan` that is not yet cached, using up to
    /// `jobs` worker threads. Idempotent; call before rendering so the
    /// renderers' `run` calls all hit the cache. Failing runs are
    /// recorded (see [`Executor::failures`]) and do not stop the rest of
    /// the plan.
    pub fn execute(&self, plan: &RunPlan) {
        let todo: Vec<&RunSpec> = {
            let cache = lock(&self.cache);
            plan.specs()
                .iter()
                .filter(|s| {
                    let eff = self.effective_spec(s);
                    // A traced spec whose capture is already stored is
                    // served by `traced` without a machine run; planning
                    // it here would defeat capture-once.
                    !cache.contains_key(&eff.cache_key()) && !self.store_serves(&eff)
                })
                .collect()
        };
        if todo.is_empty() {
            return;
        }
        let workers = self.jobs.min(todo.len());
        if workers <= 1 {
            for spec in todo {
                let _ = self.try_run(spec);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = todo.get(i) else {
                        break;
                    };
                    let _ = self.try_run(spec);
                });
            }
        });
    }

    /// Hit/compute/failure counters so far.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            jobs: self.jobs,
            hits: self.hits.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
            failed: lock(&self.failures).len() as u64,
            store_hits: self.store_hits.load(Ordering::Relaxed),
            resumed: self.resumed.load(Ordering::Relaxed),
        }
    }

    /// Per-run wall times of every computed run, in completion order.
    pub fn timings(&self) -> Vec<RunTiming> {
        lock(&self.timings).clone()
    }

    /// Every recorded run failure, sorted by slug (deterministic across
    /// thread schedules).
    pub fn failures(&self) -> Vec<RunFailure> {
        let mut fs = lock(&self.failures).clone();
        fs.sort_by(|a, b| a.slug.cmp(&b.slug));
        fs.dedup_by(|a, b| a.slug == b.slug);
        fs
    }

    /// True if any attempted run failed.
    pub fn has_failures(&self) -> bool {
        !lock(&self.failures).is_empty()
    }

    /// Recorded warnings (non-fatal problems like failed artifact
    /// writes), sorted for determinism.
    pub fn warnings(&self) -> Vec<String> {
        let mut ws = lock(&self.warnings).clone();
        ws.sort();
        ws
    }

    /// The memoized failure for `spec` (after fault defaulting), if its
    /// run failed. Lets the `repro` driver skip rendering exactly the
    /// experiments that depend on a failed run.
    pub fn failure_for(&self, spec: &RunSpec) -> Option<RunFailure> {
        let key = self.effective_spec(spec).cache_key();
        match lock(&self.cache).get(&key) {
            Some(Err(f)) => Some(f.clone()),
            _ => None,
        }
    }

    /// Field-wise sum of the fault/degradation statistics of every
    /// successfully computed run — the executor-level chaos summary.
    /// All-zero when fault injection is off.
    pub fn fault_totals(&self) -> FaultStats {
        lock(&self.cache)
            .values()
            .filter_map(|o| o.as_ref().ok())
            .fold(FaultStats::default(), |acc, r| acc.merged(&r.fault_stats))
    }

    /// The `run-metadata.json` document for everything executed so far:
    /// job count, distinct runs computed, cache hits, failure count,
    /// total wall time, a per-run list of `{label, slug, wall_seconds}`,
    /// and the recorded failures and warnings.
    ///
    /// Runs, failures and warnings are sorted so the *structure* is
    /// deterministic; the wall-clock fields are measurements and
    /// naturally vary between invocations (which is why this file lives
    /// next to, not inside, the per-run artifact directories the
    /// byte-identity guarantee covers).
    pub fn metadata_json(&self, wall_total: Duration) -> String {
        let stats = self.stats();
        let mut timings = self.timings();
        timings.sort_by(|a, b| a.slug.cmp(&b.slug));
        let failures = self.failures();
        let warnings = self.warnings();
        let mut j = JsonWriter::new();
        j.begin_obj();
        j.key("schema");
        j.str("ccnuma-run-metadata/3");
        j.key("jobs");
        j.raw(&stats.jobs.to_string());
        j.key("distinct_runs");
        j.raw(&stats.computed.to_string());
        j.key("cache_hits");
        j.raw(&stats.hits.to_string());
        j.key("failed_runs");
        j.raw(&stats.failed.to_string());
        j.key("resumed_runs");
        j.raw(&stats.resumed.to_string());
        j.key("wall_seconds_total");
        j.raw(&format!("{:.6}", wall_total.as_secs_f64()));
        j.key("runs");
        j.begin_arr();
        for t in &timings {
            j.begin_obj();
            j.key("label");
            j.str(&t.label);
            j.key("slug");
            j.str(&t.slug);
            j.key("wall_seconds");
            j.raw(&format!("{:.6}", t.wall.as_secs_f64()));
            j.end_obj();
        }
        j.end_arr();
        j.key("failures");
        j.begin_arr();
        for f in &failures {
            j.begin_obj();
            j.key("label");
            j.str(&f.label);
            j.key("slug");
            j.str(&f.slug);
            j.key("error");
            j.str(&f.error);
            j.end_obj();
        }
        j.end_arr();
        j.key("warnings");
        j.begin_arr();
        for w in &warnings {
            j.str(w);
        }
        j.end_arr();
        j.end_obj();
        let mut s = j.finish();
        s.push('\n');
        s
    }

    /// The invocation-level host profile: every computed run's
    /// per-phase aggregates merged commutatively, so the totals never
    /// depend on worker scheduling. `None` unless
    /// [`Executor::with_profiling`] was set.
    pub fn invocation_profile(&self) -> Option<SpanProfiler> {
        self.profiling.then(|| lock(&self.profile).clone())
    }

    /// Writes the merged invocation profile to `<dir>/profile.json`
    /// (the same `ccnuma-profile/1` document the per-run artifacts
    /// use), creating `dir` if needed. Returns the file's path; no-op
    /// `None` when profiling is off.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-write errors.
    pub fn write_invocation_profile(&self, dir: &Path) -> io::Result<Option<PathBuf>> {
        let Some(prof) = self.invocation_profile() else {
            return Ok(None);
        };
        std::fs::create_dir_all(dir)?;
        let path = dir.join("profile.json");
        atomic_write(&path, prof.to_json().as_bytes())?;
        Ok(Some(path))
    }

    /// Writes [`Executor::metadata_json`] to `<dir>/run-metadata.json`,
    /// creating `dir` if needed. Returns the file's path.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-write errors.
    pub fn write_run_metadata(&self, dir: &Path, wall_total: Duration) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("run-metadata.json");
        atomic_write(&path, self.metadata_json(wall_total).as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_faults::FaultScenario;
    use ccnuma_machine::{PolicyChoice, RunOptions};
    use ccnuma_workloads::{Scale, WorkloadKind};

    fn ft(kind: WorkloadKind) -> RunSpec {
        RunSpec::catalog(
            kind,
            Scale::quick(),
            RunOptions::new(PolicyChoice::first_touch()),
        )
    }

    #[test]
    fn plan_deduplicates_preserving_order() {
        let mut plan = RunPlan::new();
        plan.add(ft(WorkloadKind::Raytrace));
        plan.add(ft(WorkloadKind::Database));
        plan.add(ft(WorkloadKind::Raytrace));
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan.specs()[0].cache_key(),
            ft(WorkloadKind::Raytrace).cache_key()
        );
        assert_eq!(
            plan.specs()[1].cache_key(),
            ft(WorkloadKind::Database).cache_key()
        );
    }

    #[test]
    fn two_executors_with_different_topologies_coexist_in_one_process() {
        // Regression: the --topology override used to be a process-wide
        // write-once OnceLock, so a second executor could never simulate
        // a different machine. It is now per-executor state.
        let spec = ft(WorkloadKind::Raytrace);
        let flat = Executor::serial();
        let hier = Executor::serial().with_topology(TopologyPreset::FourSocketHierarchical);
        let a = flat.run(&spec);
        let b = hier.run(&spec);
        assert_ne!(
            format!("{:?}", a.breakdown),
            format!("{:?}", b.breakdown),
            "hierarchical latencies must produce a different run"
        );
        // An explicit Flat preset is the identity: same effective spec,
        // same cache key, same report as no preset at all.
        let explicit_flat = Executor::serial().with_topology(TopologyPreset::Flat);
        let c = explicit_flat.run(&spec);
        assert_eq!(format!("{:?}", a.breakdown), format!("{:?}", c.breakdown));
        // A spec carrying its own preset wins over the executor default.
        let own = spec
            .clone()
            .with_topology(TopologyPreset::FourSocketHierarchical);
        let d = flat.run(&own);
        assert_eq!(format!("{:?}", b.breakdown), format!("{:?}", d.breakdown));
    }

    #[test]
    fn executor_shard_plan_changes_no_report_and_no_cache_key() {
        let spec = ft(WorkloadKind::Raytrace);
        let serial = Executor::serial();
        let sharded = Executor::serial().with_shards(ShardPlan::new(4));
        let a = serial.run(&spec);
        let b = sharded.run(&spec);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "shards are host-side only; reports must be byte-identical"
        );
        // The shard plan never joins cache keys: a sharded executor
        // still memoizes under the same key the serial one used.
        assert_eq!(
            serial.trace_slug(&spec),
            sharded.trace_slug(&spec),
            "slug (and hence cache key) is shard-invariant"
        );
    }

    #[test]
    fn run_memoizes() {
        let exec = Executor::serial();
        let a = exec.run(&ft(WorkloadKind::Raytrace));
        let b = exec.run(&ft(WorkloadKind::Raytrace));
        assert!(Arc::ptr_eq(&a, &b), "second run must be the cached report");
        let stats = exec.stats();
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.failed, 0);
        assert_eq!(exec.timings().len(), 1);
    }

    #[test]
    fn execute_then_run_hits_for_every_planned_spec() {
        let mut plan = RunPlan::new();
        for kind in [WorkloadKind::Raytrace, WorkloadKind::Database] {
            plan.add(ft(kind));
        }
        let exec = Executor::new(2);
        exec.execute(&plan);
        assert_eq!(exec.stats().computed, 2);
        for spec in plan.specs() {
            exec.run(spec);
        }
        assert_eq!(exec.stats().computed, 2, "no recomputation after execute");
        assert_eq!(exec.stats().hits, 2);
        // Executing the same plan again is a no-op.
        exec.execute(&plan);
        assert_eq!(exec.stats().computed, 2);
    }

    #[test]
    fn parallel_and_serial_executors_agree() {
        let spec = ft(WorkloadKind::Database);
        let mut plan = RunPlan::new();
        plan.add(spec.clone());
        let serial = Executor::serial();
        serial.execute(&plan);
        let parallel = Executor::new(4);
        parallel.execute(&plan);
        let a = serial.run(&spec);
        let b = parallel.run(&spec);
        assert_eq!(format!("{:?}", a.breakdown), format!("{:?}", b.breakdown));
        assert_eq!(a.sim_time, b.sim_time);
    }

    #[test]
    fn default_faults_apply_and_split_the_cache() {
        let spec = ft(WorkloadKind::Raytrace);
        let clean = Executor::serial();
        let chaotic = Executor::serial().with_faults(FaultSpec::new(FaultScenario::PressureStorm));
        let a = clean.run(&spec);
        let b = chaotic.run(&spec);
        assert!(a.fault_stats.is_zero(), "clean run must inject nothing");
        assert!(
            b.fault_stats.injected_total() > 0,
            "defaulted fault spec must actually inject"
        );
        // A spec carrying its own fault scenario wins over the default.
        // Counter saturation needs a counting policy, so use Mig/Rep.
        let own = crate::dynamic_spec(WorkloadKind::Raytrace, Scale::quick())
            .with_faults(FaultSpec::new(FaultScenario::CounterSat));
        let c = chaotic.run(&own);
        assert_eq!(c.fault_stats.storms, 0, "own scenario overrides default");
        assert!(c.fault_stats.counters_capped > 0);
        assert!(chaotic.fault_totals().injected_total() > 0);
        assert!(clean.fault_totals().is_zero());
    }

    #[test]
    fn failures_are_recorded_and_memoized_without_poisoning() {
        let exec = Executor::serial();
        // Inject a failure the way try_run does, then confirm the
        // executor keeps serving other runs and reports it everywhere.
        lock(&exec.failures).push(RunFailure {
            label: "broken [X]".into(),
            slug: "zz-broken".into(),
            error: "out of memory: no frame for page 7 on node 1".into(),
        });
        lock(&exec.cache).insert(
            "broken-key".into(),
            Err(RunFailure {
                label: "broken [X]".into(),
                slug: "zz-broken".into(),
                error: "out of memory: no frame for page 7 on node 1".into(),
            }),
        );
        assert!(exec.has_failures());
        assert_eq!(exec.stats().failed, 1);
        let report = exec.run(&ft(WorkloadKind::Raytrace));
        assert!(report.sim_time.0 > 0, "healthy runs still execute");
        let meta = exec.metadata_json(Duration::from_secs(1));
        assert!(meta.contains("\"schema\":\"ccnuma-run-metadata/3\""));
        assert!(meta.contains("\"failed_runs\":1"));
        assert!(meta.contains("\"zz-broken\""));
        assert!(meta.contains("out of memory"));
        assert!(meta.contains("\"warnings\":[]"));
    }

    #[test]
    fn obs_write_problems_degrade_to_warnings() {
        // Point the obs dir at a *file* so artifact writes must fail;
        // the run itself still succeeds and the warning is recorded.
        let dir = std::env::temp_dir().join(format!("ccnuma-warn-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("runs");
        std::fs::write(&blocker, b"not a directory").unwrap();
        let exec = Executor::serial()
            .with_obs_dir(&dir)
            .with_verbosity(Verbosity::Quiet);
        let report = exec.run(&ft(WorkloadKind::Raytrace));
        assert!(report.sim_time.0 > 0, "report survives the failed write");
        let warnings = exec.warnings();
        assert_eq!(warnings.len(), 1, "exactly one warning: {warnings:?}");
        assert!(warnings[0].contains("writing obs artifacts"));
        let meta = exec.metadata_json(Duration::from_secs(1));
        assert!(meta.contains("writing obs artifacts"));
        assert!(!exec.has_failures());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profiled_executor_matches_unprofiled_and_aggregates_runs() {
        use ccnuma_obs::Phase;
        let mut plan = RunPlan::new();
        plan.add(ft(WorkloadKind::Raytrace));
        plan.add(ft(WorkloadKind::Database));
        let plain = Executor::serial();
        plain.execute(&plan);
        let dir = std::env::temp_dir().join(format!("ccnuma-prof-exec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let profiled = Executor::new(2)
            .with_profiling()
            .with_obs_dir(&dir)
            .with_verbosity(Verbosity::Quiet);
        profiled.execute(&plan);
        assert!(plain.invocation_profile().is_none());
        let prof = profiled.invocation_profile().expect("profiling is on");
        // One Run span per computed run. The windowed engine enters
        // Phase::Memory once per lane window (batching references), so
        // the entry count is positive but well below one-per-reference.
        assert_eq!(prof.entries(Phase::Run), 2);
        let total_refs: u64 = plan
            .specs()
            .iter()
            .map(|s| s.build_workload().total_refs)
            .sum();
        assert!(prof.entries(Phase::Memory) > 0);
        assert!(prof.entries(Phase::Memory) <= total_refs);
        assert!(prof.entries(Phase::Merge) > 0, "windows merged");
        for spec in plan.specs() {
            let a = plain.run(spec);
            let b = profiled.run(spec);
            assert_eq!(a.breakdown, b.breakdown, "profiler must not change reports");
            assert_eq!(a.sim_time, b.sim_time);
            // Per-run artifacts landed next to the obs set.
            let slug = artifact_slug(&spec.describe(), &spec.cache_key());
            let run_dir = dir.join("runs").join(&slug);
            assert!(run_dir.join("profile.json").is_file(), "{slug}");
            assert!(run_dir.join("host-trace.json").is_file(), "{slug}");
            assert!(run_dir.join("metrics.json").is_file(), "{slug}");
        }
        let path = profiled
            .write_invocation_profile(&dir)
            .unwrap()
            .expect("profiling on");
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.starts_with("{\"schema\":\"ccnuma-profile/1\""));
        assert_eq!(plain.write_invocation_profile(&dir).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_resume_serves_identical_reports_with_zero_recomputation() {
        let dir = std::env::temp_dir().join(format!("ccnuma-ckpt-exec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = ft(WorkloadKind::Raytrace);
        let first = Executor::serial().with_checkpoint(&dir).unwrap();
        assert_eq!(first.stats().resumed, 0, "nothing journaled yet");
        let a = first.run(&spec);
        assert_eq!(first.stats().computed, 1);
        // A second executor resuming from the same directory serves the
        // journaled report without running the machine.
        let second = Executor::serial().with_checkpoint(&dir).unwrap();
        assert_eq!(second.stats().resumed, 1);
        let b = second.run(&spec);
        assert_eq!(
            second.stats().computed,
            0,
            "resume means zero recomputation"
        );
        assert_eq!(
            format!("{:?}", *a),
            format!("{:?}", *b),
            "bit-exact restore"
        );
        let meta = second.metadata_json(Duration::from_secs(1));
        assert!(meta.contains("\"resumed_runs\":1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_resume_restores_traced_runs() {
        let dir = std::env::temp_dir().join(format!("ccnuma-ckpt-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = crate::traced_ft_spec(WorkloadKind::Database, Scale::quick());
        let first = Executor::serial().with_checkpoint(&dir).unwrap();
        let a = first.run(&spec);
        assert!(a.trace.is_some());
        let second = Executor::serial().with_checkpoint(&dir).unwrap();
        let b = second.run(&spec);
        assert_eq!(second.stats().computed, 0);
        assert_eq!(
            a.trace.as_ref().unwrap().as_slice(),
            b.trace.as_ref().unwrap().as_slice(),
            "trace sidecar restores the capture exactly"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watchdog_soft_deadline_warns_and_hard_deadline_fails() {
        let spec = ft(WorkloadKind::Raytrace);
        // Zero-length deadlines trip on any real run.
        let soft = Executor::serial()
            .with_verbosity(Verbosity::Quiet)
            .with_deadlines(Some(Duration::ZERO), None);
        let report = soft.try_run(&spec);
        assert!(report.is_ok(), "soft overrun still serves the report");
        let warnings = soft.warnings();
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("watchdog"));
        assert!(warnings[0].contains("soft deadline"));

        let hard = Executor::serial()
            .with_verbosity(Verbosity::Quiet)
            .with_deadlines(None, Some(Duration::ZERO));
        let failure = hard.try_run(&spec).unwrap_err();
        assert!(failure.error.contains("hard deadline"), "{}", failure.error);
        assert!(hard.has_failures());
        // The failure is memoized like any other; the plan continues.
        assert!(hard.try_run(&spec).is_err());
        assert_eq!(hard.stats().failed, 1);

        // Generous deadlines change nothing.
        let lenient = Executor::serial().with_deadlines(
            Some(Duration::from_secs(3600)),
            Some(Duration::from_secs(3600)),
        );
        assert!(lenient.try_run(&spec).is_ok());
        assert!(lenient.warnings().is_empty());
    }

    #[test]
    fn hard_deadline_overruns_are_not_journaled() {
        let dir = std::env::temp_dir().join(format!("ccnuma-ckpt-hard-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = ft(WorkloadKind::Database);
        let hard = Executor::serial()
            .with_verbosity(Verbosity::Quiet)
            .with_checkpoint(&dir)
            .unwrap()
            .with_deadlines(None, Some(Duration::ZERO));
        assert!(hard.try_run(&spec).is_err());
        // A resuming executor finds nothing: the overrun was discarded.
        let resumed = Executor::serial().with_checkpoint(&dir).unwrap();
        assert_eq!(resumed.stats().resumed, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panic_messages_render_usefully() {
        let s: Box<dyn Any + Send> = Box::new("boom");
        assert_eq!(panic_message(s), "panicked: boom");
        let s: Box<dyn Any + Send> = Box::new(String::from("kaboom"));
        assert_eq!(panic_message(s), "panicked: kaboom");
        let s: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(s), "panicked (non-string payload)");
    }
}
