//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each function in [`experiments`] reproduces one artifact — Tables 1–6,
//! Figures 3–9, and the section-level results (§7.1.2 contention, §7.2.1
//! information-gathering space overhead, §7.2.3 replication space
//! overhead, §8.4 sharing-threshold sensitivity) — and returns the
//! rendered report as a `String`. The `repro` binary prints them; the
//! integration tests assert on their shape.
//!
//! # Examples
//!
//! ```no_run
//! use ccnuma_bench::experiments;
//! use ccnuma_workloads::Scale;
//!
//! println!("{}", experiments::table1());
//! println!("{}", experiments::figure3(Scale::quick()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod helpers;

pub use helpers::{dynamic_options, ft_options, trigger_for, RunPair};
