//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each function in [`experiments`] reproduces one artifact — Tables 1–6,
//! Figures 3–9, and the section-level results (§7.1.2 contention, §7.2.1
//! information-gathering space overhead, §7.2.3 replication space
//! overhead, §8.4 sharing-threshold sensitivity) — and returns the
//! rendered report as a `String`.
//!
//! Experiments do not run the machine directly: they describe runs as
//! `RunSpec`s and fetch reports through an [`Executor`] handle. The
//! executor memoizes reports by spec, so experiments that need the same
//! baseline — one first-touch run per workload and scale, however many
//! tables read it — share a single simulation, and [`Executor::execute`]
//! computes the distinct runs of a whole [`RunPlan`] on parallel worker
//! threads. The `repro` binary builds the union plan of the requested
//! experiments, executes it, and renders in deterministic order; its
//! stdout is byte-identical whatever the thread count.
//!
//! # Examples
//!
//! ```no_run
//! use ccnuma_bench::{experiments, Executor};
//! use ccnuma_workloads::Scale;
//!
//! let exec = Executor::serial();
//! println!("{}", experiments::table1(Scale::quick(), &exec));
//! println!("{}", experiments::figure3(Scale::quick(), &exec));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod checkpoint;
pub mod experiments;
mod helpers;
pub mod hotbench;
pub mod obsreport;
pub mod plan;

pub use baseline::{
    append_history, atomic_write, check_against_baseline, history_line, BenchCheck, BenchDelta,
    DeltaReason, DEFAULT_TOLERANCE_PCT, HISTORY_SCHEMA,
};
pub use checkpoint::{ResumeState, ResumedRun, RunJournal};
pub use helpers::{
    dynamic_options, dynamic_spec, ft_options, ft_spec, traced_ft, traced_ft_spec, trigger_for,
    RunPair,
};
pub use hotbench::{hotpath_bench, tracestore_bench, BenchReport, BenchRun, TraceBench};
pub use obsreport::{build_report, InvocationMeta, ObsReport, PhaseSummary, OBS_REPORT_SCHEMA};
pub use plan::{Executor, ExecutorStats, RunFailure, RunPlan, RunTiming, TracedRun};
