//! Exact [`RunReport`] serialization over the `ccnuma-checkpoint/1`
//! journal — what makes `repro … --resume DIR` possible.
//!
//! The executor journals every successfully computed run: the report's
//! scalars go into the journal line's payload, and a captured trace (if
//! any) goes into an atomically-written sidecar under `traces/`. On
//! resume, journaled reports are deserialized straight into the memo
//! cache, so renderers re-render **byte-identical stdout with zero
//! recomputation** for completed entries.
//!
//! Exactness is the whole contract: every `u64` is written as a JSON
//! integer, and every `f64` is written as its IEEE-754 bit pattern
//! (`f64::to_bits`), so a resumed report is bit-for-bit the report that
//! was journaled — formatting a percentage from it cannot produce a
//! different digit. The serialization surface is pinned by
//! [`RunBreakdown::to_raw_parts`] and [`CostBook::to_raw_parts`].

use ccnuma_faults::io::{retry_io, RetryPolicy, Storage};
use ccnuma_faults::{DiskStorage, FaultStats};
use ccnuma_kernel::CostBook;
use ccnuma_machine::{ContentionStats, RunReport};
use ccnuma_obs::checkpoint::CheckpointJournal;
use ccnuma_obs::{json::JsonWriter, JsonValue};
use ccnuma_stats::RunBreakdown;
use ccnuma_trace::Trace;
use ccnuma_types::Ns;
use std::io;
use std::path::PathBuf;

pub use ccnuma_obs::checkpoint::CHECKPOINT_SCHEMA;

/// The journal record kind for executor runs.
pub const RUN_KIND: &str = "run";

/// Subdirectory of a checkpoint dir holding trace sidecars.
pub const TRACES_DIR: &str = "traces";

/// A resumable journal of completed executor runs.
#[derive(Debug)]
pub struct RunJournal<S: Storage = DiskStorage> {
    journal: CheckpointJournal<S>,
}

/// One run restored from a journal.
#[derive(Debug)]
pub struct ResumedRun {
    /// The run's artifact slug.
    pub slug: String,
    /// The executor cache key ([`RunSpec::cache_key`]).
    ///
    /// [`RunSpec::cache_key`]: ccnuma_machine::RunSpec::cache_key
    pub cache_key: String,
    /// The reconstructed report, bit-exact.
    pub report: RunReport,
}

/// What [`RunJournal::load`] restored.
#[derive(Debug, Default)]
pub struct ResumeState {
    /// Every restorable run, in journal order.
    pub runs: Vec<ResumedRun>,
    /// Journal lines or payloads that could not be restored (torn
    /// tail, corrupt payload, missing trace sidecar) — each costs one
    /// recomputation, never the resume.
    pub skipped: usize,
}

impl RunJournal<DiskStorage> {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a schema mismatch.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<RunJournal<DiskStorage>> {
        RunJournal::open_with(dir, DiskStorage)
    }
}

impl<S: Storage> RunJournal<S> {
    /// Opens (creating if needed) a checkpoint directory on `storage`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a schema mismatch.
    pub fn open_with(dir: impl Into<PathBuf>, storage: S) -> io::Result<RunJournal<S>> {
        Ok(RunJournal {
            journal: CheckpointJournal::open_with(dir, storage)?,
        })
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &std::path::Path {
        self.journal.dir()
    }

    /// Journals one completed run durably: the trace sidecar (if the
    /// report carries a trace) is written atomically first, then the
    /// record is appended and fsync'd. Returns only once the record
    /// would survive a SIGKILL.
    ///
    /// # Errors
    ///
    /// Propagates storage errors after bounded retries.
    pub fn record(&self, slug: &str, cache_key: &str, report: &RunReport) -> io::Result<()> {
        if let Some(trace) = &report.trace {
            let storage = self.journal.storage();
            let dir = self.journal.dir().join(TRACES_DIR);
            retry_io(RetryPolicy::default(), || storage.create_dir_all(&dir))?;
            let mut bytes = Vec::new();
            ccnuma_trace::io::write_trace(&mut bytes, trace)?;
            let path = dir.join(format!("{slug}.trace"));
            retry_io(RetryPolicy::default(), || {
                storage.write_atomic(&path, &bytes)
            })?;
        }
        self.journal
            .append(RUN_KIND, slug, cache_key, &report_payload(report))
    }

    /// Restores every journaled run. Unrestorable records are counted,
    /// not fatal.
    ///
    /// # Errors
    ///
    /// Only on I/O errors reading the journal itself.
    pub fn load(&self) -> io::Result<ResumeState> {
        let contents = self.journal.load()?;
        let mut state = ResumeState {
            skipped: contents.skipped,
            ..ResumeState::default()
        };
        for rec in contents.records {
            if rec.kind != RUN_KIND {
                continue;
            }
            let trace = match rec.payload.get("trace_records").and_then(JsonValue::as_u64) {
                Some(n) => {
                    let path = self
                        .journal
                        .dir()
                        .join(TRACES_DIR)
                        .join(format!("{}.trace", rec.key));
                    match self
                        .journal
                        .storage()
                        .read(&path)
                        .ok()
                        .and_then(|bytes| ccnuma_trace::io::read_trace(&bytes[..]).ok())
                    {
                        Some(t) if t.len() as u64 == n => Some(t),
                        _ => {
                            // Sidecar missing or damaged: the scalars
                            // alone would break trace-dependent
                            // renderers, so recompute this run.
                            state.skipped += 1;
                            continue;
                        }
                    }
                }
                None => None,
            };
            match report_from_payload(&rec.payload, trace) {
                Some(report) => state.runs.push(ResumedRun {
                    slug: rec.key,
                    cache_key: rec.cache_key,
                    report,
                }),
                None => state.skipped += 1,
            }
        }
        Ok(state)
    }
}

fn bits_key(j: &mut JsonWriter, key: &str, v: f64) {
    j.key(key);
    j.raw(&v.to_bits().to_string());
}

fn u64_key(j: &mut JsonWriter, key: &str, v: u64) {
    j.key(key);
    j.raw(&v.to_string());
}

fn u64_arr(j: &mut JsonWriter, key: &str, vals: &[u64]) {
    j.key(key);
    j.begin_arr();
    for v in vals {
        j.raw(&v.to_string());
    }
    j.end_arr();
}

/// Serializes a report (minus its trace, which goes into a sidecar)
/// into the journal payload. Every `f64` is stored as its bit pattern.
pub fn report_payload(report: &RunReport) -> String {
    let mut j = JsonWriter::new();
    j.begin_obj();
    j.key("workload");
    j.str(&report.workload);
    j.key("policy_label");
    j.str(&report.policy_label);
    u64_arr(&mut j, "breakdown", &report.breakdown.to_raw_parts());
    j.key("policy_stats");
    match &report.policy_stats {
        None => j.raw("null"),
        Some(p) => {
            j.begin_obj();
            u64_key(&mut j, "misses_observed", p.misses_observed);
            u64_key(&mut j, "hot_events", p.hot_events);
            u64_key(&mut j, "migrations", p.migrations);
            u64_key(&mut j, "replications", p.replications);
            u64_key(&mut j, "remaps", p.remaps);
            u64_key(&mut j, "collapses", p.collapses);
            u64_key(&mut j, "no_action", p.no_action);
            u64_key(&mut j, "no_action_write_shared", p.no_action_write_shared);
            u64_key(&mut j, "no_action_migrate_limit", p.no_action_migrate_limit);
            u64_key(&mut j, "no_action_pressure", p.no_action_pressure);
            u64_key(&mut j, "no_action_disabled", p.no_action_disabled);
            u64_key(&mut j, "no_action_frozen", p.no_action_frozen);
            u64_key(&mut j, "no_page", p.no_page);
            j.end_obj();
        }
    }
    u64_arr(&mut j, "cost_book", &report.cost_book.to_raw_parts());
    j.key("contention");
    j.begin_obj();
    u64_key(&mut j, "remote_requests", report.contention.remote_requests);
    u64_key(&mut j, "local_requests", report.contention.local_requests);
    u64_key(&mut j, "total_wait", report.contention.total_wait.0);
    u64_key(&mut j, "remote_wait", report.contention.remote_wait.0);
    u64_key(&mut j, "local_wait", report.contention.local_wait.0);
    bits_key(
        &mut j,
        "remote_queue_sum",
        report.contention.remote_queue_sum,
    );
    j.end_obj();
    bits_key(&mut j, "max_occupancy", report.max_occupancy);
    u64_key(&mut j, "sim_time", report.sim_time.0);
    u64_key(&mut j, "cpu_time", report.cpu_time.0);
    if let Some(trace) = &report.trace {
        u64_key(&mut j, "trace_records", trace.len() as u64);
    }
    u64_key(&mut j, "distinct_pages", report.distinct_pages);
    u64_key(&mut j, "replica_frames_peak", report.replica_frames_peak);
    bits_key(
        &mut j,
        "replication_space_overhead_pct",
        report.replication_space_overhead_pct,
    );
    u64_key(&mut j, "frames_used", report.frames_used);
    u64_key(&mut j, "lock_wait", report.lock_wait.0);
    bits_key(&mut j, "lock_contention_rate", report.lock_contention_rate);
    u64_key(
        &mut j,
        "avg_local_miss_latency",
        report.avg_local_miss_latency.0,
    );
    bits_key(&mut j, "avg_tlbs_flushed", report.avg_tlbs_flushed);
    j.key("fault_stats");
    j.begin_obj();
    let f = &report.fault_stats;
    u64_key(&mut j, "storms", f.storms);
    u64_key(&mut j, "frames_seized", f.frames_seized);
    u64_key(&mut j, "copy_aborts", f.copy_aborts);
    u64_key(&mut j, "allocs_blocked", f.allocs_blocked);
    u64_key(&mut j, "acks_delayed", f.acks_delayed);
    u64_key(&mut j, "ack_delay_total", f.ack_delay_total.0);
    u64_key(&mut j, "interrupts_lost", f.interrupts_lost);
    u64_key(&mut j, "counters_capped", f.counters_capped);
    u64_key(&mut j, "op_retries", f.op_retries);
    u64_key(&mut j, "retry_successes", f.retry_successes);
    u64_key(&mut j, "failed_ops", f.failed_ops);
    u64_key(&mut j, "remap_only_activations", f.remap_only_activations);
    u64_key(&mut j, "throttled_ops", f.throttled_ops);
    u64_key(&mut j, "reclaimed_frames", f.reclaimed_frames);
    j.end_obj();
    j.end_obj();
    j.finish()
}

fn get_u64(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key).and_then(JsonValue::as_u64)
}

fn get_bits(v: &JsonValue, key: &str) -> Option<f64> {
    get_u64(v, key).map(f64::from_bits)
}

fn get_u64_arr<const N: usize>(v: &JsonValue, key: &str) -> Option<[u64; N]> {
    let arr = v.get(key)?.as_array()?;
    if arr.len() != N {
        return None;
    }
    let mut out = [0u64; N];
    for (slot, item) in out.iter_mut().zip(arr) {
        *slot = item.as_u64()?;
    }
    Some(out)
}

/// Rebuilds a report from a journal payload plus its (already loaded)
/// trace sidecar. `None` if the payload is malformed or incomplete —
/// the caller recomputes that run.
pub fn report_from_payload(v: &JsonValue, trace: Option<Trace>) -> Option<RunReport> {
    let policy_stats = match v.get("policy_stats")? {
        JsonValue::Null => None,
        p => Some(ccnuma_core::PolicyStats {
            misses_observed: get_u64(p, "misses_observed")?,
            hot_events: get_u64(p, "hot_events")?,
            migrations: get_u64(p, "migrations")?,
            replications: get_u64(p, "replications")?,
            remaps: get_u64(p, "remaps")?,
            collapses: get_u64(p, "collapses")?,
            no_action: get_u64(p, "no_action")?,
            no_action_write_shared: get_u64(p, "no_action_write_shared")?,
            no_action_migrate_limit: get_u64(p, "no_action_migrate_limit")?,
            no_action_pressure: get_u64(p, "no_action_pressure")?,
            no_action_disabled: get_u64(p, "no_action_disabled")?,
            no_action_frozen: get_u64(p, "no_action_frozen")?,
            no_page: get_u64(p, "no_page")?,
        }),
    };
    let c = v.get("contention")?;
    let contention = ContentionStats {
        remote_requests: get_u64(c, "remote_requests")?,
        local_requests: get_u64(c, "local_requests")?,
        total_wait: Ns(get_u64(c, "total_wait")?),
        remote_wait: Ns(get_u64(c, "remote_wait")?),
        local_wait: Ns(get_u64(c, "local_wait")?),
        remote_queue_sum: get_bits(c, "remote_queue_sum")?,
    };
    let f = v.get("fault_stats")?;
    let fault_stats = FaultStats {
        storms: get_u64(f, "storms")?,
        frames_seized: get_u64(f, "frames_seized")?,
        copy_aborts: get_u64(f, "copy_aborts")?,
        allocs_blocked: get_u64(f, "allocs_blocked")?,
        acks_delayed: get_u64(f, "acks_delayed")?,
        ack_delay_total: Ns(get_u64(f, "ack_delay_total")?),
        interrupts_lost: get_u64(f, "interrupts_lost")?,
        counters_capped: get_u64(f, "counters_capped")?,
        op_retries: get_u64(f, "op_retries")?,
        retry_successes: get_u64(f, "retry_successes")?,
        failed_ops: get_u64(f, "failed_ops")?,
        remap_only_activations: get_u64(f, "remap_only_activations")?,
        throttled_ops: get_u64(f, "throttled_ops")?,
        reclaimed_frames: get_u64(f, "reclaimed_frames")?,
    };
    Some(RunReport {
        workload: v.get("workload")?.as_str()?.to_string(),
        policy_label: v.get("policy_label")?.as_str()?.to_string(),
        breakdown: RunBreakdown::from_raw_parts(get_u64_arr::<{ RunBreakdown::RAW_LEN }>(
            v,
            "breakdown",
        )?),
        policy_stats,
        cost_book: CostBook::from_raw_parts(get_u64_arr::<{ CostBook::RAW_LEN }>(v, "cost_book")?),
        contention,
        max_occupancy: get_bits(v, "max_occupancy")?,
        sim_time: Ns(get_u64(v, "sim_time")?),
        cpu_time: Ns(get_u64(v, "cpu_time")?),
        trace,
        distinct_pages: get_u64(v, "distinct_pages")?,
        replica_frames_peak: get_u64(v, "replica_frames_peak")?,
        replication_space_overhead_pct: get_bits(v, "replication_space_overhead_pct")?,
        frames_used: get_u64(v, "frames_used")?,
        lock_wait: Ns(get_u64(v, "lock_wait")?),
        lock_contention_rate: get_bits(v, "lock_contention_rate")?,
        avg_local_miss_latency: Ns(get_u64(v, "avg_local_miss_latency")?),
        avg_tlbs_flushed: get_bits(v, "avg_tlbs_flushed")?,
        fault_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::{dynamic_spec, traced_ft_spec};
    use ccnuma_workloads::{Scale, WorkloadKind};
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ccnuma-runj-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn assert_reports_identical(a: &RunReport, b: &RunReport) {
        // Debug formatting covers every field (including f64s, which
        // {:?} prints with shortest-roundtrip precision) except the
        // trace, compared separately by record count and equality.
        let strip = |r: &RunReport| format!("{:?}", r).replace(&format!("{:?}", r.trace), "");
        assert_eq!(strip(a), strip(b));
        assert_eq!(
            a.trace.as_ref().map(|t| t.as_slice().to_vec()),
            b.trace.as_ref().map(|t| t.as_slice().to_vec())
        );
    }

    #[test]
    fn dynamic_report_round_trips_bit_exactly() {
        let report = dynamic_spec(WorkloadKind::Raytrace, Scale::quick())
            .try_run()
            .unwrap();
        let payload = report_payload(&report);
        let v = JsonValue::parse(&payload).unwrap();
        let rebuilt = report_from_payload(&v, None).unwrap();
        assert_reports_identical(&report, &rebuilt);
    }

    #[test]
    fn traced_report_round_trips_through_journal() {
        let d = tmpdir("traced");
        let spec = traced_ft_spec(WorkloadKind::Database, Scale::quick());
        let report = spec.try_run().unwrap();
        assert!(report.trace.is_some(), "spec must capture a trace");
        let journal = RunJournal::open(&d).unwrap();
        journal
            .record("db-slug", &spec.cache_key(), &report)
            .unwrap();
        let state = journal.load().unwrap();
        assert_eq!(state.skipped, 0);
        assert_eq!(state.runs.len(), 1);
        assert_eq!(state.runs[0].slug, "db-slug");
        assert_eq!(state.runs[0].cache_key, spec.cache_key());
        assert_reports_identical(&report, &state.runs[0].report);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_trace_sidecar_skips_the_run() {
        let d = tmpdir("missing");
        let spec = traced_ft_spec(WorkloadKind::Database, Scale::quick());
        let report = spec.try_run().unwrap();
        let journal = RunJournal::open(&d).unwrap();
        journal
            .record("db-slug", &spec.cache_key(), &report)
            .unwrap();
        fs::remove_file(d.join(TRACES_DIR).join("db-slug.trace")).unwrap();
        let state = journal.load().unwrap();
        assert_eq!(state.runs.len(), 0, "scalars without trace are unusable");
        assert_eq!(state.skipped, 1);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn corrupt_payload_skips_not_panics() {
        let d = tmpdir("corrupt");
        let journal = RunJournal::open(&d).unwrap();
        journal
            .journal
            .append(RUN_KIND, "bad", "bad-key", "{\"workload\":\"x\"}")
            .unwrap();
        let state = journal.load().unwrap();
        assert_eq!(state.runs.len(), 0);
        assert_eq!(state.skipped, 1);
        let _ = fs::remove_dir_all(&d);
    }
}
