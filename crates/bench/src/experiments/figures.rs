//! Figures 3–9.
//!
//! Each figure has a `*_plan` function naming the machine runs it needs
//! (for the executor to batch and parallelize) and a render function
//! that fetches those runs through the [`Executor`] handle.

use crate::helpers::{base_params, dynamic_spec, ft_spec, traced_ft, traced_ft_spec, RunPair};
use crate::plan::Executor;
use ccnuma_core::{DynamicPolicyKind, MissMetric, PolicyParams};
use ccnuma_machine::{RunReport, RunSpec};
use ccnuma_polsim::{simulate, PolsimConfig, PolsimReport, SimPolicy, TraceFilter};
use ccnuma_stats::{f1, BarChart, Table};
use ccnuma_trace::read_chains;
use ccnuma_types::{MachineConfig, Ns};
use ccnuma_workloads::{Scale, WorkloadKind};
use std::fmt::Write as _;

fn report_bar(chart: &mut BarChart, r: &RunReport) {
    let b = &r.breakdown;
    chart.bar(
        format!("{} {}", r.workload, r.policy_label),
        vec![
            b.policy_overhead().as_ms(),
            b.remote_stall().as_ms(),
            b.local_stall().as_ms(),
            (b.other_incl_hits() + b.idle()).as_ms(),
        ],
        Some(format!("{}% local", f1(b.pct_local_misses()))),
    );
}

/// Runs needed by [`figure3`].
pub fn figure3_plan(scale: Scale) -> Vec<RunSpec> {
    WorkloadKind::USER_SET
        .into_iter()
        .flat_map(|kind| RunPair::specs(kind, scale))
        .collect()
}

/// Figure 3: performance improvement of the base policy over first touch.
pub fn figure3(scale: Scale, exec: &Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Figure 3: base policy (Mig/Rep) vs first touch (FT) =="
    );
    let mut chart = BarChart::new(vec![
        "mig/rep overhead",
        "remote stall",
        "local stall",
        "other",
    ]);
    let mut summary = Table::new(vec![
        "Workload",
        "FT(ms)",
        "MigRep(ms)",
        "Improve%",
        "StallRed%",
        "FT local%",
        "MR local%",
    ]);
    for kind in WorkloadKind::USER_SET {
        let pair = RunPair::of(exec, kind, scale);
        report_bar(&mut chart, &pair.ft);
        report_bar(&mut chart, &pair.mig_rep);
        summary.row(vec![
            kind.to_string(),
            f1(pair.ft.breakdown.total().as_ms()),
            f1(pair.mig_rep.breakdown.total().as_ms()),
            f1(pair.improvement()),
            f1(pair.stall_reduction()),
            f1(pair.ft.breakdown.pct_local_misses()),
            f1(pair.mig_rep.breakdown.pct_local_misses()),
        ]);
    }
    let _ = writeln!(out, "{chart}");
    let _ = write!(out, "{summary}");
    out
}

/// Runs needed by [`figure4`].
pub fn figure4_plan(scale: Scale) -> Vec<RunSpec> {
    WorkloadKind::USER_SET
        .into_iter()
        .map(|kind| traced_ft_spec(kind, scale))
        .collect()
}

/// Figure 4: percentage of data cache misses in read chains of length ≥ L.
pub fn figure4(scale: Scale, exec: &Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 4: data cache misses in read chains ==");
    let _ = writeln!(
        out,
        "(per workload: % of user data misses in read chains of length >= L)"
    );
    let mut t = Table::new(vec!["L", "Engineering", "Raytrace", "Splash", "Database"]);
    let summaries: Vec<_> = WorkloadKind::USER_SET
        .iter()
        .map(|kind| {
            let tr = traced_ft(exec, *kind, scale);
            read_chains(tr.trace()).summary()
        })
        .collect();
    for (i, threshold) in ccnuma_trace::ChainSummary::THRESHOLDS.iter().enumerate() {
        let mut row = vec![threshold.to_string()];
        for s in &summaries {
            let (_, frac) = s.points().nth(i).expect("same thresholds");
            row.push(f1(frac * 100.0));
        }
        t.row(row);
    }
    let _ = write!(out, "{t}");
    out
}

/// Figure 5's two machine configurations: CC-NUMA (the workload's native
/// latency — plain specs, shared with Figure 3) and CC-NOW.
fn figure5_configs(scale: Scale) -> [(&'static str, RunSpec, RunSpec); 2] {
    let kind = WorkloadKind::Engineering;
    let now = MachineConfig::cc_now().remote_latency;
    [
        ("CC-NUMA", ft_spec(kind, scale), dynamic_spec(kind, scale)),
        (
            "CC-NOW",
            ft_spec(kind, scale).with_remote_latency(now),
            dynamic_spec(kind, scale).with_remote_latency(now),
        ),
    ]
}

/// Runs needed by [`figure5`].
pub fn figure5_plan(scale: Scale) -> Vec<RunSpec> {
    figure5_configs(scale)
        .into_iter()
        .flat_map(|(_, ft, mr)| [ft, mr])
        .collect()
}

/// Figure 5: CC-NUMA vs CC-NOW for the engineering workload.
pub fn figure5(scale: Scale, exec: &Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 5: CC-NUMA vs CC-NOW (engineering) ==");
    let mut chart = BarChart::new(vec![
        "mig/rep overhead",
        "remote stall",
        "local stall",
        "other",
    ]);
    let mut rows = Table::new(vec![
        "Config",
        "Policy",
        "NonIdle(ms)",
        "UserStallRed%",
        "Improve%",
    ]);
    for (label, ft_run, mr_run) in figure5_configs(scale) {
        let ft = exec.run(&ft_run);
        let mr = exec.run(&mr_run);
        for r in [&ft, &mr] {
            let b = &r.breakdown;
            chart.bar(
                format!("{label} {}", r.policy_label),
                vec![
                    b.policy_overhead().as_ms(),
                    b.remote_stall().as_ms(),
                    b.local_stall().as_ms(),
                    b.other_incl_hits().as_ms(),
                ],
                Some(format!("{}% local", f1(b.pct_local_misses()))),
            );
        }
        let user_stall_ft = ft.breakdown.mode_stall(ccnuma_types::Mode::User);
        let user_stall_mr = mr.breakdown.mode_stall(ccnuma_types::Mode::User);
        let red = if user_stall_ft == Ns::ZERO {
            0.0
        } else {
            100.0 * (user_stall_ft.0 as f64 - user_stall_mr.0 as f64) / user_stall_ft.0 as f64
        };
        rows.row(vec![
            label.into(),
            "FT->Mig/Rep".into(),
            format!(
                "{} -> {}",
                f1(ft.breakdown.non_idle().as_ms()),
                f1(mr.breakdown.non_idle().as_ms())
            ),
            f1(red),
            f1(mr.improvement_over(&ft)),
        ]);
    }
    let _ = writeln!(out, "{chart}");
    let _ = write!(out, "{rows}");
    out
}

fn polsim_figure(
    out: &mut String,
    exec: &Executor,
    workloads: &[WorkloadKind],
    scale: Scale,
    filter: TraceFilter,
    policies: impl Fn(WorkloadKind) -> Vec<SimPolicy>,
) {
    for kind in workloads {
        let tr = traced_ft(exec, *kind, scale);
        let cfg = PolsimConfig::section8(tr.nodes()).with_other_time(tr.other_time());
        let reports: Vec<PolsimReport> = policies(*kind)
            .into_iter()
            .map(|p| simulate(tr.trace(), &cfg, p, filter))
            .collect();
        let base_total = reports[0].total();
        let mut chart = BarChart::new(vec![
            "mig overhead",
            "rep overhead",
            "remote stall",
            "local stall",
            "other",
        ]);
        let mut t = Table::new(vec![
            "Policy",
            "Normalized",
            "Local%",
            "Migr",
            "Repl",
            "Coll",
        ]);
        for r in &reports {
            let norm = if base_total == Ns::ZERO {
                0.0
            } else {
                r.total().0 as f64 / base_total.0 as f64
            };
            chart.bar(
                format!("{} {}", kind, r.label),
                vec![
                    r.mig_overhead.as_ms(),
                    r.rep_overhead.as_ms(),
                    r.remote_stall.as_ms(),
                    r.local_stall.as_ms(),
                    r.other_time.as_ms(),
                ],
                Some(format!("{}% local", f1(r.pct_local_misses()))),
            );
            t.row(vec![
                r.label.clone(),
                format!("{norm:.3}"),
                f1(r.pct_local_misses()),
                r.migrations.to_string(),
                r.replications.to_string(),
                r.collapses.to_string(),
            ]);
        }
        let _ = writeln!(out, "{chart}");
        let _ = writeln!(out, "{t}");
    }
}

/// Runs needed by [`figure6`] (shared with Figures 4, 8 and 9).
pub fn figure6_plan(scale: Scale) -> Vec<RunSpec> {
    figure4_plan(scale)
}

/// Figure 6: the six policies (RR, FT, PF, Migr, Repl, Mig/Rep) replayed
/// through the trace-driven policy simulator.
pub fn figure6(scale: Scale, exec: &Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Figure 6: policy comparison on traces (normalized to RR) =="
    );
    polsim_figure(
        &mut out,
        exec,
        &WorkloadKind::USER_SET,
        scale,
        TraceFilter::UserOnly,
        |kind| {
            SimPolicy::figure6_set()
                .into_iter()
                .map(|p| with_workload_trigger(p, kind))
                .collect()
        },
    );
    out
}

/// Applies the workload's Section 7 trigger to a dynamic policy.
fn with_workload_trigger(policy: SimPolicy, kind: WorkloadKind) -> SimPolicy {
    match policy {
        SimPolicy::Dynamic {
            params,
            kind: pk,
            metric,
        } => SimPolicy::Dynamic {
            params: params.with_trigger(crate::helpers::trigger_for(kind)),
            kind: pk,
            metric,
        },
        s => s,
    }
}

/// Runs needed by [`figure7`].
pub fn figure7_plan(scale: Scale) -> Vec<RunSpec> {
    vec![traced_ft_spec(WorkloadKind::Pmake, scale)]
}

/// Figure 7: the same policies on the pmake workload's *kernel* misses.
pub fn figure7(scale: Scale, exec: &Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 7: kernel-only policy comparison (pmake) ==");
    polsim_figure(
        &mut out,
        exec,
        &[WorkloadKind::Pmake],
        scale,
        TraceFilter::KernelOnly,
        |_| SimPolicy::figure6_set(),
    );
    out
}

/// Runs needed by [`figure8`].
pub fn figure8_plan(scale: Scale) -> Vec<RunSpec> {
    figure4_plan(scale)
}

/// Figure 8: approximate information — full/sampled cache, full/sampled
/// TLB (1:10 sampling), Mig/Rep policy.
pub fn figure8(scale: Scale, exec: &Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Figure 8: impact of approximate information (FC/SC/FT/ST) =="
    );
    polsim_figure(
        &mut out,
        exec,
        &WorkloadKind::USER_SET,
        scale,
        TraceFilter::UserOnly,
        |kind| {
            MissMetric::figure8_set()
                .into_iter()
                .map(|metric| {
                    // Sampled metrics see 1/rate of the events, so the
                    // thresholds scale down with the rate to keep the same
                    // effective miss-rate trigger.
                    let trigger = (crate::helpers::trigger_for(kind) / metric.rate()).max(1);
                    SimPolicy::Dynamic {
                        params: base_params(kind).with_trigger(trigger),
                        kind: DynamicPolicyKind::MigRep,
                        metric,
                    }
                })
                .collect()
        },
    );
    out
}

/// Runs needed by [`figure9`].
pub fn figure9_plan(scale: Scale) -> Vec<RunSpec> {
    figure4_plan(scale)
}

/// Figure 9: trigger-threshold sweep (32, 64, 128, 256; sharing =
/// trigger/4).
pub fn figure9(scale: Scale, exec: &Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 9: trigger threshold sweep ==");
    polsim_figure(
        &mut out,
        exec,
        &WorkloadKind::USER_SET,
        scale,
        TraceFilter::UserOnly,
        |_| {
            [32u32, 64, 128, 256]
                .into_iter()
                .map(|t| SimPolicy::Dynamic {
                    params: PolicyParams::base().with_trigger(t),
                    kind: DynamicPolicyKind::MigRep,
                    metric: MissMetric::full_cache(),
                })
                .collect()
        },
    );
    out
}
