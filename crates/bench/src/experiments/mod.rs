//! One function per paper artifact, plus the experiment registry.
//!
//! Naming follows the paper: `tableN` and `figureN` regenerate Table N /
//! Figure N; the remaining functions cover section-level results. All of
//! them take a [`Scale`] and an [`Executor`] handle and return the
//! rendered report as a `String`. The [`ALL`] registry binds each
//! experiment's name (and aliases) to its run plan and its renderer, so
//! the `repro` binary can execute the union of the requested plans in
//! parallel before rendering anything.

mod extras;
mod figures;
mod tables;

pub use extras::{
    adaptive, characterize, contention, copyengine, counters, freeze, hotspot, repspace, scaling,
    sharing, shootdown, space,
};
pub use figures::{figure3, figure4, figure5, figure6, figure7, figure8, figure9};
pub use tables::{table1, table2, table3, table4, table5, table6};

use crate::plan::Executor;
use ccnuma_machine::RunSpec;
use ccnuma_workloads::Scale;

/// One registered experiment: its canonical name, accepted aliases, the
/// machine runs it needs, and its renderer.
pub struct Experiment {
    /// Canonical name (what `repro --list` prints first).
    pub name: &'static str,
    /// Alternate names accepted on the command line.
    pub aliases: &'static [&'static str],
    /// The machine runs the renderer will request.
    pub plan: fn(Scale) -> Vec<RunSpec>,
    /// Renders the experiment, fetching runs through the executor.
    pub render: fn(Scale, &Executor) -> String,
}

fn no_runs(_scale: Scale) -> Vec<RunSpec> {
    Vec::new()
}

/// Every experiment, in the order `repro all` prints them.
pub const ALL: &[Experiment] = &[
    Experiment {
        name: "table1",
        aliases: &["params"],
        plan: no_runs,
        render: table1,
    },
    Experiment {
        name: "table2",
        aliases: &["workloads"],
        plan: no_runs,
        render: table2,
    },
    Experiment {
        name: "table3",
        aliases: &[],
        plan: tables::table3_plan,
        render: table3,
    },
    Experiment {
        name: "table4",
        aliases: &[],
        plan: tables::table4_plan,
        render: table4,
    },
    Experiment {
        name: "table5",
        aliases: &[],
        plan: tables::table5_plan,
        render: table5,
    },
    Experiment {
        name: "table6",
        aliases: &[],
        plan: tables::table6_plan,
        render: table6,
    },
    Experiment {
        name: "fig3",
        aliases: &["figure3"],
        plan: figures::figure3_plan,
        render: figure3,
    },
    Experiment {
        name: "fig4",
        aliases: &["figure4"],
        plan: figures::figure4_plan,
        render: figure4,
    },
    Experiment {
        name: "fig5",
        aliases: &["figure5"],
        plan: figures::figure5_plan,
        render: figure5,
    },
    Experiment {
        name: "fig6",
        aliases: &["figure6"],
        plan: figures::figure6_plan,
        render: figure6,
    },
    Experiment {
        name: "fig7",
        aliases: &["figure7"],
        plan: figures::figure7_plan,
        render: figure7,
    },
    Experiment {
        name: "fig8",
        aliases: &["figure8"],
        plan: figures::figure8_plan,
        render: figure8,
    },
    Experiment {
        name: "fig9",
        aliases: &["figure9"],
        plan: figures::figure9_plan,
        render: figure9,
    },
    Experiment {
        name: "contention",
        aliases: &[],
        plan: extras::contention_plan,
        render: contention,
    },
    Experiment {
        name: "space",
        aliases: &[],
        plan: no_runs,
        render: space,
    },
    Experiment {
        name: "repspace",
        aliases: &[],
        plan: extras::repspace_plan,
        render: repspace,
    },
    Experiment {
        name: "sharing",
        aliases: &[],
        plan: extras::sharing_plan,
        render: sharing,
    },
    Experiment {
        name: "shootdown",
        aliases: &[],
        plan: extras::shootdown_plan,
        render: shootdown,
    },
    Experiment {
        name: "hotspot",
        aliases: &[],
        plan: extras::hotspot_plan,
        render: hotspot,
    },
    Experiment {
        name: "adaptive",
        aliases: &[],
        plan: extras::adaptive_plan,
        render: adaptive,
    },
    Experiment {
        name: "copyengine",
        aliases: &[],
        plan: extras::copyengine_plan,
        render: copyengine,
    },
    Experiment {
        name: "counters",
        aliases: &[],
        plan: extras::counters_plan,
        render: counters,
    },
    Experiment {
        name: "scaling",
        aliases: &[],
        plan: extras::scaling_plan,
        render: scaling,
    },
    Experiment {
        name: "freeze",
        aliases: &[],
        plan: no_runs,
        render: freeze,
    },
    Experiment {
        name: "characterize",
        aliases: &[],
        plan: extras::characterize_plan,
        render: characterize,
    },
];

/// Looks an experiment up by canonical name or alias.
pub fn find(name: &str) -> Option<&'static Experiment> {
    ALL.iter()
        .find(|e| e.name == name || e.aliases.contains(&name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RunPlan;

    #[test]
    fn aliases_resolve_to_their_experiment() {
        assert_eq!(find("table1").unwrap().name, "table1");
        assert_eq!(find("params").unwrap().name, "table1");
        assert_eq!(find("workloads").unwrap().name, "table2");
        assert_eq!(find("figure3").unwrap().name, "fig3");
        assert_eq!(find("figure9").unwrap().name, "fig9");
        assert!(find("nonsense").is_none());
    }

    #[test]
    fn names_and_aliases_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for e in ALL {
            assert!(seen.insert(e.name), "duplicate name {}", e.name);
            for a in e.aliases {
                assert!(seen.insert(a), "duplicate alias {a}");
            }
        }
    }

    #[test]
    fn union_plan_deduplicates_across_experiments() {
        let scale = Scale::quick();
        let mut union = RunPlan::new();
        let mut requested = 0;
        for e in ALL {
            let specs = (e.plan)(scale);
            requested += specs.len();
            union.extend(specs);
        }
        // Shared baselines (one FT run per workload, one traced FT run per
        // workload, shared Mig/Rep runs) must collapse in the union.
        assert!(
            union.len() < requested,
            "expected dedup: {} distinct of {requested} requested",
            union.len()
        );
        assert!(requested - union.len() >= 10, "at least ten shared runs");
    }
}
