//! One function per paper artifact.
//!
//! Naming follows the paper: `tableN` and `figureN` regenerate Table N /
//! Figure N; the remaining functions cover section-level results. All of
//! them return the rendered report as a `String`.

mod extras;
mod figures;
mod tables;

pub use extras::{adaptive, characterize, contention, copyengine, counters, freeze, hotspot,
                 repspace, scaling, sharing, shootdown, space};
pub use figures::{figure3, figure4, figure5, figure6, figure7, figure8, figure9};
pub use tables::{table1, table2, table3, table4, table5, table6};
