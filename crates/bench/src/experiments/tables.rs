//! Tables 1–6.

use crate::helpers::{
    base_params, dynamic_options, dynamic_spec, ft_options, ft_spec, run, trigger_for,
};
use crate::plan::Executor;
use ccnuma_kernel::{OpClass, PagerStep};
use ccnuma_machine::RunSpec;
use ccnuma_stats::{f1, Table};
use ccnuma_types::{Mode, RefClass};
use ccnuma_workloads::{Scale, WorkloadKind};
use std::fmt::Write as _;

const TABLE5_KINDS: [WorkloadKind; 3] = [
    WorkloadKind::Engineering,
    WorkloadKind::Raytrace,
    WorkloadKind::Splash,
];

/// Table 1: the key policy parameters and their base values.
pub fn table1(_scale: Scale, _exec: &Executor) -> String {
    let mut t = Table::new(vec!["Parameter", "Semantics", "Base value"]);
    let base = base_params(WorkloadKind::Raytrace);
    t.row(vec![
        "Reset Interval".into(),
        "time after which all counters are reset".into(),
        format!("{}", base.reset_interval),
    ]);
    t.row(vec![
        "Trigger Threshold".into(),
        "misses after which a page is hot".into(),
        format!("{} (96 for engineering)", base.trigger_threshold),
    ]);
    t.row(vec![
        "Sharing Threshold".into(),
        "misses from another processor => replication candidate".into(),
        format!("{} (trigger/4)", base.sharing_threshold),
    ]);
    t.row(vec![
        "Write Threshold".into(),
        "writes after which a page is not replicated".into(),
        base.write_threshold.to_string(),
    ]);
    t.row(vec![
        "Migrate Threshold".into(),
        "migrates after which a page is not migrated".into(),
        base.migrate_threshold.to_string(),
    ]);
    format!("== Table 1: key policy parameters ==\n{t}")
}

/// Table 2: the workloads.
pub fn table2(_scale: Scale, _exec: &Executor) -> String {
    let mut t = Table::new(vec!["Name", "Procs", "CPUs", "Footprint MB", "Description"]);
    for kind in WorkloadKind::ALL {
        let spec = kind.build(Scale::quick());
        t.row(vec![
            kind.to_string(),
            spec.streams.len().to_string(),
            spec.config.procs().to_string(),
            f1(spec.footprint_mb()),
            kind.description().into(),
        ]);
    }
    format!("== Table 2: workload descriptions ==\n{t}")
}

/// Runs needed by [`table3`].
pub fn table3_plan(scale: Scale) -> Vec<RunSpec> {
    WorkloadKind::ALL
        .into_iter()
        .map(|kind| ft_spec(kind, scale))
        .collect()
}

/// Table 3: execution time and memory usage under first touch.
pub fn table3(scale: Scale, exec: &Executor) -> String {
    let mut t = Table::new(vec![
        "Workload", "CPU(ms)", "Mem(MB)", "%User", "%Kern", "%Idle", "KInstr", "KData", "UInstr",
        "UData",
    ]);
    for kind in WorkloadKind::ALL {
        let mb = kind.build(scale).footprint_mb();
        let r = run(exec, kind, scale, ft_options());
        let b = &r.breakdown;
        t.row(vec![
            kind.to_string(),
            f1(b.total().as_ms()),
            f1(mb),
            f1(b.mode_pct_of_total(Mode::User)),
            f1(b.mode_pct_of_total(Mode::Kernel)),
            f1(b.idle_pct_of_total()),
            f1(b.stall_pct_of_nonidle(Mode::Kernel, RefClass::Instr)),
            f1(b.stall_pct_of_nonidle(Mode::Kernel, RefClass::Data)),
            f1(b.stall_pct_of_nonidle(Mode::User, RefClass::Instr)),
            f1(b.stall_pct_of_nonidle(Mode::User, RefClass::Data)),
        ]);
    }
    format!(
        "== Table 3: execution time and memory usage (FT) ==\n\
         (CPU time is aggregate across CPUs; stall columns are % of non-idle time)\n{t}"
    )
}

/// Runs needed by [`table4`].
pub fn table4_plan(scale: Scale) -> Vec<RunSpec> {
    WorkloadKind::USER_SET
        .into_iter()
        .map(|kind| dynamic_spec(kind, scale))
        .collect()
}

/// Table 4: breakdown of actions taken on hot pages under the base policy.
pub fn table4(scale: Scale, exec: &Executor) -> String {
    let mut t = Table::new(vec![
        "Workload",
        "Hot Pages",
        "%Migrate",
        "%Replicate",
        "%Remap",
        "%No Action",
        "%No Page",
    ]);
    for kind in WorkloadKind::USER_SET {
        let r = run(exec, kind, scale, dynamic_options(kind));
        let s = r.policy_stats.expect("dynamic run");
        t.row(vec![
            kind.to_string(),
            s.hot_pages().to_string(),
            f1(s.pct_of_hot(s.migrations)),
            f1(s.pct_of_hot(s.replications)),
            f1(s.pct_of_hot(s.remaps)),
            f1(s.pct_of_hot(s.no_action - s.no_action_pressure)),
            f1(s.pct_of_hot(s.no_page + s.no_action_pressure)),
        ]);
    }
    format!(
        "== Table 4: actions taken on hot pages (base policy) ==\n\
         (Remap — repointing a stale mapping at an existing local copy — is\n\
         broken out separately. %No Page counts allocation failures plus\n\
         memory-pressure rejections, as the paper's kernel does.)\n{t}"
    )
}

const TABLE5_STEPS: [PagerStep; 7] = [
    PagerStep::IntrProc,
    PagerStep::PolicyDecision,
    PagerStep::PageAlloc,
    PagerStep::LinksMapping,
    PagerStep::TlbFlush,
    PagerStep::PageCopy,
    PagerStep::PolicyEnd,
];

/// Runs needed by [`table5`] (shared with Table 6).
pub fn table5_plan(scale: Scale) -> Vec<RunSpec> {
    TABLE5_KINDS
        .into_iter()
        .map(|kind| dynamic_spec(kind, scale))
        .collect()
}

/// Table 5: latency of the pager's steps per operation, in µs.
pub fn table5(scale: Scale, exec: &Executor) -> String {
    let mut t = Table::new(vec![
        "Workload", "Op", "Intr", "Decis", "Alloc", "Links", "TLB", "Copy", "End", "Total",
    ]);
    for kind in TABLE5_KINDS {
        let r = run(exec, kind, scale, dynamic_options(kind));
        for op in [OpClass::Replicate, OpClass::Migrate] {
            if r.cost_book.ops(op) == 0 {
                continue;
            }
            let mut row = vec![kind.to_string(), op.to_string()];
            for step in TABLE5_STEPS {
                row.push(f1(r.cost_book.avg_step(op, step).as_us()));
            }
            // Table 5's total excludes the PageFault category (Table 6 only).
            let total: f64 = TABLE5_STEPS
                .iter()
                .map(|s| r.cost_book.avg_step(op, *s).as_us())
                .sum();
            row.push(f1(total));
            t.row(row);
        }
    }
    format!("== Table 5: per-operation latency by pager step (µs, averaged) ==\n{t}")
}

/// Runs needed by [`table6`] (shared with Table 5).
pub fn table6_plan(scale: Scale) -> Vec<RunSpec> {
    table5_plan(scale)
}

/// Table 6: breakdown of total kernel overhead by function.
pub fn table6(scale: Scale, exec: &Executor) -> String {
    let mut t = Table::new(vec![
        "Workload", "Ovhd(ms)", "TLB%", "Alloc%", "Copy%", "Fault%", "Links%", "End%", "Decis%",
        "Intr%",
    ]);
    for kind in TABLE5_KINDS {
        let r = run(exec, kind, scale, dynamic_options(kind));
        let b = &r.cost_book;
        t.row(vec![
            kind.to_string(),
            f1(b.total().as_ms()),
            f1(b.pct_by_step(PagerStep::TlbFlush)),
            f1(b.pct_by_step(PagerStep::PageAlloc)),
            f1(b.pct_by_step(PagerStep::PageCopy)),
            f1(b.pct_by_step(PagerStep::PageFault)),
            f1(b.pct_by_step(PagerStep::LinksMapping)),
            f1(b.pct_by_step(PagerStep::PolicyEnd)),
            f1(b.pct_by_step(PagerStep::PolicyDecision)),
            f1(b.pct_by_step(PagerStep::IntrProc)),
        ]);
    }
    let mut out = String::new();
    let _ = writeln!(out, "== Table 6: kernel overhead by function ==");
    let _ = writeln!(
        out,
        "(trigger {} engineering / {} others; percentages of total pager overhead)",
        trigger_for(WorkloadKind::Engineering),
        trigger_for(WorkloadKind::Raytrace)
    );
    let _ = write!(out, "{t}");
    out
}
