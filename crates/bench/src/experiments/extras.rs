//! Section-level results: §7.1.2 contention, §7.2.1 space overhead,
//! §7.2.3 replication space, §8.4 sharing sensitivity, and the two
//! kernel ablations (targeted shootdown, hotspot migration).

use crate::helpers::{base_params, dynamic_options, ft_options, other_time_of, run,
                     run_traced_ft, RunPair};
use ccnuma_core::{overhead, AdaptiveTrigger, DynamicPolicyKind, MissMetric, PolicyParams};
use ccnuma_kernel::ShootdownMode;
use ccnuma_machine::{Machine, PolicyChoice, RunOptions};
use ccnuma_polsim::{simulate, PolsimConfig, SimPolicy, TraceFilter};
use ccnuma_stats::{f1, Table};
use ccnuma_types::{MachineConfig, Pid};
use ccnuma_workloads::{PageSpace, Pinned, ProcessStream, Scale, Segment, WorkloadKind,
                       WorkloadSpec};
use std::fmt::Write as _;

fn pct_drop(before: f64, after: f64) -> f64 {
    if before == 0.0 {
        0.0
    } else {
        100.0 * (before - after) / before
    }
}

/// §7.1.2: system-wide contention reduction from improved locality, plus
/// the zero-interconnect-delay experiment.
pub fn contention(scale: Scale) -> String {
    let kind = WorkloadKind::Engineering;
    let mut out = String::new();
    let _ = writeln!(out, "== §7.1.2: system-wide contention (engineering) ==");
    let pair = RunPair::of(kind, scale);
    let (ft, mr) = (&pair.ft, &pair.mig_rep);
    let mut t = Table::new(vec!["Metric", "FT", "Mig/Rep", "Reduction%"]);
    t.row(vec![
        "remote handler invocations".into(),
        ft.contention.remote_requests.to_string(),
        mr.contention.remote_requests.to_string(),
        f1(pct_drop(
            ft.contention.remote_requests as f64,
            mr.contention.remote_requests as f64,
        )),
    ]);
    t.row(vec![
        "avg remote queue length".into(),
        format!("{:.3}", ft.contention.avg_remote_queue()),
        format!("{:.3}", mr.contention.avg_remote_queue()),
        f1(pct_drop(
            ft.contention.avg_remote_queue(),
            mr.contention.avg_remote_queue(),
        )),
    ]);
    t.row(vec![
        "max directory occupancy".into(),
        format!("{:.3}", ft.max_occupancy),
        format!("{:.3}", mr.max_occupancy),
        f1(pct_drop(ft.max_occupancy, mr.max_occupancy)),
    ]);
    t.row(vec![
        "avg local miss latency (ns)".into(),
        ft.avg_local_miss_latency.0.to_string(),
        mr.avg_local_miss_latency.0.to_string(),
        f1(pct_drop(
            ft.avg_local_miss_latency.0 as f64,
            mr.avg_local_miss_latency.0 as f64,
        )),
    ]);
    let _ = writeln!(out, "{t}");

    // Zero interconnect delay: locality still matters.
    let zero = MachineConfig::zero_delay();
    let make = |opts: RunOptions| {
        let mut spec = kind.build(scale);
        spec.config = spec
            .config
            .clone()
            .with_remote_latency(zero.remote_latency);
        Machine::new(spec, opts).run()
    };
    let zft = make(ft_options());
    let zmr = make(dynamic_options(kind));
    let _ = writeln!(
        out,
        "zero-delay network: stall reduction {}%, overall improvement {}%",
        f1(zmr.stall_reduction_over(&zft)),
        f1(zmr.improvement_over(&zft))
    );
    out
}

/// §7.2.1: information-gathering space overhead.
pub fn space() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== §7.2.1: miss-counter space overhead ==");
    let mut t = Table::new(vec!["Configuration", "Overhead %"]);
    t.row(vec![
        "8 nodes, 1B counters, 4K pages".into(),
        f1(overhead::counter_space_fraction(8, 1.0, 4096, 1) * 100.0),
    ]);
    t.row(vec![
        "128 nodes, 1B counters".into(),
        f1(overhead::counter_space_fraction(128, 1.0, 4096, 1) * 100.0),
    ]);
    t.row(vec![
        "128 nodes, half-size counters (sampling)".into(),
        f1(overhead::counter_space_fraction(128, 0.5, 4096, 1) * 100.0),
    ]);
    t.row(vec![
        "128 nodes, groups of 4".into(),
        f1(overhead::counter_space_fraction(128, 1.0, 4096, 4) * 100.0),
    ]);
    t.row(vec![
        "FLASH directory state (8B per 128B line)".into(),
        f1(overhead::directory_space_fraction(8.0, 128) * 100.0),
    ]);
    let _ = write!(out, "{t}");
    out
}

/// §7.2.3: replication memory overhead — hot-page replication vs
/// replicate-code-on-first-touch.
pub fn repspace(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== §7.2.3: replication space overhead ==");
    let mut t = Table::new(vec![
        "Workload", "Pages", "Peak replicas", "Overhead %", "FT-replicate-code %",
    ]);
    for kind in [WorkloadKind::Engineering, WorkloadKind::Raytrace] {
        let r = run(kind, scale, dynamic_options(kind));
        // Replicating code at first touch puts a copy of every shared code
        // page on every node that runs an instance: the engineering
        // workload has 6 instances of each binary, so code pages would be
        // copied ~6x (a ~500% increase in code memory).
        let ft_replicate_pct = match kind {
            WorkloadKind::Engineering => 500.0,
            _ => 100.0 * 7.0 / 8.0 * 8.0, // one copy per node for a parallel app
        };
        t.row(vec![
            kind.to_string(),
            r.distinct_pages.to_string(),
            r.replica_frames_peak.to_string(),
            f1(r.replication_space_overhead_pct),
            f1(ft_replicate_pct),
        ]);
    }
    let _ = write!(out, "{t}");
    out
}

/// §8.4: sharing-threshold sensitivity (performance should be flat).
pub fn sharing(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== §8.4: sharing threshold sensitivity ==");
    let mut t = Table::new(vec!["Workload", "share=8", "share=16", "share=32", "share=64"]);
    for kind in WorkloadKind::USER_SET {
        let machine_run = run_traced_ft(kind, scale);
        let trace = machine_run.trace.as_ref().expect("traced");
        let nodes = kind.build(Scale::quick()).config.nodes;
        let cfg = PolsimConfig::section8(nodes).with_other_time(other_time_of(&machine_run));
        let base = simulate(trace, &cfg, SimPolicy::round_robin(), TraceFilter::UserOnly);
        let mut row = vec![kind.to_string()];
        for share in [8u32, 16, 32, 64] {
            let p = SimPolicy::Dynamic {
                params: PolicyParams::base().with_sharing(share),
                kind: DynamicPolicyKind::MigRep,
                metric: MissMetric::full_cache(),
            };
            let r = simulate(trace, &cfg, p, TraceFilter::UserOnly);
            row.push(format!("{:.3}", r.normalized_to(&base)));
        }
        t.row(row);
    }
    let _ = writeln!(out, "(run time normalized to RR; flat rows = insensitive)");
    let _ = write!(out, "{t}");
    out
}

/// §7.2.2 ablation: broadcast vs targeted TLB shootdown.
pub fn shootdown(scale: Scale) -> String {
    let kind = WorkloadKind::Engineering;
    let mut out = String::new();
    let _ = writeln!(out, "== §7.2.2: targeted TLB shootdown ablation ==");
    let broadcast = run(kind, scale, dynamic_options(kind));
    let targeted = run(
        kind,
        scale,
        dynamic_options(kind).with_shootdown(ShootdownMode::Targeted),
    );
    let mut t = Table::new(vec!["Mode", "Kernel ovhd (ms)", "Avg TLBs flushed"]);
    for (label, r) in [("broadcast", &broadcast), ("targeted", &targeted)] {
        t.row(vec![
            label.into(),
            f1(r.cost_book.total().as_ms()),
            f1(r.avg_tlbs_flushed),
        ]);
    }
    let red = pct_drop(
        broadcast.cost_book.total().0 as f64,
        targeted.cost_book.total().0 as f64,
    );
    let _ = writeln!(out, "{t}");
    let _ = writeln!(
        out,
        "kernel overhead reduction from targeted shootdown: {}% (paper: ~25%)",
        f1(red)
    );
    out
}

/// §7.1.2 extension ablation: migrating write-shared pages to spread
/// memory-system load (the database workload's hot sync pages).
pub fn hotspot(scale: Scale) -> String {
    let kind = WorkloadKind::Database;
    let mut out = String::new();
    let _ = writeln!(out, "== §7.1.2 extension: hotspot migration of write-shared pages ==");
    let plain = run(kind, scale, dynamic_options(kind));
    let hotspot_opts = RunOptions::new(PolicyChoice::Dynamic {
        params: base_params(kind).with_hotspot_migrate(true),
        kind: DynamicPolicyKind::MigRep,
        metric: MissMetric::full_cache(),
    });
    let hot = run(kind, scale, hotspot_opts);
    let mut t = Table::new(vec![
        "Policy", "Total(ms)", "Max occupancy", "Avg remote queue", "Migrations",
    ]);
    for (label, r) in [("base", &plain), ("hotspot-migrate", &hot)] {
        t.row(vec![
            label.into(),
            f1(r.breakdown.total().as_ms()),
            format!("{:.3}", r.max_occupancy),
            format!("{:.3}", r.contention.avg_remote_queue()),
            r.policy_stats.map_or(0, |s| s.migrations).to_string(),
        ]);
    }
    let _ = write!(out, "{t}");
    out
}

/// §8.4 future work: adaptive trigger control vs fixed triggers.
pub fn adaptive(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== §8.4 extension: adaptive trigger threshold ==");
    let mut t = Table::new(vec!["Workload", "Policy", "Total(ms)", "Local%", "Moves"]);
    for kind in [WorkloadKind::Engineering, WorkloadKind::Raytrace] {
        for (label, opts) in [
            ("fixed 32", RunOptions::new(PolicyChoice::base_mig_rep(
                PolicyParams::base().with_trigger(32)))),
            ("fixed 128", dynamic_options(kind)),
            ("fixed 512", RunOptions::new(PolicyChoice::base_mig_rep(
                PolicyParams::base().with_trigger(512)))),
            ("adaptive", {
                let params = base_params(kind);
                RunOptions::new(PolicyChoice::base_mig_rep(params))
                    .with_adaptive(AdaptiveTrigger::new(params))
            }),
        ] {
            let r = run(kind, scale, opts);
            let s = r.policy_stats.expect("dynamic run");
            t.row(vec![
                kind.to_string(),
                label.into(),
                f1(r.breakdown.total().as_ms()),
                f1(r.breakdown.pct_local_misses()),
                (s.migrations + s.replications).to_string(),
            ]);
        }
    }
    let _ = writeln!(
        out,
        "(the controller should land near the best fixed trigger without tuning)"
    );
    let _ = write!(out, "{t}");
    out
}

/// §7.2.2: the directory controller's pipelined page copy (35 µs vs the
/// processor's ~100 µs bcopy).
pub fn copyengine(scale: Scale) -> String {
    let kind = WorkloadKind::Engineering;
    let mut out = String::new();
    let _ = writeln!(out, "== §7.2.2: pipelined page copy ablation ==");
    let bcopy = run(kind, scale, dynamic_options(kind));
    let piped = run(kind, scale, dynamic_options(kind).with_pipelined_copy());
    let mut t = Table::new(vec!["Copy engine", "Kernel ovhd (ms)", "Copy step %", "Total(ms)"]);
    for (label, r) in [("processor bcopy", &bcopy), ("MAGIC pipelined", &piped)] {
        t.row(vec![
            label.into(),
            f1(r.cost_book.total().as_ms()),
            f1(r.cost_book.pct_by_step(ccnuma_kernel::PagerStep::PageCopy)),
            f1(r.breakdown.total().as_ms()),
        ]);
    }
    let _ = writeln!(out, "{t}");
    let _ = writeln!(
        out,
        "kernel overhead reduction: {}%",
        f1(pct_drop(
            bcopy.cost_book.total().0 as f64,
            piped.cost_book.total().0 as f64
        ))
    );
    out
}

/// §7.2.1: accuracy of narrow (half-size) miss counters under sampling.
pub fn counters(scale: Scale) -> String {
    let kind = WorkloadKind::Raytrace;
    let mut out = String::new();
    let _ = writeln!(out, "== §7.2.1: counter-width accuracy ==");
    let machine_run = run_traced_ft(kind, scale);
    let trace = machine_run.trace.as_ref().expect("traced");
    let cfg = PolsimConfig::section8(8).with_other_time(other_time_of(&machine_run));
    let mut t = Table::new(vec!["Counters", "Normalized", "Local%", "Moves"]);
    let variants: [(&str, SimPolicy); 3] = [
        (
            "1-byte, full info, trigger 128",
            SimPolicy::Dynamic {
                params: PolicyParams::base(),
                kind: DynamicPolicyKind::MigRep,
                metric: MissMetric::full_cache(),
            },
        ),
        (
            "4-bit, 1:10 sampled, trigger 12",
            SimPolicy::Dynamic {
                params: PolicyParams::base().with_trigger(12).with_counter_cap(15),
                kind: DynamicPolicyKind::MigRep,
                metric: MissMetric::sampled_cache(10),
            },
        ),
        (
            "4-bit, full info, trigger 128 (inert)",
            SimPolicy::Dynamic {
                params: PolicyParams::base().with_counter_cap(15),
                kind: DynamicPolicyKind::MigRep,
                metric: MissMetric::full_cache(),
            },
        ),
    ];
    let base = simulate(
        trace,
        &cfg,
        SimPolicy::Dynamic {
            params: PolicyParams::base(),
            kind: DynamicPolicyKind::MigRep,
            metric: MissMetric::full_cache(),
        },
        TraceFilter::UserOnly,
    );
    for (label, policy) in variants {
        let r = simulate(trace, &cfg, policy, TraceFilter::UserOnly);
        t.row(vec![
            label.into(),
            format!("{:.3}", r.normalized_to(&base)),
            f1(r.pct_local_misses()),
            (r.migrations + r.replications).to_string(),
        ]);
    }
    let _ = writeln!(
        out,
        "(half-size counters need rate-scaled thresholds; a cap below the\n\
         trigger silently disables the policy)"
    );
    let _ = write!(out, "{t}");
    out
}

/// Node-count scaling: the benefit of dynamic placement as the machine
/// grows (random placement finds a page locally with probability 1/N).
pub fn scaling(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== scaling: nodes vs locality benefit ==");
    let mut t = Table::new(vec![
        "Nodes", "FT local%", "MigRep local%", "Improve%",
    ]);
    for nodes in [4u16, 8, 16] {
        let build = || synthetic_shared_reader(nodes, scale);
        let ft = Machine::new(build(), RunOptions::new(PolicyChoice::first_touch())).run();
        let mr = Machine::new(
            build(),
            RunOptions::new(PolicyChoice::base_mig_rep(PolicyParams::base())),
        )
        .run();
        t.row(vec![
            nodes.to_string(),
            f1(ft.breakdown.pct_local_misses()),
            f1(mr.breakdown.pct_local_misses()),
            f1(mr.improvement_over(&ft)),
        ]);
    }
    let _ = writeln!(
        out,
        "(a raytrace-like read-shared workload built per node count; the\n\
         locality problem worsens as 1/N, the policy's win grows with it)"
    );
    let _ = write!(out, "{t}");
    out
}

/// A raytrace-like workload parameterised by node count, built from the
/// workload-construction primitives (one pinned reader per node sharing
/// one scene).
fn synthetic_shared_reader(nodes: u16, scale: Scale) -> WorkloadSpec {
    let config = MachineConfig::cc_numa().with_nodes(nodes);
    let mut space = PageSpace::new();
    let scene = space.reserve(1200);
    let code = space.reserve(90);
    let mut streams = Vec::new();
    for i in 0..nodes as u32 {
        let private = space.reserve(120);
        streams.push(ProcessStream::new(
            Pid(i),
            vec![
                Segment::data("scene", scene, 1200, 0.6, 0.0).with_locality(0.10, 0.85),
                Segment::data("private", private, 120, 0.3, 0.3),
                Segment::code("text", code, 90, 0.1),
            ],
        ));
    }
    WorkloadSpec {
        name: format!("shared-reader-{nodes}"),
        streams,
        scheduler: Box::new(Pinned::one_per_cpu(nodes)),
        total_refs: scale.refs_per_cpu * nodes as u64,
        seed: 0x5CA1E,
        footprint_pages: space.allocated(),
        config,
    }
}

/// Freeze/defrost damping (related work \\[CoF89\\], \\[LEK91\\]): an adversarial
/// page that is read-shared for most of each interval and then written
/// makes the base policy replicate-and-collapse every interval; freezing
/// the page after a collapse stops the ping-pong.
pub fn freeze(_scale: Scale) -> String {
    use ccnuma_trace::{MissRecord, Trace};
    use ccnuma_types::{Ns, ProcId, VirtPage};

    let mut out = String::new();
    let _ = writeln!(out, "== freeze/defrost damping (adversarial ping-pong) ==");

    // Synthesize the adversary: 16 pages, each interval gets ~300 shared
    // reads from two processors followed by one write, repeated over 10
    // intervals (reset interval 100 ms).
    let mut recs = Vec::new();
    let mut t = 0u64;
    for _interval in 0..10 {
        for page in 0..16u64 {
            for i in 0..300u64 {
                let proc = ProcId((i % 2) as u16 * 5);
                recs.push(MissRecord::user_data_read(
                    Ns(t),
                    proc,
                    Pid(proc.0 as u32),
                    VirtPage(page),
                ));
                t += 15_000;
            }
            recs.push(MissRecord::user_data_write(
                Ns(t),
                ProcId(3),
                Pid(3),
                VirtPage(page),
            ));
            t += 15_000;
        }
    }
    let trace: Trace = recs.into_iter().collect();
    let cfg = PolsimConfig::section8(8);
    let mut table = Table::new(vec!["Policy", "Repl", "Collapses", "Move ovhd(ms)", "Total(ms)"]);
    for (label, freeze) in [("base (write threshold only)", 0u32), ("freeze 3 intervals", 3)] {
        let p = SimPolicy::Dynamic {
            params: PolicyParams::base().with_freeze_intervals(freeze),
            kind: DynamicPolicyKind::MigRep,
            metric: MissMetric::full_cache(),
        };
        let r = simulate(&trace, &cfg, p, TraceFilter::UserOnly);
        table.row(vec![
            label.into(),
            r.replications.to_string(),
            r.collapses.to_string(),
            f1((r.mig_overhead + r.rep_overhead).as_ms()),
            f1(r.total().as_ms()),
        ]);
    }
    let _ = write!(out, "{table}");
    out
}

/// Miss-composition and page-concentration summary per workload — the
/// §7.1.1 analysis behind the database result ("90% of the misses are
/// concentrated in about 5% of the pages").
pub fn characterize(scale: Scale) -> String {
    use ccnuma_trace::TraceStats;
    let mut out = String::new();
    let _ = writeln!(out, "== workload miss composition (FT traces) ==");
    let mut t = Table::new(vec![
        "Workload", "Cache misses", "TLB misses", "Write%", "Instr%", "Pages",
        "Top5% pages hold",
    ]);
    for kind in WorkloadKind::ALL {
        let r = run_traced_ft(kind, scale);
        let s = TraceStats::of(r.trace.as_ref().expect("traced"));
        t.row(vec![
            kind.to_string(),
            s.cache_misses.to_string(),
            s.tlb_misses.to_string(),
            f1(s.write_fraction() * 100.0),
            f1(s.instr_fraction() * 100.0),
            s.distinct_pages.to_string(),
            format!("{}%", f1(s.miss_share_of_hottest(0.05) * 100.0)),
        ]);
    }
    let _ = write!(out, "{t}");
    out
}
