//! Section-level results: §7.1.2 contention, §7.2.1 space overhead,
//! §7.2.3 replication space, §8.4 sharing sensitivity, and the two
//! kernel ablations (targeted shootdown, hotspot migration).
//!
//! As in the figures module, each experiment that runs the machine has a
//! `*_plan` function naming its runs and a render function fetching them
//! through the [`Executor`].

use crate::helpers::{
    base_params, catalog, dynamic_options, dynamic_spec, ft_spec, run, shared_reader, traced_ft,
    traced_ft_spec, RunPair,
};
use crate::plan::Executor;
use ccnuma_core::{overhead, AdaptiveTrigger, DynamicPolicyKind, MissMetric, PolicyParams};
use ccnuma_kernel::ShootdownMode;
use ccnuma_machine::{PolicyChoice, RunOptions, RunSpec};
use ccnuma_polsim::{simulate, PolsimConfig, SimPolicy, TraceFilter};
use ccnuma_stats::{f1, Table};
use ccnuma_types::{MachineConfig, Pid};
use ccnuma_workloads::{Scale, WorkloadKind};
use std::fmt::Write as _;

fn pct_drop(before: f64, after: f64) -> f64 {
    if before == 0.0 {
        0.0
    } else {
        100.0 * (before - after) / before
    }
}

/// The zero-interconnect-delay variants of the engineering pair.
fn contention_zero_specs(scale: Scale) -> [RunSpec; 2] {
    let kind = WorkloadKind::Engineering;
    let zero = MachineConfig::zero_delay().remote_latency;
    [
        ft_spec(kind, scale).with_remote_latency(zero),
        dynamic_spec(kind, scale).with_remote_latency(zero),
    ]
}

/// Runs needed by [`contention`].
pub fn contention_plan(scale: Scale) -> Vec<RunSpec> {
    let mut specs: Vec<RunSpec> = RunPair::specs(WorkloadKind::Engineering, scale).into();
    specs.extend(contention_zero_specs(scale));
    specs
}

/// §7.1.2: system-wide contention reduction from improved locality, plus
/// the zero-interconnect-delay experiment.
pub fn contention(scale: Scale, exec: &Executor) -> String {
    let kind = WorkloadKind::Engineering;
    let mut out = String::new();
    let _ = writeln!(out, "== §7.1.2: system-wide contention (engineering) ==");
    let pair = RunPair::of(exec, kind, scale);
    let (ft, mr) = (&pair.ft, &pair.mig_rep);
    let mut t = Table::new(vec!["Metric", "FT", "Mig/Rep", "Reduction%"]);
    t.row(vec![
        "remote handler invocations".into(),
        ft.contention.remote_requests.to_string(),
        mr.contention.remote_requests.to_string(),
        f1(pct_drop(
            ft.contention.remote_requests as f64,
            mr.contention.remote_requests as f64,
        )),
    ]);
    t.row(vec![
        "avg remote queue length".into(),
        format!("{:.3}", ft.contention.avg_remote_queue()),
        format!("{:.3}", mr.contention.avg_remote_queue()),
        f1(pct_drop(
            ft.contention.avg_remote_queue(),
            mr.contention.avg_remote_queue(),
        )),
    ]);
    t.row(vec![
        "max directory occupancy".into(),
        format!("{:.3}", ft.max_occupancy),
        format!("{:.3}", mr.max_occupancy),
        f1(pct_drop(ft.max_occupancy, mr.max_occupancy)),
    ]);
    t.row(vec![
        "avg local miss latency (ns)".into(),
        ft.avg_local_miss_latency.0.to_string(),
        mr.avg_local_miss_latency.0.to_string(),
        f1(pct_drop(
            ft.avg_local_miss_latency.0 as f64,
            mr.avg_local_miss_latency.0 as f64,
        )),
    ]);
    let _ = writeln!(out, "{t}");

    // Zero interconnect delay: locality still matters.
    let [zft_spec, zmr_spec] = contention_zero_specs(scale);
    let zft = exec.run(&zft_spec);
    let zmr = exec.run(&zmr_spec);
    let _ = writeln!(
        out,
        "zero-delay network: stall reduction {}%, overall improvement {}%",
        f1(zmr.stall_reduction_over(&zft)),
        f1(zmr.improvement_over(&zft))
    );
    out
}

/// §7.2.1: information-gathering space overhead.
pub fn space(_scale: Scale, _exec: &Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== §7.2.1: miss-counter space overhead ==");
    let mut t = Table::new(vec!["Configuration", "Overhead %"]);
    t.row(vec![
        "8 nodes, 1B counters, 4K pages".into(),
        f1(overhead::counter_space_fraction(8, 1.0, 4096, 1) * 100.0),
    ]);
    t.row(vec![
        "128 nodes, 1B counters".into(),
        f1(overhead::counter_space_fraction(128, 1.0, 4096, 1) * 100.0),
    ]);
    t.row(vec![
        "128 nodes, half-size counters (sampling)".into(),
        f1(overhead::counter_space_fraction(128, 0.5, 4096, 1) * 100.0),
    ]);
    t.row(vec![
        "128 nodes, groups of 4".into(),
        f1(overhead::counter_space_fraction(128, 1.0, 4096, 4) * 100.0),
    ]);
    t.row(vec![
        "FLASH directory state (8B per 128B line)".into(),
        f1(overhead::directory_space_fraction(8.0, 128) * 100.0),
    ]);
    let _ = write!(out, "{t}");
    out
}

/// Runs needed by [`repspace`].
pub fn repspace_plan(scale: Scale) -> Vec<RunSpec> {
    [WorkloadKind::Engineering, WorkloadKind::Raytrace]
        .into_iter()
        .map(|kind| dynamic_spec(kind, scale))
        .collect()
}

/// §7.2.3: replication memory overhead — hot-page replication vs
/// replicate-code-on-first-touch.
pub fn repspace(scale: Scale, exec: &Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== §7.2.3: replication space overhead ==");
    let mut t = Table::new(vec![
        "Workload",
        "Pages",
        "Peak replicas",
        "Overhead %",
        "FT-replicate-code %",
    ]);
    for kind in [WorkloadKind::Engineering, WorkloadKind::Raytrace] {
        let r = run(exec, kind, scale, dynamic_options(kind));
        // Replicating code at first touch puts a copy of every shared code
        // page on every node that runs an instance: the engineering
        // workload has 6 instances of each binary, so code pages would be
        // copied ~6x (a ~500% increase in code memory).
        let ft_replicate_pct = match kind {
            WorkloadKind::Engineering => 500.0,
            _ => 100.0 * 7.0 / 8.0 * 8.0, // one copy per node for a parallel app
        };
        t.row(vec![
            kind.to_string(),
            r.distinct_pages.to_string(),
            r.replica_frames_peak.to_string(),
            f1(r.replication_space_overhead_pct),
            f1(ft_replicate_pct),
        ]);
    }
    let _ = write!(out, "{t}");
    out
}

/// Runs needed by [`sharing`].
pub fn sharing_plan(scale: Scale) -> Vec<RunSpec> {
    WorkloadKind::USER_SET
        .into_iter()
        .map(|kind| traced_ft_spec(kind, scale))
        .collect()
}

/// §8.4: sharing-threshold sensitivity (performance should be flat).
pub fn sharing(scale: Scale, exec: &Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== §8.4: sharing threshold sensitivity ==");
    let mut t = Table::new(vec![
        "Workload", "share=8", "share=16", "share=32", "share=64",
    ]);
    for kind in WorkloadKind::USER_SET {
        let tr = traced_ft(exec, kind, scale);
        let trace = tr.trace();
        let cfg = PolsimConfig::section8(tr.nodes()).with_other_time(tr.other_time());
        let base = simulate(trace, &cfg, SimPolicy::round_robin(), TraceFilter::UserOnly);
        let mut row = vec![kind.to_string()];
        for share in [8u32, 16, 32, 64] {
            let p = SimPolicy::Dynamic {
                params: PolicyParams::base().with_sharing(share),
                kind: DynamicPolicyKind::MigRep,
                metric: MissMetric::full_cache(),
            };
            let r = simulate(trace, &cfg, p, TraceFilter::UserOnly);
            row.push(format!("{:.3}", r.normalized_to(&base)));
        }
        t.row(row);
    }
    let _ = writeln!(out, "(run time normalized to RR; flat rows = insensitive)");
    let _ = write!(out, "{t}");
    out
}

/// The broadcast- and targeted-shootdown runs of [`shootdown`].
fn shootdown_specs(scale: Scale) -> [RunSpec; 2] {
    let kind = WorkloadKind::Engineering;
    [
        dynamic_spec(kind, scale),
        catalog(
            kind,
            scale,
            dynamic_options(kind).with_shootdown(ShootdownMode::Targeted),
        ),
    ]
}

/// Runs needed by [`shootdown`].
pub fn shootdown_plan(scale: Scale) -> Vec<RunSpec> {
    shootdown_specs(scale).into()
}

/// §7.2.2 ablation: broadcast vs targeted TLB shootdown.
pub fn shootdown(scale: Scale, exec: &Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== §7.2.2: targeted TLB shootdown ablation ==");
    let [broadcast_spec, targeted_spec] = shootdown_specs(scale);
    let broadcast = exec.run(&broadcast_spec);
    let targeted = exec.run(&targeted_spec);
    let mut t = Table::new(vec!["Mode", "Kernel ovhd (ms)", "Avg TLBs flushed"]);
    for (label, r) in [("broadcast", &broadcast), ("targeted", &targeted)] {
        t.row(vec![
            label.into(),
            f1(r.cost_book.total().as_ms()),
            f1(r.avg_tlbs_flushed),
        ]);
    }
    let red = pct_drop(
        broadcast.cost_book.total().0 as f64,
        targeted.cost_book.total().0 as f64,
    );
    let _ = writeln!(out, "{t}");
    let _ = writeln!(
        out,
        "kernel overhead reduction from targeted shootdown: {}% (paper: ~25%)",
        f1(red)
    );
    out
}

/// The base and hotspot-migration runs of [`hotspot`].
fn hotspot_specs(scale: Scale) -> [RunSpec; 2] {
    let kind = WorkloadKind::Database;
    [
        dynamic_spec(kind, scale),
        catalog(
            kind,
            scale,
            RunOptions::new(PolicyChoice::Dynamic {
                params: base_params(kind).with_hotspot_migrate(true),
                kind: DynamicPolicyKind::MigRep,
                metric: MissMetric::full_cache(),
            }),
        ),
    ]
}

/// Runs needed by [`hotspot`].
pub fn hotspot_plan(scale: Scale) -> Vec<RunSpec> {
    hotspot_specs(scale).into()
}

/// §7.1.2 extension ablation: migrating write-shared pages to spread
/// memory-system load (the database workload's hot sync pages).
pub fn hotspot(scale: Scale, exec: &Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== §7.1.2 extension: hotspot migration of write-shared pages =="
    );
    let [plain_spec, hot_spec] = hotspot_specs(scale);
    let plain = exec.run(&plain_spec);
    let hot = exec.run(&hot_spec);
    let mut t = Table::new(vec![
        "Policy",
        "Total(ms)",
        "Max occupancy",
        "Avg remote queue",
        "Migrations",
    ]);
    for (label, r) in [("base", &plain), ("hotspot-migrate", &hot)] {
        t.row(vec![
            label.into(),
            f1(r.breakdown.total().as_ms()),
            format!("{:.3}", r.max_occupancy),
            format!("{:.3}", r.contention.avg_remote_queue()),
            r.policy_stats.map_or(0, |s| s.migrations).to_string(),
        ]);
    }
    let _ = write!(out, "{t}");
    out
}

/// The four trigger configurations [`adaptive`] compares on one workload.
fn adaptive_variants(kind: WorkloadKind, scale: Scale) -> [(&'static str, RunSpec); 4] {
    let make = |opts: RunOptions| catalog(kind, scale, opts);
    [
        (
            "fixed 32",
            make(RunOptions::new(PolicyChoice::base_mig_rep(
                PolicyParams::base().with_trigger(32),
            ))),
        ),
        ("fixed 128", dynamic_spec(kind, scale)),
        (
            "fixed 512",
            make(RunOptions::new(PolicyChoice::base_mig_rep(
                PolicyParams::base().with_trigger(512),
            ))),
        ),
        ("adaptive", {
            let params = base_params(kind);
            make(
                RunOptions::new(PolicyChoice::base_mig_rep(params))
                    .with_adaptive(AdaptiveTrigger::new(params)),
            )
        }),
    ]
}

/// Runs needed by [`adaptive`].
pub fn adaptive_plan(scale: Scale) -> Vec<RunSpec> {
    [WorkloadKind::Engineering, WorkloadKind::Raytrace]
        .into_iter()
        .flat_map(|kind| adaptive_variants(kind, scale).map(|(_, spec)| spec))
        .collect()
}

/// §8.4 future work: adaptive trigger control vs fixed triggers.
pub fn adaptive(scale: Scale, exec: &Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== §8.4 extension: adaptive trigger threshold ==");
    let mut t = Table::new(vec!["Workload", "Policy", "Total(ms)", "Local%", "Moves"]);
    for kind in [WorkloadKind::Engineering, WorkloadKind::Raytrace] {
        for (label, spec) in adaptive_variants(kind, scale) {
            let r = exec.run(&spec);
            let s = r.policy_stats.expect("dynamic run");
            t.row(vec![
                kind.to_string(),
                label.into(),
                f1(r.breakdown.total().as_ms()),
                f1(r.breakdown.pct_local_misses()),
                (s.migrations + s.replications).to_string(),
            ]);
        }
    }
    let _ = writeln!(
        out,
        "(the controller should land near the best fixed trigger without tuning)"
    );
    let _ = write!(out, "{t}");
    out
}

/// The bcopy and pipelined-copy runs of [`copyengine`].
fn copyengine_specs(scale: Scale) -> [RunSpec; 2] {
    let kind = WorkloadKind::Engineering;
    [
        dynamic_spec(kind, scale),
        catalog(kind, scale, dynamic_options(kind).with_pipelined_copy()),
    ]
}

/// Runs needed by [`copyengine`].
pub fn copyengine_plan(scale: Scale) -> Vec<RunSpec> {
    copyengine_specs(scale).into()
}

/// §7.2.2: the directory controller's pipelined page copy (35 µs vs the
/// processor's ~100 µs bcopy).
pub fn copyengine(scale: Scale, exec: &Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== §7.2.2: pipelined page copy ablation ==");
    let [bcopy_spec, piped_spec] = copyengine_specs(scale);
    let bcopy = exec.run(&bcopy_spec);
    let piped = exec.run(&piped_spec);
    let mut t = Table::new(vec![
        "Copy engine",
        "Kernel ovhd (ms)",
        "Copy step %",
        "Total(ms)",
    ]);
    for (label, r) in [("processor bcopy", &bcopy), ("MAGIC pipelined", &piped)] {
        t.row(vec![
            label.into(),
            f1(r.cost_book.total().as_ms()),
            f1(r.cost_book.pct_by_step(ccnuma_kernel::PagerStep::PageCopy)),
            f1(r.breakdown.total().as_ms()),
        ]);
    }
    let _ = writeln!(out, "{t}");
    let _ = writeln!(
        out,
        "kernel overhead reduction: {}%",
        f1(pct_drop(
            bcopy.cost_book.total().0 as f64,
            piped.cost_book.total().0 as f64
        ))
    );
    out
}

/// Runs needed by [`counters`].
pub fn counters_plan(scale: Scale) -> Vec<RunSpec> {
    vec![traced_ft_spec(WorkloadKind::Raytrace, scale)]
}

/// §7.2.1: accuracy of narrow (half-size) miss counters under sampling.
pub fn counters(scale: Scale, exec: &Executor) -> String {
    let kind = WorkloadKind::Raytrace;
    let mut out = String::new();
    let _ = writeln!(out, "== §7.2.1: counter-width accuracy ==");
    let tr = traced_ft(exec, kind, scale);
    let trace = tr.trace();
    let cfg = PolsimConfig::section8(8).with_other_time(tr.other_time());
    let mut t = Table::new(vec!["Counters", "Normalized", "Local%", "Moves"]);
    let variants: [(&str, SimPolicy); 3] = [
        (
            "1-byte, full info, trigger 128",
            SimPolicy::Dynamic {
                params: PolicyParams::base(),
                kind: DynamicPolicyKind::MigRep,
                metric: MissMetric::full_cache(),
            },
        ),
        (
            "4-bit, 1:10 sampled, trigger 12",
            SimPolicy::Dynamic {
                params: PolicyParams::base().with_trigger(12).with_counter_cap(15),
                kind: DynamicPolicyKind::MigRep,
                metric: MissMetric::sampled_cache(10),
            },
        ),
        (
            "4-bit, full info, trigger 128 (inert)",
            SimPolicy::Dynamic {
                params: PolicyParams::base().with_counter_cap(15),
                kind: DynamicPolicyKind::MigRep,
                metric: MissMetric::full_cache(),
            },
        ),
    ];
    let base = simulate(
        trace,
        &cfg,
        SimPolicy::Dynamic {
            params: PolicyParams::base(),
            kind: DynamicPolicyKind::MigRep,
            metric: MissMetric::full_cache(),
        },
        TraceFilter::UserOnly,
    );
    for (label, policy) in variants {
        let r = simulate(trace, &cfg, policy, TraceFilter::UserOnly);
        t.row(vec![
            label.into(),
            format!("{:.3}", r.normalized_to(&base)),
            f1(r.pct_local_misses()),
            (r.migrations + r.replications).to_string(),
        ]);
    }
    let _ = writeln!(
        out,
        "(half-size counters need rate-scaled thresholds; a cap below the\n\
         trigger silently disables the policy)"
    );
    let _ = write!(out, "{t}");
    out
}

const SCALING_NODES: [u16; 3] = [4, 8, 16];

/// The FT and Mig/Rep shared-reader runs at one node count.
fn scaling_specs(nodes: u16, scale: Scale) -> [RunSpec; 2] {
    [
        shared_reader(nodes, scale, RunOptions::new(PolicyChoice::first_touch())),
        shared_reader(
            nodes,
            scale,
            RunOptions::new(PolicyChoice::base_mig_rep(PolicyParams::base())),
        ),
    ]
}

/// Runs needed by [`scaling`].
pub fn scaling_plan(scale: Scale) -> Vec<RunSpec> {
    SCALING_NODES
        .into_iter()
        .flat_map(|nodes| scaling_specs(nodes, scale))
        .collect()
}

/// Node-count scaling: the benefit of dynamic placement as the machine
/// grows (random placement finds a page locally with probability 1/N).
pub fn scaling(scale: Scale, exec: &Executor) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== scaling: nodes vs locality benefit ==");
    let mut t = Table::new(vec!["Nodes", "FT local%", "MigRep local%", "Improve%"]);
    for nodes in SCALING_NODES {
        let [ft_run, mr_run] = scaling_specs(nodes, scale);
        let ft = exec.run(&ft_run);
        let mr = exec.run(&mr_run);
        t.row(vec![
            nodes.to_string(),
            f1(ft.breakdown.pct_local_misses()),
            f1(mr.breakdown.pct_local_misses()),
            f1(mr.improvement_over(&ft)),
        ]);
    }
    let _ = writeln!(
        out,
        "(a raytrace-like read-shared workload built per node count; the\n\
         locality problem worsens as 1/N, the policy's win grows with it)"
    );
    let _ = write!(out, "{t}");
    out
}

/// Freeze/defrost damping (related work \\[CoF89\\], \\[LEK91\\]): an adversarial
/// page that is read-shared for most of each interval and then written
/// makes the base policy replicate-and-collapse every interval; freezing
/// the page after a collapse stops the ping-pong.
pub fn freeze(_scale: Scale, _exec: &Executor) -> String {
    use ccnuma_trace::{MissRecord, Trace};
    use ccnuma_types::{Ns, ProcId, VirtPage};

    let mut out = String::new();
    let _ = writeln!(out, "== freeze/defrost damping (adversarial ping-pong) ==");

    // Synthesize the adversary: 16 pages, each interval gets ~300 shared
    // reads from two processors followed by one write, repeated over 10
    // intervals (reset interval 100 ms).
    let mut recs = Vec::new();
    let mut t = 0u64;
    for _interval in 0..10 {
        for page in 0..16u64 {
            for i in 0..300u64 {
                let proc = ProcId((i % 2) as u16 * 5);
                recs.push(MissRecord::user_data_read(
                    Ns(t),
                    proc,
                    Pid(proc.0 as u32),
                    VirtPage(page),
                ));
                t += 15_000;
            }
            recs.push(MissRecord::user_data_write(
                Ns(t),
                ProcId(3),
                Pid(3),
                VirtPage(page),
            ));
            t += 15_000;
        }
    }
    let trace: Trace = recs.into_iter().collect();
    let cfg = PolsimConfig::section8(8);
    let mut table = Table::new(vec![
        "Policy",
        "Repl",
        "Collapses",
        "Move ovhd(ms)",
        "Total(ms)",
    ]);
    for (label, freeze) in [
        ("base (write threshold only)", 0u32),
        ("freeze 3 intervals", 3),
    ] {
        let p = SimPolicy::Dynamic {
            params: PolicyParams::base().with_freeze_intervals(freeze),
            kind: DynamicPolicyKind::MigRep,
            metric: MissMetric::full_cache(),
        };
        let r = simulate(&trace, &cfg, p, TraceFilter::UserOnly);
        table.row(vec![
            label.into(),
            r.replications.to_string(),
            r.collapses.to_string(),
            f1((r.mig_overhead + r.rep_overhead).as_ms()),
            f1(r.total().as_ms()),
        ]);
    }
    let _ = write!(out, "{table}");
    out
}

/// Runs needed by [`characterize`].
pub fn characterize_plan(scale: Scale) -> Vec<RunSpec> {
    WorkloadKind::ALL
        .into_iter()
        .map(|kind| traced_ft_spec(kind, scale))
        .collect()
}

/// Miss-composition and page-concentration summary per workload — the
/// §7.1.1 analysis behind the database result ("90% of the misses are
/// concentrated in about 5% of the pages").
pub fn characterize(scale: Scale, exec: &Executor) -> String {
    use ccnuma_trace::TraceStats;
    let mut out = String::new();
    let _ = writeln!(out, "== workload miss composition (FT traces) ==");
    let mut t = Table::new(vec![
        "Workload",
        "Cache misses",
        "TLB misses",
        "Write%",
        "Instr%",
        "Pages",
        "Top5% pages hold",
    ]);
    for kind in WorkloadKind::ALL {
        let tr = traced_ft(exec, kind, scale);
        let s = TraceStats::of(tr.trace());
        t.row(vec![
            kind.to_string(),
            s.cache_misses.to_string(),
            s.tlb_misses.to_string(),
            f1(s.write_fraction() * 100.0),
            f1(s.instr_fraction() * 100.0),
            s.distinct_pages.to_string(),
            format!("{}%", f1(s.miss_share_of_hottest(0.05) * 100.0)),
        ]);
    }
    let _ = write!(out, "{t}");
    out
}
