//! Results of a policy-simulator replay.

use ccnuma_core::PolicyStats;
use ccnuma_types::Ns;

/// The breakdown one bar of Figures 6–9 plots.
#[derive(Debug, Clone, PartialEq)]
pub struct PolsimReport {
    /// Policy label ("RR", "FT", "PF", "Migr", "Repl", "Mig/Rep").
    pub label: String,
    /// Cache misses satisfied locally.
    pub local_misses: u64,
    /// Cache misses that went remote.
    pub remote_misses: u64,
    /// Aggregate stall on local misses.
    pub local_stall: Ns,
    /// Aggregate stall on remote misses.
    pub remote_stall: Ns,
    /// Page-move overhead attributed to migrations.
    pub mig_overhead: Ns,
    /// Page-move overhead attributed to replications and collapses.
    pub rep_overhead: Ns,
    /// Migrations performed.
    pub migrations: u64,
    /// Replications performed.
    pub replications: u64,
    /// Collapses performed.
    pub collapses: u64,
    /// The constant non-miss component ("all other time").
    pub other_time: Ns,
    /// Decision-tree statistics for dynamic policies.
    pub policy_stats: Option<PolicyStats>,
}

impl PolsimReport {
    /// Total modelled execution time.
    pub fn total(&self) -> Ns {
        self.other_time
            + self.local_stall
            + self.remote_stall
            + self.mig_overhead
            + self.rep_overhead
    }

    /// Total stall time.
    pub fn stall(&self) -> Ns {
        self.local_stall + self.remote_stall
    }

    /// Percentage of misses satisfied locally (the number under each bar).
    pub fn pct_local_misses(&self) -> f64 {
        let total = self.local_misses + self.remote_misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.local_misses as f64 / total as f64
        }
    }

    /// This run's total normalized to `base`'s total (Figure 6 normalizes
    /// to round-robin = 1.0).
    pub fn normalized_to(&self, base: &PolsimReport) -> f64 {
        if base.total() == Ns::ZERO {
            return 0.0;
        }
        self.total().0 as f64 / base.total().0 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(local: u64, remote: u64) -> PolsimReport {
        PolsimReport {
            label: "x".into(),
            local_misses: local,
            remote_misses: remote,
            local_stall: Ns(local * 300),
            remote_stall: Ns(remote * 1200),
            mig_overhead: Ns::ZERO,
            rep_overhead: Ns::ZERO,
            migrations: 0,
            replications: 0,
            collapses: 0,
            other_time: Ns(1000),
            policy_stats: None,
        }
    }

    #[test]
    fn totals_and_percentages() {
        let r = report(3, 1);
        assert_eq!(r.total(), Ns(1000 + 900 + 1200));
        assert_eq!(r.stall(), Ns(2100));
        assert_eq!(r.pct_local_misses(), 75.0);
    }

    #[test]
    fn normalization() {
        let base = report(0, 10); // total 1000 + 12000
        let better = report(10, 0); // total 1000 + 3000
        let n = better.normalized_to(&base);
        assert!((n - 4000.0 / 13000.0).abs() < 1e-12);
        assert_eq!(report(0, 0).pct_local_misses(), 0.0);
    }
}
