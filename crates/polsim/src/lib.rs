//! The Section 8 trace-driven policy simulator.
//!
//! "We non-intrusively generated a detailed trace for each workload ...
//! The trace was then used as input to a policy simulator with a simple
//! contentionless memory model. The memory model has a 300ns local-miss
//! latency and a 1200ns remote-miss latency. The cost of a migrate,
//! replicate, or collapse is 350µs."
//!
//! [`simulate`] replays a [`ccnuma_trace::Trace`] under any of the six
//! policies of Figure 6 (RR, FT, PF, Migr, Repl, Mig/Rep) driven by any
//! of the four information metrics of Figure 8 (FC, SC, FT, ST), with a
//! mode filter for the kernel-only study of Figure 7, and reports the
//! stall/overhead breakdown each figure plots.
//!
//! # Examples
//!
//! ```
//! use ccnuma_polsim::{simulate, PolsimConfig, SimPolicy, TraceFilter};
//! use ccnuma_trace::{MissRecord, Trace};
//! use ccnuma_types::{Ns, Pid, ProcId, VirtPage};
//!
//! // One page read remotely, many times, by processor 5.
//! let trace: Trace = (0..200)
//!     .map(|i| MissRecord::user_data_read(Ns(i * 1000), ProcId(5), Pid(1), VirtPage(9)))
//!     .collect();
//! let cfg = PolsimConfig::section8(8);
//! let ft = simulate(&trace, &cfg, SimPolicy::first_touch(), TraceFilter::UserOnly);
//! // Under FT the first toucher owns the page, so every miss is local.
//! assert_eq!(ft.remote_misses, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;
mod sim;

pub use report::PolsimReport;
pub use sim::{simulate, PolsimConfig, Replay, SimPolicy, TraceFilter};
